//! Experiment harness shared library.
//!
//! Every table and figure of the paper has a binary in `src/bin/`
//! (`cargo run --release -p quamax-bench --bin fig5 -- --help`-style
//! flags); this library holds what they share:
//!
//! * [`cli`] — a tiny `--key value` argument parser (no external CLI
//!   dependency; smoltcp-style minimalism);
//! * [`ground`] — ground-truth Ising energies and ML bits, computed
//!   classically with the sphere decoder;
//! * [`output`] — uniform text + JSON result emission into `results/`;
//! * [`runner`] — "decode this instance under these parameters and
//!   give me `RunStatistics`", the kernel of every experiment.
//!
//! Scaled defaults: the paper burned >8×10¹⁰ hardware anneals; these
//! binaries default to laptop-scale sample counts and accept
//! `--anneals`, `--instances`, `--seed` to scale up. EXPERIMENTS.md
//! records the defaults used for the committed results.

pub mod cli;
pub mod ground;
pub mod kernelbench;
pub mod output;
pub mod runner;
pub mod workload;

pub use cli::Args;
pub use ground::ground_truth;
pub use output::Report;
pub use runner::{inner_threads_for, run_instance, run_instances, run_map, RunSpec};
pub use workload::{
    default_params, fix_for_class, optimize_instance, score, small_no_pause_grid, small_pause_grid,
    spec_for, ProblemClass,
};
