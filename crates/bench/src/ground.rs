//! Classical ground truth for annealer scoring.
//!
//! TTS needs the per-anneal probability of hitting the *ground state*.
//! For QuAMax problems the Ising ground state is the ML solution, so
//! the sphere decoder (exact ML, tractable far beyond exhaustive
//! search) provides it: decode classically, map the Gray bits back to
//! QuAMax-transform spins, evaluate the logical Ising energy.

use quamax_baselines::SphereDecoder;
use quamax_core::reduce::ising_from_ml;
use quamax_core::Instance;
use quamax_ising::bits_to_spins;
use quamax_wireless::gray::gray_bits_to_quamax;

/// Ground truth for one instance.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The ML solution's logical Ising energy (the ground energy).
    pub energy: f64,
    /// The ML solution as Gray bits (what an ideal decoder returns).
    pub ml_bits: Vec<u8>,
    /// Sphere-decoder visited nodes (doubles as a hardness probe).
    pub visited_nodes: u64,
}

/// Computes the ground truth of `instance` with the sphere decoder.
///
/// # Panics
/// Panics if the sphere decoder fails (degenerate channel), which the
/// experiment workloads do not produce.
pub fn ground_truth(instance: &Instance) -> GroundTruth {
    let m = instance.modulation();
    let result = SphereDecoder::new(m)
        .decode(instance.h(), instance.y())
        .expect("experiment channels are non-degenerate");
    let (logical, _) = ising_from_ml(instance.h(), instance.y(), m);
    let q = m.bits_per_symbol();
    let quamax_bits: Vec<u8> = result
        .bits
        .chunks(q)
        .flat_map(gray_bits_to_quamax)
        .collect();
    let spins = bits_to_spins(&quamax_bits);
    GroundTruth {
        energy: logical.energy(&spins),
        ml_bits: result.bits,
        visited_nodes: result.visited_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_core::Scenario;
    use quamax_ising::exact_ground_state;
    use quamax_wireless::Modulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere_ground_energy_matches_exhaustive() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            let nt = if m == Modulation::Bpsk { 8 } else { 4 };
            let sc = Scenario::new(nt, nt, m);
            let inst = sc.sample(&mut rng);
            let gt = ground_truth(&inst);
            let (logical, _) = ising_from_ml(inst.h(), inst.y(), m);
            let exact = exact_ground_state(&logical);
            assert!(
                (gt.energy - exact.energy).abs() < 1e-6 * exact.energy.abs().max(1.0),
                "{}: {} vs {}",
                m.name(),
                gt.energy,
                exact.energy
            );
        }
    }

    #[test]
    fn noiseless_ml_bits_are_the_transmission() {
        let mut rng = StdRng::seed_from_u64(2);
        let sc = Scenario::new(12, 12, Modulation::Bpsk);
        let inst = sc.sample(&mut rng);
        let gt = ground_truth(&inst);
        assert_eq!(gt.ml_bits, inst.tx_bits());
        assert!(gt.visited_nodes >= 12);
    }
}
