//! Criterion microbenchmarks for the hot paths of the pipeline.
//!
//! These measure *this repository's Rust implementations* (the
//! experiment harness separately uses paper-era cost models for the
//! classical baselines — see `baselines::timing`):
//!
//! * the ML→Ising reduction (the per-subcarrier front-end work);
//! * clique embedding + compile (per channel-coherence interval);
//! * one SA sweep over an embedded problem (the simulator's inner loop);
//! * a sphere-decoder decode (the classical ML baseline);
//! * ZF detection (the linear baseline).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quamax_anneal::sa;
use quamax_baselines::{SphereDecoder, ZeroForcingDetector};
use quamax_chimera::{ChimeraGraph, CliqueEmbedding, EmbedParams, EmbeddedProblem};
use quamax_core::reduce::ising_from_ml;
use quamax_core::Scenario;
use quamax_wireless::{Modulation, Snr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce");
    for (nt, m) in [(48usize, Modulation::Bpsk), (18, Modulation::Qpsk), (9, Modulation::Qam16)]
    {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = Scenario::new(nt, nt, m).sample(&mut rng);
        group.bench_function(format!("{}x{} {}", nt, nt, m.name()), |b| {
            b.iter(|| black_box(ising_from_ml(inst.h(), inst.y(), m)))
        });
        // The per-channel-use cost once the Gram matrix is amortized
        // over the coherence interval (the §3.2.2 deployment shape).
        let gram = inst.h().gram();
        group.bench_function(format!("{}x{} {} amortized", nt, nt, m.name()), |b| {
            b.iter(|| {
                let h_y = inst.h().hermitian().mul_vec(inst.y());
                black_box(quamax_core::reduce::ising_from_ml_amortized(
                    inst.h(),
                    &gram,
                    &h_y,
                    inst.y(),
                    m,
                ))
            })
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let graph = ChimeraGraph::dw2q_ideal();
    let mut rng = StdRng::seed_from_u64(2);
    let inst = Scenario::new(18, 18, Modulation::Qpsk).sample(&mut rng);
    let (logical, _) = ising_from_ml(inst.h(), inst.y(), Modulation::Qpsk);
    c.bench_function("embed+compile 36 logical", |b| {
        b.iter(|| {
            let e = CliqueEmbedding::new(&graph, 36).unwrap();
            black_box(EmbeddedProblem::compile(&graph, &e, &logical, EmbedParams::default()))
        })
    });
}

fn bench_sa_sweep(c: &mut Criterion) {
    let graph = ChimeraGraph::dw2q_ideal();
    let mut rng = StdRng::seed_from_u64(3);
    let inst = Scenario::new(18, 18, Modulation::Qpsk).sample(&mut rng);
    let (logical, _) = ising_from_ml(inst.h(), inst.y(), Modulation::Qpsk);
    let e = CliqueEmbedding::new(&graph, 36).unwrap();
    let embedded = EmbeddedProblem::compile(&graph, &e, &logical, EmbedParams::default());
    let n = embedded.num_physical();
    c.bench_function("sa sweep 360 phys spins", |b| {
        b.iter_batched(
            || {
                let mut srng = StdRng::seed_from_u64(4);
                (0..n)
                    .map(|_| if rand::Rng::random_bool(&mut srng, 0.5) { 1i8 } else { -1 })
                    .collect::<Vec<i8>>()
            },
            |mut spins| {
                let mut srng = StdRng::seed_from_u64(5);
                sa::sweep(embedded.problem(), &mut spins, 5.0, &mut srng);
                black_box(spins)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sphere(c: &mut Criterion) {
    let mut group = c.benchmark_group("sphere");
    for (nt, m) in [(12usize, Modulation::Bpsk), (7, Modulation::Qpsk)] {
        let mut rng = StdRng::seed_from_u64(6);
        let sc = Scenario::new(nt, nt, m).with_rayleigh().with_snr(Snr::from_db(13.0));
        let inst = sc.sample(&mut rng);
        let decoder = SphereDecoder::new(m);
        group.bench_function(format!("{}x{} {}", nt, nt, m.name()), |b| {
            b.iter(|| black_box(decoder.decode(inst.h(), inst.y()).unwrap()))
        });
    }
    group.finish();
}

fn bench_zf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sc = Scenario::new(48, 48, Modulation::Bpsk)
        .with_rayleigh()
        .with_snr(Snr::from_db(12.0));
    let inst = sc.sample(&mut rng);
    let zf = ZeroForcingDetector::new(Modulation::Bpsk);
    c.bench_function("zf 48x48 BPSK", |b| {
        b.iter(|| black_box(zf.decode(inst.h(), inst.y()).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reduction, bench_embedding, bench_sa_sweep, bench_sphere, bench_zf
}
criterion_main!(benches);
