//! Criterion microbenchmarks for the hot paths of the pipeline.
//!
//! These measure *this repository's Rust implementations* (the
//! experiment harness separately uses paper-era cost models for the
//! classical baselines — see `baselines::timing`):
//!
//! * the ML→Ising reduction (the per-subcarrier front-end work);
//! * clique embedding + compile (per channel-coherence interval);
//! * one SA sweep over an embedded problem (the simulator's inner loop),
//!   naive adjacency-list kernel vs the compiled CSR/local-field kernel,
//!   at the paper's headline 960-qubit and full-chip 2031-working-qubit
//!   scales (see `quamax_bench::kernelbench`; `bench_kernel` records the
//!   same comparison to `BENCH_kernel.json`);
//! * an SQA 8-slice sweep, naive vs compiled;
//! * chain-collective proposals, naive `chain.contains` scan vs
//!   precompiled internal-edge lists;
//! * a sphere-decoder decode (the classical ML baseline);
//! * ZF detection (the linear baseline).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quamax_anneal::kernel::{CompiledChains, SqaState, SweepState};
use quamax_anneal::sa;
use quamax_baselines::{SphereDecoder, ZeroForcingDetector};
use quamax_bench::kernelbench;
use quamax_chimera::{ChimeraGraph, CliqueEmbedding, EmbedParams, EmbeddedProblem};
use quamax_core::reduce::ising_from_ml;
use quamax_core::Scenario;
use quamax_ising::CompiledProblem;
use quamax_wireless::{Modulation, Snr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce");
    for (nt, m) in [
        (48usize, Modulation::Bpsk),
        (18, Modulation::Qpsk),
        (9, Modulation::Qam16),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = Scenario::new(nt, nt, m).sample(&mut rng);
        group.bench_function(format!("{}x{} {}", nt, nt, m.name()), |b| {
            b.iter(|| black_box(ising_from_ml(inst.h(), inst.y(), m)))
        });
        // The per-channel-use cost once the Gram matrix is amortized
        // over the coherence interval (the §3.2.2 deployment shape).
        let gram = inst.h().gram();
        group.bench_function(format!("{}x{} {} amortized", nt, nt, m.name()), |b| {
            b.iter(|| {
                let h_y = inst.h().hermitian().mul_vec(inst.y());
                black_box(quamax_core::reduce::ising_from_ml_amortized(
                    inst.h(),
                    &gram,
                    &h_y,
                    inst.y(),
                    m,
                ))
            })
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let graph = ChimeraGraph::dw2q_ideal();
    let mut rng = StdRng::seed_from_u64(2);
    let inst = Scenario::new(18, 18, Modulation::Qpsk).sample(&mut rng);
    let (logical, _) = ising_from_ml(inst.h(), inst.y(), Modulation::Qpsk);
    c.bench_function("embed+compile 36 logical", |b| {
        b.iter(|| {
            let e = CliqueEmbedding::new(&graph, 36).unwrap();
            black_box(EmbeddedProblem::compile(
                &graph,
                &e,
                &logical,
                EmbedParams::default(),
            ))
        })
    });
}

fn bench_sa_sweep(c: &mut Criterion) {
    let graph = ChimeraGraph::dw2q_ideal();
    let mut rng = StdRng::seed_from_u64(3);
    let inst = Scenario::new(18, 18, Modulation::Qpsk).sample(&mut rng);
    let (logical, _) = ising_from_ml(inst.h(), inst.y(), Modulation::Qpsk);
    let e = CliqueEmbedding::new(&graph, 36).unwrap();
    let embedded = EmbeddedProblem::compile(&graph, &e, &logical, EmbedParams::default());
    let n = embedded.num_physical();
    c.bench_function("sa sweep 360 phys spins", |b| {
        b.iter_batched(
            || {
                let mut srng = StdRng::seed_from_u64(4);
                (0..n)
                    .map(|_| {
                        if rand::Rng::random_bool(&mut srng, 0.5) {
                            1i8
                        } else {
                            -1
                        }
                    })
                    .collect::<Vec<i8>>()
            },
            |mut spins| {
                let mut srng = StdRng::seed_from_u64(5);
                sa::sweep(embedded.problem(), &mut spins, 5.0, &mut srng);
                black_box(spins)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kernel_sa(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_ladder");
    let betas = kernelbench::schedule_betas();
    let (embedded, _) = kernelbench::embedded_bpsk60(1);
    let glass = kernelbench::chimera_glass(2);
    for (label, problem) in [("embedded_960q", &embedded), ("chimera_2031q", &glass)] {
        let compiled = CompiledProblem::new(problem);
        let n = problem.num_spins();
        group.bench_function(format!("{label} naive"), |b| {
            let mut spins = kernelbench::random_spins(n, &mut StdRng::seed_from_u64(3));
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                kernelbench::naive_sa_ladder(problem, &mut spins, &betas, &mut rng);
                black_box(spins[0])
            })
        });
        group.bench_function(format!("{label} compiled"), |b| {
            let spins = kernelbench::random_spins(n, &mut StdRng::seed_from_u64(3));
            let mut state = SweepState::new();
            state.reset(&compiled, &spins);
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                kernelbench::compiled_sa_ladder(&compiled, &mut state, &betas, &mut rng);
                black_box(state.spins()[0])
            })
        });
    }
    group.finish();
}

fn bench_kernel_sqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqa_ladder_8slice");
    let (embedded, _) = kernelbench::embedded_bpsk60(1);
    let compiled = CompiledProblem::new(&embedded);
    let n = embedded.num_spins();
    let slices = 8;
    group.bench_function("embedded_960q naive", |b| {
        let mut replicas: Vec<Vec<i8>> = (0..slices)
            .map(|k| kernelbench::random_spins(n, &mut StdRng::seed_from_u64(5 + k as u64)))
            .collect();
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            kernelbench::naive_sqa_ladder(&embedded, &mut replicas, slices, &mut rng);
            black_box(replicas[0][0])
        })
    });
    group.bench_function("embedded_960q compiled", |b| {
        let starts: Vec<Vec<i8>> = (0..slices)
            .map(|k| kernelbench::random_spins(n, &mut StdRng::seed_from_u64(5 + k as u64)))
            .collect();
        let mut state = SqaState::new();
        state.reset(&compiled, slices, |k, i| starts[k][i]);
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            kernelbench::compiled_sqa_ladder(&compiled, &mut state, slices, &mut rng);
            black_box(state.spin(0, 0))
        })
    });
    group.finish();
}

fn bench_chain_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_delta_60x16");
    let (embedded, chains) = kernelbench::embedded_bpsk60(1);
    let compiled = CompiledProblem::new(&embedded);
    let cc = CompiledChains::compile(&compiled, &chains);
    let spins = kernelbench::random_spins(embedded.num_spins(), &mut StdRng::seed_from_u64(7));
    group.bench_function("naive contains-scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for chain in &chains {
                acc += sa::chain_flip_delta(&embedded, &spins, chain);
            }
            black_box(acc)
        })
    });
    group.bench_function("precompiled internal edges", |b| {
        let mut state = SweepState::new();
        state.reset(&compiled, &spins);
        b.iter(|| {
            let mut acc = 0.0;
            for ci in 0..cc.len() {
                acc += state.chain_flip_delta(&cc, ci);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_sphere(c: &mut Criterion) {
    let mut group = c.benchmark_group("sphere");
    for (nt, m) in [(12usize, Modulation::Bpsk), (7, Modulation::Qpsk)] {
        let mut rng = StdRng::seed_from_u64(6);
        let sc = Scenario::new(nt, nt, m)
            .with_rayleigh()
            .with_snr(Snr::from_db(13.0));
        let inst = sc.sample(&mut rng);
        let decoder = SphereDecoder::new(m);
        group.bench_function(format!("{}x{} {}", nt, nt, m.name()), |b| {
            b.iter(|| black_box(decoder.decode(inst.h(), inst.y()).unwrap()))
        });
    }
    group.finish();
}

fn bench_zf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sc = Scenario::new(48, 48, Modulation::Bpsk)
        .with_rayleigh()
        .with_snr(Snr::from_db(12.0));
    let inst = sc.sample(&mut rng);
    let zf = ZeroForcingDetector::new(Modulation::Bpsk);
    c.bench_function("zf 48x48 BPSK", |b| {
        b.iter(|| black_box(zf.decode(inst.h(), inst.y()).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reduction, bench_embedding, bench_sa_sweep, bench_kernel_sa,
        bench_kernel_sqa, bench_chain_moves, bench_sphere, bench_zf
}
criterion_main!(benches);
