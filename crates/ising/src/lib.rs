//! Ising and QUBO optimization problem forms (paper §3.1).
//!
//! Quantum annealers minimize the Ising spin-glass objective
//!
//! ```text
//! E(s) = Σ_{i<j} g_ij·s_i·s_j + Σ_i f_i·s_i ,   s_i ∈ {−1, +1}     (Eq. 2)
//! ```
//!
//! or equivalently the Quadratic Unconstrained Binary Optimization form
//!
//! ```text
//! E(q) = Σ_{i≤j} Q_ij·q_i·q_j ,                 q_i ∈ {0, 1}       (Eq. 3)
//! ```
//!
//! related by the affine substitution `q_i = (s_i + 1)/2` (Eq. 4), under
//! which energies agree up to a configuration-independent constant. This
//! crate provides both forms, the conversions with their explicit energy
//! offsets, energy/Δ-energy evaluation fast enough for Monte-Carlo
//! dynamics, and an exhaustive exact solver used as ground truth by the
//! decoder tests and the Fig. 4-style solution-rank analyses.

pub mod compiled;
pub mod convert;
pub mod exact;
pub mod ising;
pub mod qubo;
pub mod spins;

pub use compiled::CompiledProblem;
pub use convert::{ising_to_qubo, qubo_to_ising};
pub use exact::{exact_ground_state, rank_all_solutions, ExactSolution, RankedSolution};
pub use ising::IsingProblem;
pub use qubo::QuboProblem;
pub use spins::{bits_to_spins, spins_to_bits, Spin};
