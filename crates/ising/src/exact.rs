//! Exhaustive exact solvers — the ground truth behind every correctness
//! claim in this reproduction.
//!
//! Enumeration is Gray-coded: consecutive configurations differ in one
//! spin, so each step costs one `flip_delta` (`O(degree)`) instead of a
//! full `O(n + edges)` energy evaluation. That puts 2²⁰-configuration
//! searches (20-spin problems, e.g. 10-user QPSK) within easy reach of a
//! test suite.

use crate::spins::GrayCodeSpins;
use crate::{IsingProblem, Spin};

/// The result of an exhaustive ground-state search.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactSolution {
    /// The minimum energy found.
    pub energy: f64,
    /// All configurations achieving it (ties are rare but physical —
    /// e.g. the global spin-flip symmetry of field-free problems).
    pub ground_states: Vec<Vec<Spin>>,
}

/// One entry of a full solution ranking (paper Fig. 4's x-axis).
#[derive(Clone, Debug, PartialEq)]
pub struct RankedSolution {
    /// A representative configuration at this energy.
    pub spins: Vec<Spin>,
    /// Its Ising energy.
    pub energy: f64,
    /// Number of distinct configurations sharing this energy (within
    /// the tie tolerance).
    pub degeneracy: usize,
}

/// Exhaustively finds the ground state(s) of `problem`.
///
/// Energies within `1e-9·max(1, |E_min|)` of the minimum count as tied.
///
/// # Panics
/// Panics for problems larger than 30 spins — beyond that exhaustive
/// search stops being a test-suite tool. (The paper's Table 1 makes the
/// same point about classical ML detection generally.)
pub fn exact_ground_state(problem: &IsingProblem) -> ExactSolution {
    let n = problem.num_spins();
    assert!(
        n <= 30,
        "exhaustive search capped at 30 spins (asked for {n})"
    );
    if n == 0 {
        return ExactSolution {
            energy: 0.0,
            ground_states: vec![Vec::new()],
        };
    }

    let mut enumerator = GrayCodeSpins::new(n);
    enumerator.advance(); // all −1
    let mut energy = problem.energy(enumerator.config());
    let mut best = energy;
    let mut ground_states = vec![enumerator.config().to_vec()];

    while let Some(flip) = enumerator.advance() {
        energy += problem.flip_delta_pre(enumerator.config(), flip);
        let tol = 1e-9 * best.abs().max(1.0);
        if energy < best - tol {
            best = energy;
            ground_states.clear();
            ground_states.push(enumerator.config().to_vec());
        } else if energy <= best + tol {
            ground_states.push(enumerator.config().to_vec());
        }
    }
    ExactSolution {
        energy: best,
        ground_states,
    }
}

impl IsingProblem {
    /// `flip_delta` evaluated *after* the flip has been applied to
    /// `spins`: the energy change of having flipped spin `i` into its
    /// current state. Used by Gray-code enumeration, which mutates the
    /// configuration before the energy update.
    #[inline]
    pub fn flip_delta_pre(&self, spins_after: &[Spin], i: usize) -> f64 {
        // ΔE for arriving at the current state = −ΔE for leaving it.
        -self.flip_delta(spins_after, i)
    }
}

/// Exhaustively ranks **all** `2^n` configurations by energy, merging
/// ties, in ascending energy order — the ground-truth counterpart of
/// the annealer's empirical solution ranking (Fig. 4).
///
/// `tie_tol` merges energies within that absolute tolerance.
///
/// # Panics
/// Panics for problems larger than 24 spins (the full ranking keeps all
/// configurations in memory).
pub fn rank_all_solutions(problem: &IsingProblem, tie_tol: f64) -> Vec<RankedSolution> {
    let n = problem.num_spins();
    assert!(n <= 24, "full ranking capped at 24 spins (asked for {n})");
    let mut entries: Vec<(f64, Vec<Spin>)> = Vec::with_capacity(1 << n);

    let mut enumerator = GrayCodeSpins::new(n);
    enumerator.advance();
    let mut energy = problem.energy(enumerator.config());
    entries.push((energy, enumerator.config().to_vec()));
    while let Some(flip) = enumerator.advance() {
        energy += problem.flip_delta_pre(enumerator.config(), flip);
        entries.push((energy, enumerator.config().to_vec()));
    }

    entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("energies are finite"));
    let mut ranked: Vec<RankedSolution> = Vec::new();
    for (e, spins) in entries {
        match ranked.last_mut() {
            Some(last) if (e - last.energy).abs() <= tie_tol => last.degeneracy += 1,
            _ => ranked.push(RankedSolution {
                spins,
                energy: e,
                degeneracy: 1,
            }),
        }
    }
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_spin_ground_state_follows_field() {
        let mut p = IsingProblem::new(1);
        p.set_linear(0, 2.0); // positive field prefers s = −1
        let sol = exact_ground_state(&p);
        assert_eq!(sol.ground_states, vec![vec![-1]]);
        assert_eq!(sol.energy, -2.0);
    }

    #[test]
    fn ferromagnetic_pair_has_two_ground_states() {
        let mut p = IsingProblem::new(2);
        p.set_coupling(0, 1, -1.0); // negative coupling prefers alignment
        let sol = exact_ground_state(&p);
        assert_eq!(sol.energy, -1.0);
        assert_eq!(sol.ground_states.len(), 2);
        for gs in &sol.ground_states {
            assert_eq!(gs[0], gs[1]);
        }
    }

    #[test]
    fn antiferromagnetic_triangle_is_frustrated() {
        // Three +1 couplings on a triangle cannot all be satisfied: the
        // ground energy is −1 (two satisfied, one violated), with 6
        // degenerate ground states.
        let mut p = IsingProblem::new(3);
        p.set_coupling(0, 1, 1.0);
        p.set_coupling(1, 2, 1.0);
        p.set_coupling(0, 2, 1.0);
        let sol = exact_ground_state(&p);
        assert_eq!(sol.energy, -1.0);
        assert_eq!(sol.ground_states.len(), 6);
    }

    #[test]
    fn incremental_energies_match_direct_evaluation() {
        // Random-ish problem; compare the Gray-code incremental energy
        // path against direct evaluation for every configuration.
        let mut p = IsingProblem::new(6);
        let mut seed = 7u64;
        let mut next = move || {
            // xorshift: deterministic coefficients without a rand dep.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 250.0 - 2.0
        };
        for i in 0..6 {
            p.set_linear(i, next());
            for j in (i + 1)..6 {
                p.set_coupling(i, j, next());
            }
        }
        let mut e = GrayCodeSpins::new(6);
        e.advance();
        let mut energy = p.energy(e.config());
        while let Some(flip) = e.advance() {
            energy += p.flip_delta_pre(e.config(), flip);
            let direct = p.energy(e.config());
            assert!((energy - direct).abs() < 1e-9, "{energy} vs {direct}");
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let mut p = IsingProblem::new(4);
        p.set_linear(0, 0.3);
        p.set_linear(2, -0.7);
        p.set_coupling(0, 1, 1.1);
        p.set_coupling(2, 3, -0.4);
        let ranked = rank_all_solutions(&p, 1e-9);
        let total: usize = ranked.iter().map(|r| r.degeneracy).sum();
        assert_eq!(total, 16);
        for w in ranked.windows(2) {
            assert!(w[0].energy < w[1].energy);
        }
        // First entry agrees with the exact ground state.
        let sol = exact_ground_state(&p);
        assert!((ranked[0].energy - sol.energy).abs() < 1e-12);
    }

    #[test]
    fn field_free_problem_ranking_has_even_degeneracies() {
        // Global spin-flip symmetry: every energy level of a field-free
        // problem has even degeneracy.
        let mut p = IsingProblem::new(4);
        p.set_coupling(0, 1, 0.5);
        p.set_coupling(1, 2, -1.0);
        p.set_coupling(2, 3, 0.8);
        for r in rank_all_solutions(&p, 1e-9) {
            assert_eq!(r.degeneracy % 2, 0, "level {} has odd degeneracy", r.energy);
        }
    }

    #[test]
    fn empty_problem() {
        let sol = exact_ground_state(&IsingProblem::new(0));
        assert_eq!(sol.energy, 0.0);
        assert_eq!(sol.ground_states.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capped at 30")]
    fn oversized_search_panics() {
        let p = IsingProblem::new(31);
        let _ = exact_ground_state(&p);
    }
}
