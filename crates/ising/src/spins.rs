//! Spin and bit configurations, and the Eq. 4 mapping between them.

/// A single Ising spin value. Stored as `i8` (±1) so configurations pack
/// densely and arithmetic (`s_i·s_j`) stays integral.
pub type Spin = i8;

/// Converts QUBO bits (0/1) to Ising spins (−1/+1): `s = 2q − 1`.
///
/// # Panics
/// Panics (debug) on non-binary input.
pub fn bits_to_spins(bits: &[u8]) -> Vec<Spin> {
    bits.iter()
        .map(|&q| {
            debug_assert!(q <= 1, "bit out of range: {q}");
            (2 * q as i8) - 1
        })
        .collect()
}

/// Converts Ising spins (−1/+1) to QUBO bits (0/1): `q = (s + 1)/2`.
///
/// # Panics
/// Panics (debug) on values other than ±1.
pub fn spins_to_bits(spins: &[Spin]) -> Vec<u8> {
    spins
        .iter()
        .map(|&s| {
            debug_assert!(s == 1 || s == -1, "spin out of range: {s}");
            ((s + 1) / 2) as u8
        })
        .collect()
}

/// Enumerates spin configurations of `n` spins in Gray-code order,
/// yielding `(flipped_index, configuration)` after each single-spin
/// flip. The first yield is the all `−1` configuration with no flip
/// (`flipped_index == usize::MAX`).
///
/// Gray-code enumeration lets exhaustive solvers update energies
/// incrementally in `O(degree)` per configuration instead of `O(n²)`.
pub struct GrayCodeSpins {
    config: Vec<Spin>,
    counter: u64,
    total: u64,
    started: bool,
}

impl GrayCodeSpins {
    /// Creates the enumerator.
    ///
    /// # Panics
    /// Panics for `n > 63` (the enumeration would not terminate in any
    /// reasonable time anyway; exhaustive search is for small problems).
    pub fn new(n: usize) -> Self {
        assert!(n <= 63, "exhaustive enumeration capped at 63 spins");
        GrayCodeSpins {
            config: vec![-1; n],
            counter: 0,
            total: 1u64 << n,
            started: false,
        }
    }

    /// Advances to the next configuration, returning the flipped spin
    /// index, or `None` when exhausted. The internal configuration is
    /// readable via [`GrayCodeSpins::config`].
    pub fn advance(&mut self) -> Option<usize> {
        if !self.started {
            self.started = true;
            return Some(usize::MAX);
        }
        self.counter += 1;
        if self.counter >= self.total {
            return None;
        }
        // Standard Gray-code step: flip the bit at the index of the
        // lowest set bit of the counter.
        let flip = self.counter.trailing_zeros() as usize;
        self.config[flip] = -self.config[flip];
        Some(flip)
    }

    /// The current spin configuration.
    pub fn config(&self) -> &[Spin] {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bit_spin_round_trip() {
        let bits = vec![0u8, 1, 1, 0, 1];
        let spins = bits_to_spins(&bits);
        assert_eq!(spins, vec![-1, 1, 1, -1, 1]);
        assert_eq!(spins_to_bits(&spins), bits);
    }

    #[test]
    fn empty_conversions() {
        assert!(bits_to_spins(&[]).is_empty());
        assert!(spins_to_bits(&[]).is_empty());
    }

    #[test]
    fn gray_enumeration_visits_every_configuration_once() {
        let mut e = GrayCodeSpins::new(4);
        let mut seen = HashSet::new();
        while e.advance().is_some() {
            assert!(
                seen.insert(e.config().to_vec()),
                "duplicate {:?}",
                e.config()
            );
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn gray_enumeration_flips_one_spin_at_a_time() {
        let mut e = GrayCodeSpins::new(5);
        assert_eq!(e.advance(), Some(usize::MAX));
        let mut prev = e.config().to_vec();
        while let Some(flip) = e.advance() {
            let cur = e.config().to_vec();
            let diffs: Vec<usize> = (0..5).filter(|&i| cur[i] != prev[i]).collect();
            assert_eq!(diffs, vec![flip]);
            prev = cur;
        }
    }

    #[test]
    fn single_spin_enumeration() {
        let mut e = GrayCodeSpins::new(1);
        assert_eq!(e.advance(), Some(usize::MAX));
        assert_eq!(e.config(), &[-1]);
        assert_eq!(e.advance(), Some(0));
        assert_eq!(e.config(), &[1]);
        assert_eq!(e.advance(), None);
    }

    #[test]
    fn zero_spins_yields_single_empty_configuration() {
        let mut e = GrayCodeSpins::new(0);
        assert_eq!(e.advance(), Some(usize::MAX));
        assert_eq!(e.advance(), None);
    }
}
