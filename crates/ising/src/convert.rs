//! QUBO ↔ Ising conversion (Eq. 4).
//!
//! Substituting `q_i = (s_i + 1)/2` into the QUBO objective gives
//!
//! ```text
//! Σ_{i≤j} Q_ij·q_i·q_j
//!   = Σ_{i<j} (Q_ij/4)·s_i·s_j
//!   + Σ_i (Q_ii/2 + ¼·Σ_{k<i} Q_ki + ¼·Σ_{k>i} Q_ik)·s_i
//!   + const ,
//! ```
//!
//! i.e. `g_ij = Q_ij/4`, `f_i = Q_ii/2 + ¼·(row+column sums of Q at i)`
//! — exactly the relations quoted under the paper's Eq. 4 — plus a
//! configuration-independent offset. Both conversion directions return
//! that offset explicitly so callers can reason about absolute energies
//! (the Fig. 4 analyses compare Ising energies against ML Euclidean
//! distances, which requires tracking constants).

use crate::{IsingProblem, QuboProblem};

/// Converts a QUBO to the equivalent Ising problem.
///
/// Returns `(ising, offset)` such that for all configurations,
/// `qubo.energy(q) == ising.energy(s) + offset` with `s = 2q − 1`.
pub fn qubo_to_ising(qubo: &QuboProblem) -> (IsingProblem, f64) {
    let n = qubo.num_bits();
    let mut ising = IsingProblem::new(n);
    let mut offset = 0.0;

    for i in 0..n {
        let d = qubo.diagonal(i);
        ising.add_linear(i, d / 2.0);
        offset += d / 2.0;
    }
    for (i, j, v) in qubo.off_diagonals() {
        ising.set_coupling(i, j, v / 4.0);
        ising.add_linear(i, v / 4.0);
        ising.add_linear(j, v / 4.0);
        offset += v / 4.0;
    }
    (ising, offset)
}

/// Converts an Ising problem to the equivalent QUBO.
///
/// Returns `(qubo, offset)` such that for all configurations,
/// `ising.energy(s) == qubo.energy(q) + offset` with `q = (s + 1)/2`.
pub fn ising_to_qubo(ising: &IsingProblem) -> (QuboProblem, f64) {
    let n = ising.num_spins();
    let mut qubo = QuboProblem::new(n);
    let mut offset = 0.0;

    // s_i = 2q_i − 1:
    //   f_i·s_i          = 2f_i·q_i − f_i
    //   g_ij·s_i·s_j     = 4g_ij·q_i·q_j − 2g_ij·q_i − 2g_ij·q_j + g_ij
    for i in 0..n {
        let f = ising.linear(i);
        qubo.add_diagonal(i, 2.0 * f);
        offset -= f;
    }
    for (i, j, g) in ising.couplings() {
        qubo.set_off_diagonal(i, j, 4.0 * g);
        qubo.add_diagonal(i, -2.0 * g);
        qubo.add_diagonal(j, -2.0 * g);
        offset += g;
    }
    (qubo, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spins::bits_to_spins;

    fn all_bit_configs(n: usize) -> impl Iterator<Item = Vec<u8>> {
        (0..(1u32 << n)).map(move |k| (0..n).map(|i| ((k >> i) & 1) as u8).collect())
    }

    fn sample_qubo() -> QuboProblem {
        let mut q = QuboProblem::new(4);
        q.set_diagonal(0, 1.5);
        q.set_diagonal(1, -2.0);
        q.set_diagonal(3, 0.75);
        q.set_off_diagonal(0, 1, 3.0);
        q.set_off_diagonal(1, 2, -1.0);
        q.set_off_diagonal(2, 3, 0.5);
        q.set_off_diagonal(0, 3, -4.0);
        q
    }

    #[test]
    fn qubo_to_ising_preserves_energy_up_to_offset() {
        let q = sample_qubo();
        let (ising, offset) = qubo_to_ising(&q);
        for bits in all_bit_configs(4) {
            let spins = bits_to_spins(&bits);
            let eq = q.energy(&bits);
            let ei = ising.energy(&spins) + offset;
            assert!((eq - ei).abs() < 1e-12, "bits {bits:?}: {eq} vs {ei}");
        }
    }

    #[test]
    fn ising_to_qubo_preserves_energy_up_to_offset() {
        let q = sample_qubo();
        let (ising, _) = qubo_to_ising(&q);
        let (q2, offset) = ising_to_qubo(&ising);
        for bits in all_bit_configs(4) {
            let spins = bits_to_spins(&bits);
            let ei = ising.energy(&spins);
            let eq = q2.energy(&bits) + offset;
            assert!((ei - eq).abs() < 1e-12, "bits {bits:?}: {ei} vs {eq}");
        }
    }

    #[test]
    fn round_trip_recovers_original_qubo_energies() {
        let q = sample_qubo();
        let (ising, off1) = qubo_to_ising(&q);
        let (q2, off2) = ising_to_qubo(&ising);
        // q.energy(b) = ising.energy(s) + off1 = q2.energy(b) + off2 + off1.
        for bits in all_bit_configs(4) {
            let e1 = q.energy(&bits);
            let e2 = q2.energy(&bits) + off2 + off1;
            assert!((e1 - e2).abs() < 1e-12);
        }
    }

    #[test]
    fn coefficient_relations_match_paper() {
        // g_ij = Q_ij/4 and f_i = Q_ii/2 + ¼(Σ_{k<i} Q_ki + Σ_{k>i} Q_ik).
        let q = sample_qubo();
        let (ising, _) = qubo_to_ising(&q);
        assert!((ising.coupling(0, 1) - 3.0 / 4.0).abs() < 1e-12);
        assert!((ising.coupling(1, 2) + 1.0 / 4.0).abs() < 1e-12);
        // f_0 = Q_00/2 + ¼(Q_01 + Q_03) = 0.75 + ¼(3 − 4) = 0.5.
        assert!((ising.linear(0) - 0.5).abs() < 1e-12);
        // f_2 = 0 + ¼(Q_12 + Q_23) = ¼(−1 + 0.5) = −0.125.
        assert!((ising.linear(2) + 0.125).abs() < 1e-12);
    }

    #[test]
    fn argmin_is_preserved() {
        let q = sample_qubo();
        let (ising, _) = qubo_to_ising(&q);
        let best_bits = all_bit_configs(4)
            .min_by(|a, b| q.energy(a).partial_cmp(&q.energy(b)).unwrap())
            .unwrap();
        let best_spins = all_bit_configs(4)
            .map(|b| bits_to_spins(&b))
            .min_by(|a, b| ising.energy(a).partial_cmp(&ising.energy(b)).unwrap())
            .unwrap();
        assert_eq!(bits_to_spins(&best_bits), best_spins);
    }

    #[test]
    fn empty_problem_converts() {
        let (ising, offset) = qubo_to_ising(&QuboProblem::new(0));
        assert_eq!(ising.num_spins(), 0);
        assert_eq!(offset, 0.0);
    }
}
