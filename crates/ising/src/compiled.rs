//! A frozen, cache-friendly view of an [`IsingProblem`] for Monte-Carlo
//! inner loops.
//!
//! [`IsingProblem`]'s adjacency-list storage (`Vec<Vec<(usize, f64)>>`)
//! is the right shape for *building* problems — couplings upsert in
//! place — but the wrong shape for *sweeping* them: every `flip_delta`
//! pointer-chases a per-spin heap allocation, and neighbor/weight pairs
//! interleave an 8-byte index with an 8-byte coefficient so half of
//! every cache line is the part the current loop doesn't want.
//!
//! [`CompiledProblem`] freezes a problem into CSR (compressed sparse
//! row) form: one contiguous `offsets` array delimiting each spin's
//! neighborhood inside flat `neighbors` and `weights` arrays, plus the
//! cached linear terms. Rows are sorted by neighbor index, so the
//! layout — and everything downstream of it, including RNG draw order
//! during intrinsic-control-error refreezes — is a pure function of the
//! problem, never of coupling insertion order.
//!
//! The annealer's sweep engine (`quamax_anneal::kernel`) builds one
//! `CompiledProblem` per programmed problem and shares it read-only
//! across worker threads; per-anneal ICE noise *refreezes* coefficients
//! into a per-thread scratch copy via [`CompiledProblem::refreeze_from`]
//! plus the `perturb_*` visitors, which touch only the two flat
//! coefficient arrays (no re-sorting, no reallocation).

use crate::ising::IsingProblem;
use crate::Spin;

/// A CSR-layout snapshot of an Ising problem.
///
/// ```
/// use quamax_ising::{CompiledProblem, IsingProblem};
///
/// let mut p = IsingProblem::new(3);
/// p.set_coupling(0, 1, -1.0);
/// p.set_linear(0, 0.5);
/// let c = CompiledProblem::new(&p);
/// let s = [-1, -1, 1];
/// assert_eq!(c.energy(&s), p.energy(&s));
/// assert_eq!(c.flip_delta(&s, 0), p.flip_delta(&s, 0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledProblem {
    linear: Vec<f64>,
    /// `offsets[i]..offsets[i+1]` delimits spin `i`'s row.
    offsets: Vec<u32>,
    /// Flat neighbor indices, row-sorted ascending.
    neighbors: Vec<u32>,
    /// Coefficients parallel to `neighbors` (each undirected coupling
    /// appears in both endpoint rows).
    weights: Vec<f64>,
    /// For each directed entry, the index of its reverse entry — lets a
    /// symmetric perturbation touch both directions in one pass.
    twin: Vec<u32>,
}

impl CompiledProblem {
    /// Freezes `problem` into CSR form.
    ///
    /// # Panics
    /// Panics if the problem has more than `u32::MAX` spins or directed
    /// couplings (far beyond any chip this workspace models).
    pub fn new(problem: &IsingProblem) -> Self {
        let n = problem.num_spins();
        assert!(
            n <= u32::MAX as usize,
            "problem too large for u32 CSR indices"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let total: usize = 2 * problem.num_couplings();
        assert!(
            total <= u32::MAX as usize,
            "problem too large for u32 CSR indices"
        );
        let mut neighbors = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);

        offsets.push(0u32);
        let mut row: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            row.clear();
            row.extend_from_slice(problem.neighbors(i));
            row.sort_unstable_by_key(|&(j, _)| j);
            for &(j, g) in &row {
                neighbors.push(j as u32);
                weights.push(g);
            }
            offsets.push(neighbors.len() as u32);
        }

        // Twin table: for entry (i → j) find (j → i) by binary search in
        // row j (rows are sorted).
        let mut twin = vec![0u32; neighbors.len()];
        for i in 0..n {
            for k in offsets[i] as usize..offsets[i + 1] as usize {
                let j = neighbors[k] as usize;
                let row_j = &neighbors[offsets[j] as usize..offsets[j + 1] as usize];
                let pos = row_j
                    .binary_search(&(i as u32))
                    .expect("adjacency must be symmetric");
                twin[k] = offsets[j] + pos as u32;
            }
        }

        CompiledProblem {
            linear: problem.linear_terms().to_vec(),
            offsets,
            neighbors,
            weights,
            twin,
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.linear.len()
    }

    /// Number of distinct (undirected) couplings.
    pub fn num_couplings(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The linear coefficient `f_i`.
    #[inline]
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// All linear coefficients.
    pub fn linear_terms(&self) -> &[f64] {
        &self.linear
    }

    /// Spin `i`'s neighborhood as parallel `(indices, coefficients)`
    /// slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }

    /// Number of neighbors of spin `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Spin `i`'s row as a half-open range of flat CSR entry indices —
    /// the strided-accessor form of [`CompiledProblem::row`] used by
    /// kernels that keep per-entry side arrays (e.g. a replica batch's
    /// `weights[e·R + r]` strips) parallel to the CSR layout.
    #[inline]
    pub fn row_bounds(&self, i: usize) -> (usize, usize) {
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Total directed CSR entries (`2 × num_couplings`): the length of
    /// the flat [`CompiledProblem::neighbors_flat`] /
    /// [`CompiledProblem::weights_flat`] arrays.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// The flat neighbor-index array (all rows concatenated, delimited
    /// by [`CompiledProblem::row_bounds`]).
    #[inline]
    pub fn neighbors_flat(&self) -> &[u32] {
        &self.neighbors
    }

    /// The flat coefficient array parallel to
    /// [`CompiledProblem::neighbors_flat`].
    #[inline]
    pub fn weights_flat(&self) -> &[f64] {
        &self.weights
    }

    /// The local field `h_i = f_i + Σ_j g_ij·s_j` around spin `i`.
    #[inline]
    pub fn local_field(&self, spins: &[Spin], i: usize) -> f64 {
        let (idx, w) = self.row(i);
        let mut h = self.linear[i];
        for (&j, &g) in idx.iter().zip(w) {
            h += g * spins[j as usize] as f64;
        }
        h
    }

    /// The energy change from flipping spin `i`:
    /// `ΔE = −2·s_i·h_i` (cross-checked against
    /// [`IsingProblem::flip_delta`] by the ising property tests).
    #[inline]
    pub fn flip_delta(&self, spins: &[Spin], i: usize) -> f64 {
        -2.0 * spins[i] as f64 * self.local_field(spins, i)
    }

    /// The total energy `E(s)` (Eq. 2), identical to
    /// [`IsingProblem::energy`] up to floating-point addition order.
    ///
    /// # Panics
    /// Panics when `spins.len()` differs from the spin count.
    pub fn energy(&self, spins: &[Spin]) -> f64 {
        assert_eq!(
            spins.len(),
            self.num_spins(),
            "configuration length mismatch"
        );
        let mut e = 0.0;
        for i in 0..self.num_spins() {
            let s = spins[i] as f64;
            e += self.linear[i] * s;
            let (idx, w) = self.row(i);
            for (&j, &g) in idx.iter().zip(w) {
                if j as usize > i {
                    e += g * s * spins[j as usize] as f64;
                }
            }
        }
        e
    }

    /// Fills `out` with every spin's local field (the initialization of
    /// an incremental sweep state).
    pub fn local_fields_into(&self, spins: &[Spin], out: &mut Vec<f64>) {
        assert_eq!(
            spins.len(),
            self.num_spins(),
            "configuration length mismatch"
        );
        out.clear();
        out.extend((0..self.num_spins()).map(|i| self.local_field(spins, i)));
    }

    /// Copies `base`'s coefficients into `self`, reusing allocations —
    /// two `memcpy`-like passes over `linear`/`weights`. The intended
    /// use is a per-thread scratch refreezing the *same* problem once
    /// per anneal, so the CSR structure is only (re)copied when its
    /// shape differs (fresh or repurposed scratch); same-shape callers
    /// skip straight past it, with full structural equality checked in
    /// debug builds only.
    pub fn refreeze_from(&mut self, base: &CompiledProblem) {
        self.linear.clear();
        self.linear.extend_from_slice(&base.linear);
        self.weights.clear();
        self.weights.extend_from_slice(&base.weights);
        if self.offsets.len() != base.offsets.len() || self.neighbors.len() != base.neighbors.len()
        {
            self.offsets.clone_from(&base.offsets);
            self.neighbors.clone_from(&base.neighbors);
            self.twin.clone_from(&base.twin);
        }
        debug_assert_eq!(
            self.offsets, base.offsets,
            "scratch compiled from a different problem"
        );
        debug_assert_eq!(
            self.neighbors, base.neighbors,
            "scratch compiled from a different problem"
        );
    }

    /// Overwrites the linear coefficient `f_i` in place.
    ///
    /// Together with [`CompiledProblem::set_entry_weight`] this is the
    /// *coefficient refresh* surface: a caller that holds a problem
    /// whose CSR **structure** is fixed (same spins, same coupling
    /// sparsity pattern) can re-target the frozen view to new
    /// coefficient values without re-sorting or reallocating — the
    /// per-decode path of a compile-once decode session, where only
    /// the receive-vector-dependent fields (and a global scale) move
    /// between Monte-Carlo batches.
    #[inline]
    pub fn set_linear_term(&mut self, i: usize, f: f64) {
        self.linear[i] = f;
    }

    /// The CSR entry index of the directed coupling `i → j`, found by
    /// binary search in spin `i`'s sorted row — `None` when the pair is
    /// not coupled. The returned index is stable for the lifetime of
    /// the compiled structure, so callers refreshing the same problem
    /// shape many times resolve each coupler once and then write
    /// through [`CompiledProblem::set_entry_weight`].
    pub fn coupler_entry(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.neighbors[lo..hi]
            .binary_search(&(j as u32))
            .ok()
            .map(|pos| lo + pos)
    }

    /// Writes the undirected coupling held at CSR entry `k` — both the
    /// entry itself and its twin (the reverse direction) — keeping the
    /// stored problem symmetric.
    #[inline]
    pub fn set_entry_weight(&mut self, k: usize, g: f64) {
        self.weights[k] = g;
        self.weights[self.twin[k] as usize] = g;
    }

    /// The coefficient currently held at CSR entry `k`.
    #[inline]
    pub fn entry_weight(&self, k: usize) -> f64 {
        self.weights[k]
    }

    /// Applies `f` to every linear coefficient, in spin order.
    pub fn perturb_linear(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in self.linear.iter_mut() {
            *v = f(*v);
        }
    }

    /// Applies `f` to every undirected coupling once — visited in CSR
    /// order (`i` ascending, then `j` ascending, `i < j`) — writing the
    /// result to both directed entries. The visit order is layout-
    /// determined, so callers drawing noise per coupling get a stable
    /// stream for a given problem.
    pub fn perturb_couplings(&mut self, mut f: impl FnMut(f64) -> f64) {
        for i in 0..self.num_spins() {
            for k in self.offsets[i] as usize..self.offsets[i + 1] as usize {
                if (self.neighbors[k] as usize) > i {
                    let g = f(self.weights[k]);
                    self.weights[k] = g;
                    self.weights[self.twin[k] as usize] = g;
                }
            }
        }
    }
}

impl From<&IsingProblem> for CompiledProblem {
    fn from(problem: &IsingProblem) -> Self {
        CompiledProblem::new(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> IsingProblem {
        let mut p = IsingProblem::new(3);
        p.set_linear(0, 1.0);
        p.set_linear(1, -2.0);
        p.set_linear(2, 0.5);
        p.set_coupling(0, 1, 1.0);
        p.set_coupling(1, 2, -1.0);
        p.set_coupling(0, 2, 0.25);
        p
    }

    fn all_configs(n: usize) -> impl Iterator<Item = Vec<Spin>> {
        (0..1u32 << n).map(move |k| {
            (0..n)
                .map(|i| if (k >> i) & 1 == 1 { 1 } else { -1 })
                .collect()
        })
    }

    #[test]
    fn energy_and_delta_match_naive_exhaustively() {
        let p = triangle();
        let c = CompiledProblem::new(&p);
        for s in all_configs(3) {
            assert!((c.energy(&s) - p.energy(&s)).abs() < 1e-12);
            for i in 0..3 {
                assert!((c.flip_delta(&s, i) - p.flip_delta(&s, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn layout_is_insertion_order_independent() {
        let mut a = IsingProblem::new(4);
        a.set_coupling(0, 3, 1.0);
        a.set_coupling(0, 1, -1.0);
        a.set_coupling(2, 3, 0.5);
        let mut b = IsingProblem::new(4);
        b.set_coupling(2, 3, 0.5);
        b.set_coupling(0, 1, -1.0);
        b.set_coupling(3, 0, 1.0);
        assert_eq!(CompiledProblem::new(&a), CompiledProblem::new(&b));
    }

    #[test]
    fn rows_expose_sorted_neighborhoods() {
        let p = triangle();
        let c = CompiledProblem::new(&p);
        assert_eq!(c.num_spins(), 3);
        assert_eq!(c.num_couplings(), 3);
        let (idx, w) = c.row(0);
        assert_eq!(idx, &[1, 2]);
        assert_eq!(w, &[1.0, 0.25]);
        assert_eq!(c.degree(1), 2);
    }

    #[test]
    fn local_fields_match_definition() {
        let p = triangle();
        let c = CompiledProblem::new(&p);
        let s = [1, -1, 1];
        let mut fields = Vec::new();
        c.local_fields_into(&s, &mut fields);
        // h_0 = f_0 + g_01·s_1 + g_02·s_2 = 1 − 1 + 0.25
        assert!((fields[0] - 0.25).abs() < 1e-12);
        // h_1 = −2 + 1·1 + (−1)·1 = −2
        assert!((fields[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn refreeze_and_perturb_touch_both_directions() {
        let p = triangle();
        let base = CompiledProblem::new(&p);
        let mut scratch = base.clone();
        let mut step = 0.0;
        scratch.perturb_couplings(|g| {
            step += 1.0;
            g + step
        });
        // Every directed entry moved, symmetrically.
        for i in 0..3 {
            let (idx, w) = scratch.row(i);
            for (&j, &g) in idx.iter().zip(w) {
                let (jidx, jw) = scratch.row(j as usize);
                let back = jidx.iter().position(|&k| k as usize == i).unwrap();
                assert_eq!(g, jw[back], "asymmetric perturbation at ({i},{j})");
                assert_ne!(g, p.coupling(i, j as usize), "coupling ({i},{j}) untouched");
            }
        }
        // Refreeze restores the base exactly.
        scratch.refreeze_from(&base);
        assert_eq!(scratch, base);
    }

    #[test]
    fn coefficient_refresh_matches_a_fresh_compile() {
        // Re-targeting a compiled structure to new coefficient values
        // must be indistinguishable from compiling the new problem.
        let p = triangle();
        let mut c = CompiledProblem::new(&p);
        let mut p2 = triangle();
        p2.set_linear(0, -3.5);
        p2.set_linear(2, 7.0);
        p2.set_coupling(0, 1, 2.25);
        p2.set_coupling(1, 2, 0.125);
        for i in 0..3 {
            c.set_linear_term(i, p2.linear(i));
        }
        for (i, j, g) in p2.couplings() {
            let k = c.coupler_entry(i, j).expect("same sparsity");
            c.set_entry_weight(k, g);
            assert_eq!(c.entry_weight(k), g);
        }
        assert_eq!(c, CompiledProblem::new(&p2));
        assert_eq!(c.coupler_entry(0, 0), None);
    }

    #[test]
    fn flat_accessors_mirror_rows() {
        let p = triangle();
        let c = CompiledProblem::new(&p);
        assert_eq!(c.num_entries(), 2 * c.num_couplings());
        for i in 0..3 {
            let (lo, hi) = c.row_bounds(i);
            let (idx, w) = c.row(i);
            assert_eq!(&c.neighbors_flat()[lo..hi], idx);
            assert_eq!(&c.weights_flat()[lo..hi], w);
        }
    }

    #[test]
    fn empty_problem_compiles() {
        let p = IsingProblem::new(5);
        let c = CompiledProblem::new(&p);
        assert_eq!(c.num_couplings(), 0);
        assert_eq!(c.energy(&[1, 1, -1, 1, -1]), 0.0);
    }
}
