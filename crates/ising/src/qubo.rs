//! The QUBO problem form (Eq. 3).

/// A Quadratic Unconstrained Binary Optimization problem:
/// `E(q) = Σ_{i≤j} Q_ij·q_i·q_j` over bits `q ∈ {0,1}^n`, with `Q`
/// upper-triangular (diagonal entries are the linear terms, since
/// `q_i² = q_i`).
///
/// The ML detection problem lands in this form first (paper §3.2.1,
/// Appendix A); [`crate::qubo_to_ising`] then produces what the annealer
/// runs.
#[derive(Clone, Debug, PartialEq)]
pub struct QuboProblem {
    n: usize,
    /// diagonal[i] = Q_ii.
    diagonal: Vec<f64>,
    /// Off-diagonal upper-triangular terms, adjacency in both directions
    /// for symmetric iteration; the canonical value lives at i < j.
    adjacency: Vec<Vec<(usize, f64)>>,
    coupling_count: usize,
}

impl QuboProblem {
    /// A QUBO over `n` bits with all coefficients zero.
    pub fn new(n: usize) -> Self {
        QuboProblem {
            n,
            diagonal: vec![0.0; n],
            adjacency: vec![Vec::new(); n],
            coupling_count: 0,
        }
    }

    /// Number of bits.
    pub fn num_bits(&self) -> usize {
        self.n
    }

    /// Number of distinct off-diagonal terms set.
    pub fn num_couplings(&self) -> usize {
        self.coupling_count
    }

    /// The diagonal (linear) coefficient `Q_ii`.
    pub fn diagonal(&self, i: usize) -> f64 {
        self.diagonal[i]
    }

    /// Sets `Q_ii`.
    pub fn set_diagonal(&mut self, i: usize, v: f64) {
        self.diagonal[i] = v;
    }

    /// Adds to `Q_ii`.
    pub fn add_diagonal(&mut self, i: usize, v: f64) {
        self.diagonal[i] += v;
    }

    /// The off-diagonal coefficient `Q_ij` (`i ≠ j`, orientation
    /// irrelevant; 0 when unset).
    pub fn off_diagonal(&self, i: usize, j: usize) -> f64 {
        self.adjacency[i]
            .iter()
            .find(|&&(k, _)| k == j)
            .map_or(0.0, |&(_, v)| v)
    }

    /// Sets `Q_ij` (`i ≠ j`), overwriting any prior value.
    ///
    /// # Panics
    /// Panics on `i == j` (use [`QuboProblem::set_diagonal`]) or
    /// out-of-range indices.
    pub fn set_off_diagonal(&mut self, i: usize, j: usize, v: f64) {
        assert_ne!(i, j, "diagonal terms go through set_diagonal");
        assert!(i < self.n && j < self.n, "bit index out of range");
        let existed = Self::upsert(&mut self.adjacency[i], j, v);
        Self::upsert(&mut self.adjacency[j], i, v);
        if !existed {
            self.coupling_count += 1;
        }
    }

    /// Adds to `Q_ij`.
    pub fn add_off_diagonal(&mut self, i: usize, j: usize, v: f64) {
        let cur = self.off_diagonal(i, j);
        self.set_off_diagonal(i, j, cur + v);
    }

    fn upsert(list: &mut Vec<(usize, f64)>, j: usize, v: f64) -> bool {
        for entry in list.iter_mut() {
            if entry.0 == j {
                entry.1 = v;
                return true;
            }
        }
        list.push((j, v));
        false
    }

    /// Iterates over each distinct off-diagonal term once, as
    /// `(i, j, Q_ij)` with `i < j`.
    pub fn off_diagonals(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, list)| {
            list.iter()
                .filter(move |&&(j, _)| i < j)
                .map(move |&(j, v)| (i, j, v))
        })
    }

    /// The QUBO energy of a bit configuration (Eq. 3).
    ///
    /// # Panics
    /// Panics on length mismatch; debug-asserts binary values.
    pub fn energy(&self, bits: &[u8]) -> f64 {
        assert_eq!(bits.len(), self.n, "configuration length mismatch");
        debug_assert!(bits.iter().all(|&b| b <= 1));
        let mut e = 0.0;
        for (i, &q) in bits.iter().enumerate() {
            if q == 0 {
                continue;
            }
            e += self.diagonal[i];
            for &(j, v) in &self.adjacency[i] {
                if j > i && bits[j] == 1 {
                    e += v;
                }
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Appendix-A shape: two bits, two diagonals, one
    /// off-diagonal.
    fn two_bit(q11: f64, q22: f64, q12: f64) -> QuboProblem {
        let mut p = QuboProblem::new(2);
        p.set_diagonal(0, q11);
        p.set_diagonal(1, q22);
        p.set_off_diagonal(0, 1, q12);
        p
    }

    #[test]
    fn energy_enumerates_correctly() {
        let p = two_bit(1.0, -2.0, 4.0);
        assert_eq!(p.energy(&[0, 0]), 0.0);
        assert_eq!(p.energy(&[1, 0]), 1.0);
        assert_eq!(p.energy(&[0, 1]), -2.0);
        assert_eq!(p.energy(&[1, 1]), 3.0);
    }

    #[test]
    fn off_diagonal_is_orientation_free() {
        let p = two_bit(0.0, 0.0, 2.5);
        assert_eq!(p.off_diagonal(0, 1), 2.5);
        assert_eq!(p.off_diagonal(1, 0), 2.5);
    }

    #[test]
    fn add_accumulates() {
        let mut p = QuboProblem::new(3);
        p.add_diagonal(1, 1.0);
        p.add_diagonal(1, 0.5);
        assert_eq!(p.diagonal(1), 1.5);
        p.add_off_diagonal(0, 2, 1.0);
        p.add_off_diagonal(2, 0, -0.25);
        assert_eq!(p.off_diagonal(0, 2), 0.75);
        assert_eq!(p.num_couplings(), 1);
    }

    #[test]
    fn off_diagonals_iterates_canonical_orientation() {
        let mut p = QuboProblem::new(3);
        p.set_off_diagonal(2, 0, 1.0);
        p.set_off_diagonal(1, 2, -1.0);
        let mut edges: Vec<_> = p.off_diagonals().collect();
        edges.sort_by_key(|&(i, j, _)| (i, j));
        assert_eq!(edges, vec![(0, 2, 1.0), (1, 2, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "set_diagonal")]
    fn diagonal_through_off_diagonal_panics() {
        let mut p = QuboProblem::new(2);
        p.set_off_diagonal(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let p = QuboProblem::new(3);
        let _ = p.energy(&[0, 1]);
    }
}
