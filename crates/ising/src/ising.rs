//! The Ising spin-glass problem form (Eq. 2).

use crate::Spin;

/// An Ising problem: linear terms `f_i` ("fields") and symmetric
/// couplings `g_ij` over spins `s ∈ {−1,+1}^n`, minimized as
/// `E(s) = Σ_{i<j} g_ij·s_i·s_j + Σ_i f_i·s_i`.
///
/// ```
/// use quamax_ising::{exact_ground_state, IsingProblem};
///
/// // Two spins that want to align, with a field pushing spin 0 down.
/// let mut p = IsingProblem::new(2);
/// p.set_coupling(0, 1, -1.0);
/// p.set_linear(0, 0.5);
/// assert_eq!(p.energy(&[-1, -1]), -1.5);
/// let gs = exact_ground_state(&p);
/// assert_eq!(gs.ground_states, vec![vec![-1, -1]]);
/// ```
///
/// Storage is an adjacency list (each coupling appears in both
/// endpoints' lists), sized for the two regimes this workspace uses:
/// near-fully-connected logical problems of up to a few hundred spins
/// (the ML reductions), and sparse Chimera-structured physical problems
/// of up to a few thousand spins (degree ≤ 6). Both need fast
/// `neighbors(i)` for Monte-Carlo Δ-energy updates.
#[derive(Clone, Debug, PartialEq)]
pub struct IsingProblem {
    linear: Vec<f64>,
    /// adjacency[i] = list of (j, g_ij), both directions stored.
    adjacency: Vec<Vec<(usize, f64)>>,
    coupling_count: usize,
}

impl IsingProblem {
    /// A problem over `n` spins with all coefficients zero.
    pub fn new(n: usize) -> Self {
        IsingProblem {
            linear: vec![0.0; n],
            adjacency: vec![Vec::new(); n],
            coupling_count: 0,
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.linear.len()
    }

    /// Number of distinct non-zero-set couplings.
    pub fn num_couplings(&self) -> usize {
        self.coupling_count
    }

    /// The linear coefficient `f_i`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// All linear coefficients.
    pub fn linear_terms(&self) -> &[f64] {
        &self.linear
    }

    /// Sets `f_i`.
    pub fn set_linear(&mut self, i: usize, f: f64) {
        self.linear[i] = f;
    }

    /// Adds to `f_i`.
    pub fn add_linear(&mut self, i: usize, f: f64) {
        self.linear[i] += f;
    }

    /// The coupling `g_ij` (0 when unset).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        self.adjacency[i]
            .iter()
            .find(|&&(k, _)| k == j)
            .map_or(0.0, |&(_, g)| g)
    }

    /// Sets the coupling `g_ij = g_ji = g`, overwriting any prior value.
    ///
    /// # Panics
    /// Panics on a self-coupling (`i == j`) or out-of-range index.
    pub fn set_coupling(&mut self, i: usize, j: usize, g: f64) {
        assert_ne!(i, j, "self-couplings are not part of the Ising form");
        assert!(
            i < self.num_spins() && j < self.num_spins(),
            "spin index out of range"
        );
        let existed = Self::upsert(&mut self.adjacency[i], j, g);
        let existed2 = Self::upsert(&mut self.adjacency[j], i, g);
        debug_assert_eq!(existed, existed2, "adjacency lists out of sync");
        if !existed {
            self.coupling_count += 1;
        }
    }

    /// Adds to the coupling `g_ij` — one upsert per endpoint (no
    /// read-back scan; reductions accumulating dense Gram terms call
    /// this in a tight loop).
    pub fn add_coupling(&mut self, i: usize, j: usize, g: f64) {
        assert_ne!(i, j, "self-couplings are not part of the Ising form");
        assert!(
            i < self.num_spins() && j < self.num_spins(),
            "spin index out of range"
        );
        let existed = Self::upsert_with(&mut self.adjacency[i], j, g, |cur, d| cur + d);
        let existed2 = Self::upsert_with(&mut self.adjacency[j], i, g, |cur, d| cur + d);
        debug_assert_eq!(existed, existed2, "adjacency lists out of sync");
        if !existed {
            self.coupling_count += 1;
        }
    }

    fn upsert(list: &mut Vec<(usize, f64)>, j: usize, g: f64) -> bool {
        Self::upsert_with(list, j, g, |_, new| new)
    }

    fn upsert_with(
        list: &mut Vec<(usize, f64)>,
        j: usize,
        g: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> bool {
        for entry in list.iter_mut() {
            if entry.0 == j {
                entry.1 = combine(entry.1, g);
                return true;
            }
        }
        list.push((j, g));
        false
    }

    /// Neighbours of spin `i`: each `(j, g_ij)` with a set coupling.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adjacency[i]
    }

    /// Iterates over each distinct coupling once, as `(i, j, g)` with
    /// `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, list)| {
            list.iter()
                .filter(move |&&(j, _)| i < j)
                .map(move |&(j, g)| (i, j, g))
        })
    }

    /// The total energy `E(s)` of a configuration (Eq. 2).
    ///
    /// # Panics
    /// Panics when `spins.len()` differs from the spin count; debug-
    /// asserts ±1 values.
    pub fn energy(&self, spins: &[Spin]) -> f64 {
        assert_eq!(
            spins.len(),
            self.num_spins(),
            "configuration length mismatch"
        );
        debug_assert!(spins.iter().all(|&s| s == 1 || s == -1));
        let mut e = 0.0;
        for (i, &s) in spins.iter().enumerate() {
            e += self.linear[i] * s as f64;
            for &(j, g) in &self.adjacency[i] {
                if j > i {
                    e += g * (s as f64) * (spins[j] as f64);
                }
            }
        }
        e
    }

    /// The energy change from flipping spin `i` in configuration
    /// `spins`: `ΔE = −2·s_i·(f_i + Σ_j g_ij·s_j)`.
    ///
    /// This is the inner loop of every Monte-Carlo backend; it touches
    /// only spin `i`'s neighbourhood.
    #[inline]
    pub fn flip_delta(&self, spins: &[Spin], i: usize) -> f64 {
        let mut local = self.linear[i];
        for &(j, g) in &self.adjacency[i] {
            local += g * spins[j] as f64;
        }
        -2.0 * spins[i] as f64 * local
    }

    /// Largest absolute coefficient (over fields and couplings). The
    /// hardware renormalizes problems so this equals 1 before
    /// programming; see the chimera crate.
    pub fn max_abs_coefficient(&self) -> f64 {
        let lin = self.linear.iter().map(|f| f.abs()).fold(0.0f64, f64::max);
        let coup = self
            .couplings()
            .map(|(_, _, g)| g.abs())
            .fold(0.0f64, f64::max);
        lin.max(coup)
    }

    /// Returns a copy with every coefficient multiplied by `k`. Scaling
    /// preserves the argmin (for `k > 0`), so renormalization never
    /// changes the decoded solution — only its robustness to noise.
    pub fn scaled(&self, k: f64) -> IsingProblem {
        let mut out = self.clone();
        for f in out.linear.iter_mut() {
            *f *= k;
        }
        for list in out.adjacency.iter_mut() {
            for entry in list.iter_mut() {
                entry.1 *= k;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-spin triangle used across tests:
    /// f = [1, −2, 0.5], g_01 = 1, g_12 = −1, g_02 = 0.25.
    fn triangle() -> IsingProblem {
        let mut p = IsingProblem::new(3);
        p.set_linear(0, 1.0);
        p.set_linear(1, -2.0);
        p.set_linear(2, 0.5);
        p.set_coupling(0, 1, 1.0);
        p.set_coupling(1, 2, -1.0);
        p.set_coupling(0, 2, 0.25);
        p
    }

    #[test]
    fn energy_matches_hand_computation() {
        let p = triangle();
        // s = [+1, −1, +1]:
        // fields: 1·1 + (−2)(−1) + 0.5·1 = 3.5
        // couplings: 1·(1·−1) + (−1)(−1·1) + 0.25(1·1) = −1 + 1 + 0.25
        assert!((p.energy(&[1, -1, 1]) - 3.75).abs() < 1e-12);
        // all-down configuration:
        // fields: −1 + 2 − 0.5 = 0.5; couplings: 1 + (−1) + 0.25 = 0.25
        assert!((p.energy(&[-1, -1, -1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_agrees_with_energy_difference() {
        let p = triangle();
        let configs: [[Spin; 3]; 4] = [[1, 1, 1], [1, -1, 1], [-1, -1, -1], [-1, 1, -1]];
        for c in configs {
            for i in 0..3 {
                let mut flipped = c;
                flipped[i] = -flipped[i];
                let direct = p.energy(&flipped) - p.energy(&c);
                let fast = p.flip_delta(&c, i);
                assert!((direct - fast).abs() < 1e-12, "config {c:?} flip {i}");
            }
        }
    }

    #[test]
    fn coupling_is_symmetric_and_overwritable() {
        let mut p = IsingProblem::new(4);
        p.set_coupling(2, 0, 3.0);
        assert_eq!(p.coupling(0, 2), 3.0);
        assert_eq!(p.coupling(2, 0), 3.0);
        p.set_coupling(0, 2, -1.5);
        assert_eq!(p.coupling(2, 0), -1.5);
        assert_eq!(p.num_couplings(), 1);
    }

    #[test]
    fn add_accumulates() {
        let mut p = IsingProblem::new(2);
        p.add_linear(0, 1.0);
        p.add_linear(0, 2.0);
        assert_eq!(p.linear(0), 3.0);
        p.add_coupling(0, 1, 0.5);
        p.add_coupling(0, 1, 0.25);
        assert_eq!(p.coupling(0, 1), 0.75);
    }

    #[test]
    fn couplings_iterator_visits_each_edge_once() {
        let p = triangle();
        let edges: Vec<(usize, usize, f64)> = p.couplings().collect();
        assert_eq!(edges.len(), 3);
        for (i, j, _) in edges {
            assert!(i < j);
        }
    }

    #[test]
    fn max_abs_and_scaling() {
        let p = triangle();
        assert_eq!(p.max_abs_coefficient(), 2.0);
        let half = p.scaled(0.5);
        assert_eq!(half.max_abs_coefficient(), 1.0);
        // Scaling scales energies uniformly.
        let s = [1, -1, 1];
        assert!((half.energy(&s) - 0.5 * p.energy(&s)).abs() < 1e-12);
    }

    #[test]
    fn unset_coupling_is_zero() {
        let p = IsingProblem::new(3);
        assert_eq!(p.coupling(0, 1), 0.0);
        assert_eq!(p.num_couplings(), 0);
    }

    #[test]
    #[should_panic(expected = "self-couplings")]
    fn self_coupling_panics() {
        let mut p = IsingProblem::new(2);
        p.set_coupling(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_configuration_length_panics() {
        let p = triangle();
        let _ = p.energy(&[1, -1]);
    }
}
