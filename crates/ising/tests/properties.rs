//! Property-based tests for the Ising/QUBO forms and conversions.

use proptest::prelude::*;
use quamax_ising::spins::bits_to_spins;
use quamax_ising::{
    exact_ground_state, ising_to_qubo, qubo_to_ising, rank_all_solutions, IsingProblem,
    QuboProblem,
};

const N: usize = 6;

/// Strategy: a dense-ish random Ising problem over `N` spins.
fn ising_problem() -> impl Strategy<Value = IsingProblem> {
    let coeffs = proptest::collection::vec(-5.0f64..5.0, N + N * (N - 1) / 2);
    coeffs.prop_map(|c| {
        let mut p = IsingProblem::new(N);
        let mut it = c.into_iter();
        for i in 0..N {
            p.set_linear(i, it.next().unwrap());
        }
        for i in 0..N {
            for j in (i + 1)..N {
                p.set_coupling(i, j, it.next().unwrap());
            }
        }
        p
    })
}

/// Strategy: a random QUBO over `N` bits.
fn qubo_problem() -> impl Strategy<Value = QuboProblem> {
    let coeffs = proptest::collection::vec(-5.0f64..5.0, N + N * (N - 1) / 2);
    coeffs.prop_map(|c| {
        let mut p = QuboProblem::new(N);
        let mut it = c.into_iter();
        for i in 0..N {
            p.set_diagonal(i, it.next().unwrap());
        }
        for i in 0..N {
            for j in (i + 1)..N {
                p.set_off_diagonal(i, j, it.next().unwrap());
            }
        }
        p
    })
}

fn all_bits(n: usize) -> impl Iterator<Item = Vec<u8>> {
    (0..(1u32 << n)).map(move |k| (0..n).map(|i| ((k >> i) & 1) as u8).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 4 both ways: energies agree up to the returned offsets on
    /// every configuration.
    #[test]
    fn conversion_energy_identity(q in qubo_problem()) {
        let (ising, off) = qubo_to_ising(&q);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!((q.energy(&bits) - (ising.energy(&s) + off)).abs() < 1e-9);
        }
    }

    #[test]
    fn reverse_conversion_energy_identity(p in ising_problem()) {
        let (qubo, off) = ising_to_qubo(&p);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!((p.energy(&s) - (qubo.energy(&bits) + off)).abs() < 1e-9);
        }
    }

    /// Conversions preserve the argmin set.
    #[test]
    fn conversion_preserves_ground_state(q in qubo_problem()) {
        let (ising, _) = qubo_to_ising(&q);
        let gs = exact_ground_state(&ising);
        // The Ising ground state maps to a QUBO configuration attaining
        // the QUBO minimum.
        let qubo_min = all_bits(N)
            .map(|b| q.energy(&b))
            .fold(f64::INFINITY, f64::min);
        for spins in &gs.ground_states {
            let bits: Vec<u8> = spins.iter().map(|&s| ((s + 1) / 2) as u8).collect();
            prop_assert!((q.energy(&bits) - qubo_min).abs() < 1e-6);
        }
    }

    /// flip_delta equals the direct energy difference at random points.
    #[test]
    fn flip_delta_consistency(p in ising_problem(), k in 0u32..64, i in 0usize..N) {
        let bits: Vec<u8> = (0..N).map(|b| ((k >> b) & 1) as u8).collect();
        let mut spins = bits_to_spins(&bits);
        let before = p.energy(&spins);
        let delta = p.flip_delta(&spins, i);
        spins[i] = -spins[i];
        let after = p.energy(&spins);
        prop_assert!(((after - before) - delta).abs() < 1e-9);
    }

    /// The exact solver's minimum lower-bounds every enumerated energy,
    /// and the ranking is consistent with it.
    #[test]
    fn exact_is_a_lower_bound(p in ising_problem()) {
        let sol = exact_ground_state(&p);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!(p.energy(&s) >= sol.energy - 1e-9);
        }
        let ranked = rank_all_solutions(&p, 1e-9);
        prop_assert!((ranked[0].energy - sol.energy).abs() < 1e-9);
        let total: usize = ranked.iter().map(|r| r.degeneracy).sum();
        prop_assert_eq!(total, 1 << N);
    }

    /// Scaling by a positive constant preserves the ground-state set.
    #[test]
    fn scaling_preserves_argmin(p in ising_problem(), k in 0.1f64..10.0) {
        let scaled = p.scaled(k);
        let a = exact_ground_state(&p);
        let b = exact_ground_state(&scaled);
        prop_assert_eq!(a.ground_states, b.ground_states);
        prop_assert!((b.energy - k * a.energy).abs() < 1e-6 * (1.0 + b.energy.abs()));
    }
}
