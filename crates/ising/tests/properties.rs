//! Property-based tests for the Ising/QUBO forms and conversions.

use proptest::prelude::*;
use quamax_ising::spins::bits_to_spins;
use quamax_ising::{
    exact_ground_state, ising_to_qubo, qubo_to_ising, rank_all_solutions, CompiledProblem,
    IsingProblem, QuboProblem,
};

const N: usize = 6;

/// Strategy: a dense-ish random Ising problem over `N` spins.
fn ising_problem() -> impl Strategy<Value = IsingProblem> {
    let coeffs = proptest::collection::vec(-5.0f64..5.0, N + N * (N - 1) / 2);
    coeffs.prop_map(|c| {
        let mut p = IsingProblem::new(N);
        let mut it = c.into_iter();
        for i in 0..N {
            p.set_linear(i, it.next().unwrap());
        }
        for i in 0..N {
            for j in (i + 1)..N {
                p.set_coupling(i, j, it.next().unwrap());
            }
        }
        p
    })
}

/// Strategy: a random QUBO over `N` bits.
fn qubo_problem() -> impl Strategy<Value = QuboProblem> {
    let coeffs = proptest::collection::vec(-5.0f64..5.0, N + N * (N - 1) / 2);
    coeffs.prop_map(|c| {
        let mut p = QuboProblem::new(N);
        let mut it = c.into_iter();
        for i in 0..N {
            p.set_diagonal(i, it.next().unwrap());
        }
        for i in 0..N {
            for j in (i + 1)..N {
                p.set_off_diagonal(i, j, it.next().unwrap());
            }
        }
        p
    })
}

fn all_bits(n: usize) -> impl Iterator<Item = Vec<u8>> {
    (0..(1u32 << n)).map(move |k| (0..n).map(|i| ((k >> i) & 1) as u8).collect())
}

/// Strategy: a Chimera-structured sparse problem — `cells` K4,4 unit
/// cells (degree ≤ 6: 4 in-cell neighbors plus up to 2 inter-cell
/// couplers), the physical-problem regime of the annealer's kernel.
fn chimera_sparse(cells: usize) -> impl Strategy<Value = IsingProblem> {
    let in_cell = cells * 16;
    let inter = if cells > 1 { (cells - 1) * 4 } else { 0 };
    let coeffs = proptest::collection::vec(-2.0f64..2.0, cells * 8 + in_cell + inter);
    coeffs.prop_map(move |c| {
        let mut p = IsingProblem::new(cells * 8);
        let mut it = c.into_iter();
        for q in 0..cells * 8 {
            p.set_linear(q, it.next().unwrap());
        }
        for cell in 0..cells {
            let base = cell * 8;
            // K4,4 within the cell: left half to right half.
            for l in 0..4 {
                for r in 4..8 {
                    p.set_coupling(base + l, base + r, it.next().unwrap());
                }
            }
            // Horizontal couplers to the next cell (same-position right
            // spins), mirroring the chip's inter-cell wiring.
            if cell + 1 < cells {
                for pos in 4..8 {
                    p.set_coupling(base + pos, base + 8 + pos, it.next().unwrap());
                }
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 4 both ways: energies agree up to the returned offsets on
    /// every configuration.
    #[test]
    fn conversion_energy_identity(q in qubo_problem()) {
        let (ising, off) = qubo_to_ising(&q);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!((q.energy(&bits) - (ising.energy(&s) + off)).abs() < 1e-9);
        }
    }

    #[test]
    fn reverse_conversion_energy_identity(p in ising_problem()) {
        let (qubo, off) = ising_to_qubo(&p);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!((p.energy(&s) - (qubo.energy(&bits) + off)).abs() < 1e-9);
        }
    }

    /// Conversions preserve the argmin set.
    #[test]
    fn conversion_preserves_ground_state(q in qubo_problem()) {
        let (ising, _) = qubo_to_ising(&q);
        let gs = exact_ground_state(&ising);
        // The Ising ground state maps to a QUBO configuration attaining
        // the QUBO minimum.
        let qubo_min = all_bits(N)
            .map(|b| q.energy(&b))
            .fold(f64::INFINITY, f64::min);
        for spins in &gs.ground_states {
            let bits: Vec<u8> = spins.iter().map(|&s| ((s + 1) / 2) as u8).collect();
            prop_assert!((q.energy(&bits) - qubo_min).abs() < 1e-6);
        }
    }

    /// flip_delta equals the direct energy difference at random points.
    #[test]
    fn flip_delta_consistency(p in ising_problem(), k in 0u32..64, i in 0usize..N) {
        let bits: Vec<u8> = (0..N).map(|b| ((k >> b) & 1) as u8).collect();
        let mut spins = bits_to_spins(&bits);
        let before = p.energy(&spins);
        let delta = p.flip_delta(&spins, i);
        spins[i] = -spins[i];
        let after = p.energy(&spins);
        prop_assert!(((after - before) - delta).abs() < 1e-9);
    }

    /// The exact solver's minimum lower-bounds every enumerated energy,
    /// and the ranking is consistent with it.
    #[test]
    fn exact_is_a_lower_bound(p in ising_problem()) {
        let sol = exact_ground_state(&p);
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!(p.energy(&s) >= sol.energy - 1e-9);
        }
        let ranked = rank_all_solutions(&p, 1e-9);
        prop_assert!((ranked[0].energy - sol.energy).abs() < 1e-9);
        let total: usize = ranked.iter().map(|r| r.degeneracy).sum();
        prop_assert_eq!(total, 1 << N);
    }

    /// The compiled CSR view agrees with the adjacency-list
    /// implementation on dense problems: total energy on every
    /// configuration, ΔE for every single-spin flip, and the cached
    /// local-field initialization.
    #[test]
    fn compiled_matches_naive_on_dense(p in ising_problem()) {
        let c = CompiledProblem::new(&p);
        assert_eq!(c.num_spins(), p.num_spins());
        assert_eq!(c.num_couplings(), p.num_couplings());
        let mut fields = Vec::new();
        for bits in all_bits(N) {
            let s = bits_to_spins(&bits);
            prop_assert!((c.energy(&s) - p.energy(&s)).abs() < 1e-9);
            c.local_fields_into(&s, &mut fields);
            for i in 0..N {
                prop_assert!((c.flip_delta(&s, i) - p.flip_delta(&s, i)).abs() < 1e-9);
                prop_assert!(
                    (-2.0 * s[i] as f64 * fields[i] - p.flip_delta(&s, i)).abs() < 1e-9
                );
            }
        }
    }

    /// Same agreement on Chimera-sparse (degree ≤ 6) problems — the
    /// physical-problem regime the annealer actually sweeps.
    #[test]
    fn compiled_matches_naive_on_chimera_sparse(p in chimera_sparse(3), k in 0u64..1 << 24) {
        let c = CompiledProblem::new(&p);
        let n = p.num_spins();
        let s: Vec<i8> = (0..n).map(|i| if (k >> i) & 1 == 1 { 1 } else { -1 }).collect();
        prop_assert!((c.energy(&s) - p.energy(&s)).abs() < 1e-9);
        for i in 0..n {
            prop_assert!((c.flip_delta(&s, i) - p.flip_delta(&s, i)).abs() < 1e-9);
        }
    }

    /// Scaling by a positive constant preserves the ground-state set.
    #[test]
    fn scaling_preserves_argmin(p in ising_problem(), k in 0.1f64..10.0) {
        let scaled = p.scaled(k);
        let a = exact_ground_state(&p);
        let b = exact_ground_state(&scaled);
        prop_assert_eq!(a.ground_states, b.ground_states);
        prop_assert!((b.energy - k * a.energy).abs() < 1e-6 * (1.0 + b.energy.abs()));
    }
}
