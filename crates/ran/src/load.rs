//! Seeded, deterministic synthetic traffic for the C-RAN serving
//! layer — per-cell Poisson arrivals modulated by a diurnal curve and
//! a two-state Markov burst process, over a heterogeneous user mix.
//!
//! The generator answers the scaling question the paper's §7 poses:
//! what does a centralized annealer pool face when it serves not two
//! benchmark APs but a metro's worth of cells? Each cell emits
//! per-user detection jobs as a *nonhomogeneous* Poisson process with
//! instantaneous rate
//!
//! ```text
//! λ_c(t) = base_rate · diurnal(t; phase_c) · burst_c(t)
//! ```
//!
//! where `diurnal` is a sinusoid (busy-hour peaks, night troughs)
//! phase-shifted per cell (cells do not peak together), and `burst_c`
//! is a Markov-modulated multiplier (an On/Off process with
//! exponential holding times — flash crowds, stadium events).
//! Arrivals are drawn by thinning against the rate ceiling, so the
//! draw count per cell is itself deterministic. Every random draw is a
//! counted SplitMix64 stream keyed by `(seed, cell)`: the same
//! [`LoadGen`] produces the same `Vec<UserJob>` bit for bit on every
//! run and platform (a tested contract), and cells are generated
//! independently — a two-cell trace embeds the one-cell trace.
//!
//! Heterogeneity comes from [`MixClass`]es: each arrival draws a
//! weighted class (user count × modulation × priority × deadline), so
//! the pool sees 8-user BPSK Wi-Fi jobs interleaved with 32-user QPSK
//! LTE jobs. A class re-keys the channel hash, so jobs of different
//! problem shapes never coalesce into one batch.
//!
//! Channel hashes follow [`synthetic_channel_hash`]'s coherence
//! blocks: all of a cell's jobs within one coherence interval share a
//! hash — exactly the coalescing opportunity the
//! [`sched::BatchScheduler`] exploits.
//!
//! **Scale.** A metro C-RAN is ~10³ cells × ~10³–10⁴ subscribers;
//! [`LoadGen::metro`] documents that scaling. The generator is O(jobs)
//! with O(1) state per cell, so million-user horizons are a matter of
//! patience, not memory; benches use minutes-of-load at tens of cells.
//!
//! [`sched::BatchScheduler`]: crate::sched::BatchScheduler

use crate::broker::UserJob;
use crate::qpu::JobDirection;
use crate::serve::Priority;
use crate::sim::synthetic_channel_hash;
use crate::topology::Deadline;
use quamax_wireless::Modulation;

/// One weighted traffic class of the heterogeneous user mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixClass {
    /// Relative weight (need not be normalized).
    pub weight: f64,
    /// Concurrent users in the problem (Nt).
    pub users: usize,
    /// Modulation (sets bits/symbol, hence Ising variables).
    pub modulation: Modulation,
    /// Uplink detection or downlink precoding. The direction rides the
    /// class — no extra random draw — so adding downlink classes never
    /// perturbs the uplink stream positions.
    pub direction: JobDirection,
    /// Admission-control class.
    pub priority: Priority,
    /// Radio deadline the job decodes against.
    pub deadline: Deadline,
}

impl MixClass {
    /// Logical Ising variables per problem: `users × bits/symbol` for
    /// uplink detection, `4 × users` for downlink VPP (the `t = 1`
    /// two's-complement encoding over `2·users` real dimensions).
    pub fn logical_vars(&self) -> usize {
        match self.direction {
            JobDirection::Uplink => self.users * self.modulation.bits_per_symbol(),
            JobDirection::Downlink => 4 * self.users,
        }
    }
}

/// The diurnal rate envelope: `1 + depth · sin(2π t / period + φ_c)`,
/// clamped at zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiurnalCurve {
    /// Cycle length, µs (a day, scaled to whatever horizon a run
    /// actually simulates).
    pub period_us: f64,
    /// Peak-to-mean amplitude in `[0, 1]`.
    pub depth: f64,
}

impl DiurnalCurve {
    /// A flat curve (no diurnal modulation).
    pub fn flat() -> Self {
        DiurnalCurve {
            period_us: 1.0,
            depth: 0.0,
        }
    }

    /// The multiplier at `t_us` for a cell phase-shifted by `phase`
    /// radians.
    pub fn multiplier(&self, t_us: f64, phase: f64) -> f64 {
        (1.0 + self.depth * (std::f64::consts::TAU * t_us / self.period_us + phase).sin()).max(0.0)
    }

    /// The envelope's ceiling (thinning bound).
    pub fn max_multiplier(&self) -> f64 {
        1.0 + self.depth
    }
}

/// The Markov-modulated burst process: Off (multiplier 1) / On
/// (multiplier `on_multiplier`) with exponential holding times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Rate multiplier while bursting (≥ 1).
    pub on_multiplier: f64,
    /// Mean quiet-state holding time, µs.
    pub mean_off_us: f64,
    /// Mean burst holding time, µs.
    pub mean_on_us: f64,
}

impl BurstModel {
    /// No bursts.
    pub fn none() -> Self {
        BurstModel {
            on_multiplier: 1.0,
            mean_off_us: 1.0,
            mean_on_us: 1.0,
        }
    }
}

/// One cell's traffic profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellProfile {
    /// Cell / access-point id (the serving layer's session key).
    pub cell: usize,
    /// Baseline job arrival rate, jobs/µs, before modulation.
    pub base_rate_per_us: f64,
    /// Channel coherence time, µs — jobs within one coherence block
    /// share a channel hash (the batching opportunity).
    pub coherence_us: f64,
}

/// The seeded synthetic load generator.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadGen {
    /// Master seed: every cell stream derives from it.
    pub seed: u64,
    /// Cells.
    pub cells: Vec<CellProfile>,
    /// Shared diurnal envelope (phase-shifted per cell).
    pub diurnal: DiurnalCurve,
    /// Shared burst model (independent state per cell).
    pub burst: BurstModel,
    /// The heterogeneous user mix (weights need not sum to 1).
    pub classes: Vec<MixClass>,
}

/// SplitMix64 of `(seed, k)` — the generator's counted stream.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counted uniform stream over one cell: draw `k` of cell `c` never
/// collides with any other `(cell, draw)` pair.
struct CellStream {
    seed: u64,
    counter: u64,
}

impl CellStream {
    fn new(master_seed: u64, cell: usize) -> Self {
        CellStream {
            seed: splitmix(
                master_seed,
                0xCE11 ^ (cell as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            ),
            counter: 0,
        }
    }

    /// Uniform in `[0, 1)` (53-bit mantissa, the repo-wide idiom).
    fn unit(&mut self) -> f64 {
        let z = splitmix(self.seed, self.counter);
        self.counter += 1;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with mean `mean`.
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln()
    }
}

impl LoadGen {
    /// A metro-scale template: `num_cells` identical cells at
    /// `base_rate_per_us`, a one-minute diurnal cycle (compressed from
    /// a day so short horizons still sweep the envelope), 3× bursts,
    /// and a two-class BPSK/QPSK mix. At the paper's scale this shape
    /// extends to ~1 000 cells × ~1 000 active subscribers: ~10⁶ users
    /// feeding one annealer pool.
    pub fn metro(seed: u64, num_cells: usize, base_rate_per_us: f64) -> Self {
        assert!(num_cells > 0, "need at least one cell");
        LoadGen {
            seed,
            cells: (0..num_cells)
                .map(|cell| CellProfile {
                    cell,
                    base_rate_per_us,
                    coherence_us: 10_000.0,
                })
                .collect(),
            diurnal: DiurnalCurve {
                period_us: 60_000_000.0 / 1_440.0, // a "day" per 41.7 s
                depth: 0.5,
            },
            burst: BurstModel {
                on_multiplier: 3.0,
                mean_off_us: 20_000.0,
                mean_on_us: 5_000.0,
            },
            classes: vec![
                MixClass {
                    weight: 0.7,
                    users: 16,
                    modulation: Modulation::Bpsk,
                    direction: JobDirection::Uplink,
                    priority: Priority::Normal,
                    deadline: Deadline::Lte,
                },
                MixClass {
                    weight: 0.3,
                    users: 8,
                    modulation: Modulation::Qpsk,
                    direction: JobDirection::Uplink,
                    priority: Priority::Low,
                    deadline: Deadline::Wcdma,
                },
            ],
        }
    }

    /// The full-duplex variant of [`LoadGen::metro`]: each cell emits
    /// both uplink detection jobs and downlink VPP precoding jobs,
    /// with `downlink_fraction` of the arrival mass re-weighted onto
    /// downlink twins of the metro classes. The direction rides the
    /// class draw (no extra randomness), and every downlink job's
    /// channel hash is direction-rekeyed ([`JobDirection::rekey`]), so
    /// the two directions of one cell never coalesce even inside the
    /// same coherence block. `downlink_fraction = 0` is bit-identical
    /// to `metro` (tested).
    ///
    /// # Panics
    /// Panics unless `downlink_fraction ∈ [0, 1]`.
    pub fn full_duplex(
        seed: u64,
        num_cells: usize,
        base_rate_per_us: f64,
        downlink_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&downlink_fraction),
            "downlink fraction must be in [0, 1]"
        );
        let mut gen = Self::metro(seed, num_cells, base_rate_per_us);
        let uplink = gen.classes.clone();
        for class in &mut gen.classes {
            class.weight *= 1.0 - downlink_fraction;
        }
        // Zero-weight classes are kept (weights enter the cumulative
        // class draw, so dropping them would shift every class index
        // and re-key unrelated streams).
        gen.classes.extend(uplink.into_iter().map(|c| MixClass {
            weight: c.weight * downlink_fraction,
            direction: JobDirection::Downlink,
            ..c
        }));
        gen
    }

    /// A flash-crowd preset: a flat baseline (no diurnal sweep)
    /// punctuated by rare, violent bursts — a stadium letting out, 8×
    /// the rate for ~8 ms at a time — over a single high-priority LTE
    /// class. The stress test for shedding and deadline-aware closing.
    pub fn flash_crowd(seed: u64, num_cells: usize, base_rate_per_us: f64) -> Self {
        assert!(num_cells > 0, "need at least one cell");
        LoadGen {
            seed,
            cells: (0..num_cells)
                .map(|cell| CellProfile {
                    cell,
                    base_rate_per_us,
                    coherence_us: 10_000.0,
                })
                .collect(),
            diurnal: DiurnalCurve::flat(),
            burst: BurstModel {
                on_multiplier: 8.0,
                mean_off_us: 40_000.0,
                mean_on_us: 8_000.0,
            },
            classes: vec![MixClass {
                weight: 1.0,
                users: 16,
                modulation: Modulation::Bpsk,
                direction: JobDirection::Uplink,
                priority: Priority::High,
                deadline: Deadline::Lte,
            }],
        }
    }

    /// Generates all arrivals in `[0, horizon_us]`, sorted by arrival
    /// time (ties broken by cell id) — bit-identical across runs for
    /// the same generator.
    pub fn generate(&self, horizon_us: f64) -> Vec<UserJob> {
        assert!(horizon_us > 0.0, "empty horizon");
        assert!(!self.classes.is_empty(), "need at least one mix class");
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0.0, "mix weights must sum positive");

        let mut jobs: Vec<UserJob> = Vec::new();
        for profile in &self.cells {
            self.generate_cell(profile, horizon_us, total_weight, &mut jobs);
        }
        jobs.sort_by(|a, b| {
            a.arrival_us
                .total_cmp(&b.arrival_us)
                .then(a.cell.cmp(&b.cell))
        });
        jobs
    }

    /// One cell's independent thinned-Poisson stream.
    fn generate_cell(
        &self,
        profile: &CellProfile,
        horizon_us: f64,
        total_weight: f64,
        out: &mut Vec<UserJob>,
    ) {
        let phase = profile.cell as f64 * 2.399_963_229_728_653; // golden angle
        let ceiling = profile.base_rate_per_us
            * self.diurnal.max_multiplier()
            * self.burst.on_multiplier.max(1.0);
        if ceiling <= 0.0 {
            return;
        }
        let mut stream = CellStream::new(self.seed, profile.cell);

        // Markov burst state, advanced lazily: `burst_until` is the
        // next state flip.
        let mut bursting = false;
        let mut burst_until = stream.exp(self.burst.mean_off_us);

        let mut t = 0.0_f64;
        loop {
            t += stream.exp(1.0 / ceiling);
            if t > horizon_us {
                break;
            }
            while burst_until < t {
                bursting = !bursting;
                burst_until += stream.exp(if bursting {
                    self.burst.mean_on_us
                } else {
                    self.burst.mean_off_us
                });
            }
            let burst_mult = if bursting {
                self.burst.on_multiplier
            } else {
                1.0
            };
            let rate = profile.base_rate_per_us * self.diurnal.multiplier(t, phase) * burst_mult;
            // Thinning: accept with probability λ(t)/ceiling. The draw
            // happens unconditionally so the stream position depends
            // only on the candidate count, never on acceptance.
            let accept = stream.unit() < rate / ceiling;
            let class_draw = stream.unit() * total_weight;
            if !accept {
                continue;
            }
            let mut acc = 0.0;
            let class = self
                .classes
                .iter()
                .enumerate()
                .find(|(_, c)| {
                    acc += c.weight;
                    class_draw < acc
                })
                .map(|(i, c)| (i, *c))
                .unwrap_or((self.classes.len() - 1, self.classes[self.classes.len() - 1]));
            let (class_idx, class) = class;
            // Re-key the hash per class and per direction: different
            // problem shapes — and different directions over the same
            // channel — are different compiled problems and must not
            // coalesce.
            let hash = class.direction.rekey(
                synthetic_channel_hash(profile.cell, t, profile.coherence_us)
                    ^ (class_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            out.push(UserJob {
                arrival_us: t,
                cell: profile.cell,
                direction: class.direction,
                channel_hash: hash,
                problems: 1,
                logical_vars: class.logical_vars(),
                users: class.users,
                deadline_us: class.deadline.budget_us(),
                priority: class.priority,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_bit_identical() {
        let gen = LoadGen::metro(42, 4, 0.002);
        let a = gen.generate(200_000.0);
        let b = gen.generate(200_000.0);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same trace — bit for bit");
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadGen::metro(1, 2, 0.002).generate(200_000.0);
        let b = LoadGen::metro(2, 2, 0.002).generate(200_000.0);
        assert_ne!(a, b);
    }

    #[test]
    fn cells_are_independent_streams() {
        // Adding a cell must not perturb existing cells' arrivals.
        let one = LoadGen::metro(7, 1, 0.002).generate(100_000.0);
        let two = LoadGen::metro(7, 2, 0.002).generate(100_000.0);
        let cell0: Vec<_> = two.iter().filter(|j| j.cell == 0).cloned().collect();
        assert_eq!(one, cell0);
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let jobs = LoadGen::metro(9, 3, 0.003).generate(150_000.0);
        assert!(jobs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(jobs
            .iter()
            .all(|j| j.arrival_us > 0.0 && j.arrival_us <= 150_000.0));
    }

    #[test]
    fn rate_scales_with_base_rate() {
        let slow = LoadGen::metro(11, 2, 0.001).generate(300_000.0).len();
        let fast = LoadGen::metro(11, 2, 0.004).generate(300_000.0).len();
        assert!(
            fast as f64 > 2.5 * slow as f64,
            "4× the base rate must produce roughly 4× the jobs: {slow} vs {fast}"
        );
    }

    #[test]
    fn mix_produces_heterogeneous_shapes() {
        let jobs = LoadGen::metro(13, 2, 0.004).generate(300_000.0);
        let shapes: std::collections::BTreeSet<(usize, u64)> = jobs
            .iter()
            .map(|j| (j.users, j.deadline_us.to_bits()))
            .collect();
        assert!(shapes.len() >= 2, "both mix classes must appear");
    }

    #[test]
    fn coherence_blocks_share_hashes() {
        // Within one coherence block of one cell, one class ⇒ one hash.
        let gen = LoadGen {
            seed: 5,
            cells: vec![CellProfile {
                cell: 0,
                base_rate_per_us: 0.01,
                coherence_us: 10_000.0,
            }],
            diurnal: DiurnalCurve::flat(),
            burst: BurstModel::none(),
            classes: vec![MixClass {
                weight: 1.0,
                users: 16,
                modulation: Modulation::Bpsk,
                direction: JobDirection::Uplink,
                priority: Priority::Normal,
                deadline: Deadline::Lte,
            }],
        };
        let jobs = gen.generate(9_999.0);
        assert!(jobs.len() > 10);
        let first = jobs[0].channel_hash;
        assert!(jobs.iter().all(|j| j.channel_hash == first));
    }

    #[test]
    fn full_duplex_is_bit_identical_per_seed() {
        let gen = LoadGen::full_duplex(21, 3, 0.003, 0.4);
        let a = gen.generate(200_000.0);
        let b = gen.generate(200_000.0);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same full-duplex trace");
    }

    #[test]
    fn full_duplex_zero_fraction_matches_metro() {
        // The downlink classes are present but weightless, and weights
        // enter only the cumulative threshold — so the trace is the
        // metro trace, job for job.
        let metro = LoadGen::metro(33, 3, 0.003).generate(200_000.0);
        let duplex = LoadGen::full_duplex(33, 3, 0.003, 0.0).generate(200_000.0);
        assert_eq!(metro, duplex);
    }

    #[test]
    fn full_duplex_emits_both_directions_with_distinct_hashes() {
        let jobs = LoadGen::full_duplex(5, 2, 0.004, 0.5).generate(300_000.0);
        let up: Vec<_> = jobs
            .iter()
            .filter(|j| j.direction == JobDirection::Uplink)
            .collect();
        let down: Vec<_> = jobs
            .iter()
            .filter(|j| j.direction == JobDirection::Downlink)
            .collect();
        assert!(!up.is_empty() && !down.is_empty(), "both directions flow");
        // A 50/50 split lands near half-and-half.
        let f = down.len() as f64 / jobs.len() as f64;
        assert!((0.35..=0.65).contains(&f), "downlink fraction {f}");
        // No downlink hash ever equals an uplink hash — the session
        // cache cannot alias directions.
        let up_hashes: std::collections::BTreeSet<u64> =
            up.iter().map(|j| j.channel_hash).collect();
        assert!(down.iter().all(|j| !up_hashes.contains(&j.channel_hash)));
        // Downlink problems carry the VPP shape.
        assert!(down.iter().all(|j| j.logical_vars == 4 * j.users));
    }

    #[test]
    fn flash_crowd_is_bit_identical_and_bursty() {
        let gen = LoadGen::flash_crowd(17, 2, 0.002);
        let a = gen.generate(400_000.0);
        let b = gen.generate(400_000.0);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same flash-crowd trace");
        assert!(a.iter().all(|j| j.priority == Priority::High));
        // Burstiness: the busiest 10 ms window must far exceed the
        // mean window's load (flat diurnal, so only bursts do this).
        let window = 10_000.0;
        let windows = (400_000.0 / window) as usize;
        let mut counts = vec![0usize; windows];
        for j in &a {
            counts[((j.arrival_us / window) as usize).min(windows - 1)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = a.len() as f64 / windows as f64;
        assert!(
            max > 2.0 * mean,
            "flash crowds must spike: max {max} vs mean {mean}"
        );
    }
}
