//! The async job broker: per-cell admission queues with a tracked job
//! lifecycle.
//!
//! The broker is the front door of the scheduling subsystem. Access
//! points (or the synthetic [`load`] generator) submit per-user
//! detection jobs — arrival time, cell, channel-estimate hash,
//! priority, frame deadline — and the broker queues them per cell and
//! tracks every job through the lifecycle
//!
//! ```text
//! Submitted → Queued → Batched → Running → {Completed, Shed, Failed}
//! ```
//!
//! The broker holds no policy: *when* a queued job is pulled into a
//! batch, where that batch runs, and whether it is shed under
//! backpressure are the [`sched::BatchScheduler`]'s decisions. The
//! broker's contract is bookkeeping: every submitted job is in exactly
//! one state, transitions are legal, and the [`Census`] of states is
//! always consistent with the serving [`Ledger`]
//! (`in_flight() == ledger.batched` once the scheduler has admitted
//! everything it pulled).
//!
//! [`load`]: crate::load
//! [`sched::BatchScheduler`]: crate::sched::BatchScheduler
//! [`Ledger`]: crate::serve::Ledger

use crate::qpu::JobDirection;
use crate::serve::Priority;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A broker-issued job handle: dense, monotone, and stable for the
/// broker's lifetime (index into its status table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Accepted by the broker, sitting in its cell's queue.
    Queued,
    /// Pulled by the scheduler into an open (or dispatched) batch.
    Batched,
    /// Its batch is dispatched and being served.
    Running,
    /// Served to completion (any rung).
    Completed,
    /// Shed by admission control or a scheduler queue cut.
    Shed,
    /// Failed with a classified serving error.
    Failed,
}

impl JobState {
    /// Whether the lifecycle permits moving `self → to`.
    ///
    /// Queued jobs may be shed or failed directly (admission control
    /// rejects them before any batch exists); batched jobs may be shed
    /// (a queue the scheduler cuts under backpressure) or failed (their
    /// dispatch exhausted its guardrails); running jobs only finish.
    pub fn may_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Batched)
                | (Queued, Shed)
                | (Queued, Failed)
                | (Batched, Running)
                | (Batched, Shed)
                | (Batched, Failed)
                | (Running, Completed)
                | (Running, Failed)
        )
    }

    /// Whether this is a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Shed | JobState::Failed
        )
    }
}

/// One per-user detection job as the broker sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UserJob {
    /// Arrival time at the data center, µs.
    pub arrival_us: f64,
    /// Originating cell / access point id.
    pub cell: usize,
    /// Uplink detection or downlink precoding — the two compile
    /// different programmed problems from the same channel, so the
    /// direction is part of every coalescing decision.
    pub direction: JobDirection,
    /// Channel-estimate hash **with the direction folded in**
    /// ([`crate::channel_hash_directed`]): jobs sharing
    /// `(cell, channel_hash)` were compiled against the same channel
    /// *in the same direction* and share one QPU problem — the
    /// coalescing key.
    pub channel_hash: u64,
    /// Subcarrier problems this job contributes to a batch.
    pub problems: usize,
    /// Logical Ising variables per problem (Nt × bits/symbol).
    pub logical_vars: usize,
    /// Concurrent users in the cell (sizes classical service).
    pub users: usize,
    /// Decode budget relative to `arrival_us`, µs.
    pub deadline_us: f64,
    /// Admission-control class.
    pub priority: Priority,
}

impl UserJob {
    /// Absolute deadline, µs.
    pub fn absolute_deadline_us(&self) -> f64 {
        self.arrival_us + self.deadline_us
    }
}

/// Counts of jobs per lifecycle state — the broker's status snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Census {
    /// Ever submitted.
    pub submitted: u64,
    /// Currently queued.
    pub queued: u64,
    /// Currently batched (admitted, undispatched).
    pub batched: u64,
    /// Currently running.
    pub running: u64,
    /// Completed.
    pub completed: u64,
    /// Shed.
    pub shed: u64,
    /// Failed.
    pub failed: u64,
}

impl Census {
    /// Jobs not yet in a terminal state.
    pub fn in_flight(&self) -> u64 {
        self.queued + self.batched + self.running
    }

    /// The conservation identity: every submitted job is in exactly
    /// one state.
    pub fn conserved(&self) -> bool {
        self.submitted == self.in_flight() + self.completed + self.shed + self.failed
    }
}

/// The broker: per-cell FIFO queues plus the full status table.
#[derive(Clone, Debug, Default)]
pub struct Broker {
    /// Status table indexed by [`JobId`].
    states: Vec<JobState>,
    /// Job payloads indexed by [`JobId`] (status queries, re-pulls).
    jobs: Vec<UserJob>,
    /// Per-cell FIFO queues. `BTreeMap` so cross-cell iteration is
    /// deterministic (cell order).
    queues: BTreeMap<usize, VecDeque<JobId>>,
    census: Census,
}

impl Broker {
    /// An empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Submits a job: it enters its cell's queue in `Queued` state and
    /// gets a dense, monotone [`JobId`].
    pub fn submit(&mut self, job: UserJob) -> JobId {
        let id = JobId(self.states.len() as u64);
        self.states.push(JobState::Queued);
        self.jobs.push(job);
        self.queues.entry(job.cell).or_default().push_back(id);
        self.census.submitted += 1;
        self.census.queued += 1;
        id
    }

    /// The job payload behind `id`.
    pub fn job(&self, id: JobId) -> &UserJob {
        &self.jobs[id.index()]
    }

    /// The current lifecycle state of `id`.
    pub fn state(&self, id: JobId) -> JobState {
        self.states[id.index()]
    }

    /// Queued jobs waiting in `cell`'s queue.
    pub fn queue_len(&self, cell: usize) -> usize {
        self.queues.get(&cell).map_or(0, VecDeque::len)
    }

    /// Cells with a non-empty queue, in cell order.
    pub fn busy_cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&c, _)| c)
    }

    /// Pops the oldest queued job of `cell` (FIFO), or `None` when its
    /// queue is empty. The job stays `Queued` — the caller decides its
    /// next transition.
    pub fn pop_queued(&mut self, cell: usize) -> Option<JobId> {
        self.queues.get_mut(&cell)?.pop_front()
    }

    /// Moves `id` to `to`, keeping the census in step.
    ///
    /// # Panics
    /// Panics on an illegal lifecycle transition — a scheduler bug,
    /// not an operating condition.
    pub fn transition(&mut self, id: JobId, to: JobState) {
        let from = self.states[id.index()];
        assert!(
            from.may_transition(to),
            "illegal job lifecycle transition {from:?} → {to:?} for {id:?}"
        );
        fn gauge(census: &mut Census, state: JobState) -> &mut u64 {
            match state {
                JobState::Queued => &mut census.queued,
                JobState::Batched => &mut census.batched,
                JobState::Running => &mut census.running,
                JobState::Completed => &mut census.completed,
                JobState::Shed => &mut census.shed,
                JobState::Failed => &mut census.failed,
            }
        }
        *gauge(&mut self.census, from) -= 1;
        *gauge(&mut self.census, to) += 1;
        self.states[id.index()] = to;
    }

    /// The current per-state census.
    pub fn census(&self) -> Census {
        self.census
    }

    /// Publishes the census through `telemetry`:
    /// `quamax_broker_census_total{state=…}` absolute counters plus an
    /// in-flight gauge. Snapshot-time publication — [`Broker::census`]
    /// stays the plain accessor; this is a view over it, never a
    /// replacement, and a disabled handle makes it a no-op.
    pub fn publish_telemetry(&self, telemetry: &quamax_telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        let c = self.census;
        for (state, value) in [
            ("submitted", c.submitted),
            ("queued", c.queued),
            ("batched", c.batched),
            ("running", c.running),
            ("completed", c.completed),
            ("shed", c.shed),
            ("failed", c.failed),
        ] {
            telemetry.counter_store("quamax_broker_census_total", &[("state", state)], value);
        }
        telemetry.gauge_set("quamax_broker_in_flight", &[], c.in_flight() as f64);
    }

    /// Whether every job has reached a terminal state (queues empty,
    /// nothing batched or running) — what a drained pipeline looks
    /// like.
    pub fn drained(&self) -> bool {
        self.census.in_flight() == 0 && self.queues.values().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cell: usize, arrival_us: f64) -> UserJob {
        UserJob {
            arrival_us,
            cell,
            direction: JobDirection::Uplink,
            channel_hash: 0xC0FFEE,
            problems: 1,
            logical_vars: 16,
            users: 16,
            deadline_us: 3_000.0,
            priority: Priority::Normal,
        }
    }

    #[test]
    fn lifecycle_happy_path_conserves() {
        let mut b = Broker::new();
        let id = b.submit(job(3, 10.0));
        assert_eq!(b.state(id), JobState::Queued);
        assert_eq!(b.queue_len(3), 1);
        assert_eq!(b.pop_queued(3), Some(id));
        for to in [JobState::Batched, JobState::Running, JobState::Completed] {
            b.transition(id, to);
            assert!(b.census().conserved());
        }
        assert!(b.drained());
        assert_eq!(b.census().completed, 1);
    }

    #[test]
    fn per_cell_queues_are_fifo_and_cells_ordered() {
        let mut b = Broker::new();
        let a = b.submit(job(7, 1.0));
        let c = b.submit(job(2, 2.0));
        let d = b.submit(job(7, 3.0));
        assert_eq!(b.busy_cells().collect::<Vec<_>>(), vec![2, 7]);
        assert_eq!(b.pop_queued(7), Some(a));
        assert_eq!(b.pop_queued(7), Some(d));
        assert_eq!(b.pop_queued(7), None);
        assert_eq!(b.pop_queued(2), Some(c));
        assert!(!b.drained(), "popped jobs are still Queued");
    }

    #[test]
    #[should_panic(expected = "illegal job lifecycle transition")]
    fn cannot_complete_a_queued_job() {
        let mut b = Broker::new();
        let id = b.submit(job(0, 0.0));
        b.transition(id, JobState::Completed);
    }

    #[test]
    fn queued_jobs_can_be_shed_directly() {
        let mut b = Broker::new();
        let id = b.submit(job(0, 0.0));
        b.pop_queued(0);
        b.transition(id, JobState::Shed);
        assert!(b.census().conserved());
        assert!(b.drained());
        assert_eq!(b.census().shed, 1);
    }
}
