//! Deadline-aware retry: exponential backoff with deterministic
//! seeded jitter, funded by the frame's remaining deadline slack.
//!
//! The funding rule reuses the PR-5 `IddBudget` pattern — a frame only
//! buys what its deadline slack can pay for — applied to retries
//! instead of IDD iterations: a retry is scheduled only when `backoff +
//! retry cost` still fits under the deadline. A QuAMax retry is *warm*:
//! the failed attempt's best candidate seeds a `decode_reverse_from`
//! reverse anneal, so the retry's anneal bill is a configured fraction
//! of a cold job's ([`RetryPolicy::warm_fraction`]).

/// How (and whether) failed attempts are retried.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per job, including the first (1 =
    /// retries disabled).
    pub max_attempts: u32,
    /// First retry's backoff, µs.
    pub base_backoff_us: f64,
    /// Backoff growth per additional retry (exponential).
    pub multiplier: f64,
    /// Jitter half-width as a fraction of the deterministic backoff
    /// (`0.2` = ±20%), drawn from a seeded hash — two runs with the
    /// same seeds jitter identically.
    pub jitter_fraction: f64,
    /// Anneal-cost fraction of a warm (`decode_reverse_from`) retry
    /// relative to a cold job, in `(0, 1]`. Warm restarts re-anneal
    /// from the failed attempt's best candidate at the reversal point
    /// instead of from scratch, so they need fewer (shorter) anneals.
    pub warm_fraction: f64,
}

impl RetryPolicy {
    /// Retries disabled: one attempt, then escalate or fail.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_us: 0.0,
            multiplier: 2.0,
            jitter_fraction: 0.0,
            warm_fraction: 1.0,
        }
    }

    /// The guarded default: up to 3 attempts, 20 µs base backoff
    /// doubling per retry, ±20% jitter, warm retries at half a cold
    /// job's anneal bill.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 20.0,
            multiplier: 2.0,
            jitter_fraction: 0.2,
            warm_fraction: 0.5,
        }
    }

    /// `true` when this policy never retries.
    pub fn is_disabled(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Backoff before retry number `retry` (1 = first retry), µs:
    /// `base · multiplier^(retry−1)`, jittered by a deterministic
    /// `seed`-keyed factor in `[1 − jitter, 1 + jitter]`.
    ///
    /// # Panics
    /// Panics when `retry` is zero (the first attempt has no backoff).
    pub fn backoff_us(&self, retry: u32, seed: u64) -> f64 {
        assert!(retry >= 1, "backoff precedes a retry, not the first try");
        let deterministic = self.base_backoff_us * self.multiplier.powi(retry as i32 - 1);
        if self.jitter_fraction == 0.0 || deterministic == 0.0 {
            return deterministic;
        }
        let unit = (splitmix(seed, retry as u64) >> 11) as f64 / (1u64 << 53) as f64;
        deterministic * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))
    }

    /// Whether (and when) a retry is funded: given that the failure
    /// was observed `elapsed_us` after the frame's arrival, a deadline
    /// of `deadline_us`, and a retry costing `retry_cost_us` of
    /// service, returns the backoff to wait — or `None` when the
    /// attempt cap is hit or the deadline slack cannot pay for
    /// `backoff + retry_cost` (a retry that cannot land in time only
    /// burns the pool). `next_attempt` is the attempt number the retry
    /// would be (2 = first retry).
    pub fn fund_retry(
        &self,
        next_attempt: u32,
        elapsed_us: f64,
        deadline_us: f64,
        retry_cost_us: f64,
        seed: u64,
    ) -> Option<f64> {
        if next_attempt > self.max_attempts {
            return None;
        }
        let backoff = self.backoff_us(next_attempt - 1, seed);
        let slack = deadline_us - elapsed_us;
        if backoff + retry_cost_us > slack {
            return None;
        }
        Some(backoff)
    }
}

/// SplitMix64 of `(seed, k)` — the jitter stream.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            jitter_fraction: 0.0,
            ..RetryPolicy::standard()
        };
        assert!((p.backoff_us(1, 0) - 20.0).abs() < 1e-12);
        assert!((p.backoff_us(2, 0) - 40.0).abs() < 1e-12);
        assert!((p.backoff_us(3, 0) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::standard();
        for seed in 0..200 {
            let b = p.backoff_us(1, seed);
            assert!((16.0..=24.0).contains(&b), "±20% of 20: {b}");
            assert_eq!(b.to_bits(), p.backoff_us(1, seed).to_bits());
        }
        // Jitter actually varies across seeds.
        let spread: std::collections::HashSet<u64> =
            (0..50).map(|s| p.backoff_us(1, s).to_bits()).collect();
        assert!(spread.len() > 40);
    }

    #[test]
    fn funding_respects_cap_and_slack() {
        let p = RetryPolicy {
            jitter_fraction: 0.0,
            ..RetryPolicy::standard()
        };
        // Plenty of slack: funded with the deterministic backoff.
        assert_eq!(p.fund_retry(2, 100.0, 3_000.0, 500.0, 0), Some(20.0));
        // Attempt cap: max_attempts = 3 allows attempts 2 and 3 only.
        assert_eq!(p.fund_retry(4, 0.0, 1e9, 0.0, 0), None);
        // Slack cannot pay for backoff + cost: not funded.
        assert_eq!(p.fund_retry(2, 2_900.0, 3_000.0, 90.0, 0), None);
        // Exactly affordable: funded.
        assert_eq!(p.fund_retry(2, 2_880.0, 3_000.0, 100.0, 0), Some(20.0));
        // A frame past its deadline funds nothing.
        assert_eq!(p.fund_retry(2, 5_000.0, 3_000.0, 0.0, 0), None);
    }

    #[test]
    fn disabled_policy_funds_nothing() {
        let p = RetryPolicy::disabled();
        assert!(p.is_disabled());
        assert_eq!(p.fund_retry(2, 0.0, 1e9, 0.0, 7), None);
    }
}
