//! The data-center CPU pool running classical detectors.
//!
//! Models a BigStation-style software pipeline: a pool of identical
//! cores, each decoding one subcarrier at a time, with service times
//! from the paper-era cost models in `baselines::timing`. Perfectly
//! parallel across subcarriers (BigStation's design point), so a
//! frame's service time is the per-subcarrier time × ⌈problems/cores⌉.

use quamax_baselines::timing::{sphere_time_us, zf_time_us};

/// Which detector the pool runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CpuPolicy {
    /// Zero-forcing with the filter amortized over
    /// `vectors_per_channel` uses.
    ZeroForcing {
        /// Received vectors sharing one filter computation.
        vectors_per_channel: usize,
    },
    /// Sphere decoding with an expected visited-node count (workload-
    /// dependent; Table 1 supplies representative values).
    Sphere {
        /// Mean visited nodes per subcarrier problem.
        expected_nodes: u64,
    },
}

/// A pool of identical cores serving decode jobs FIFO.
#[derive(Clone, Debug)]
pub struct CpuPool {
    cores: usize,
    policy: CpuPolicy,
    busy_until_us: f64,
}

impl CpuPool {
    /// A pool of `cores` cores under the given policy.
    pub fn new(cores: usize, policy: CpuPolicy) -> Self {
        assert!(cores > 0, "need at least one core");
        CpuPool {
            cores,
            policy,
            busy_until_us: 0.0,
        }
    }

    /// Per-subcarrier decode time, µs.
    pub fn per_problem_us(&self, users: usize) -> f64 {
        match self.policy {
            CpuPolicy::ZeroForcing {
                vectors_per_channel,
            } => zf_time_us(users, users, vectors_per_channel),
            CpuPolicy::Sphere { expected_nodes } => sphere_time_us(expected_nodes),
        }
    }

    /// Service time for one frame of `problems` subcarriers.
    pub fn service_time_us(&self, problems: usize, users: usize) -> f64 {
        let waves = problems.div_ceil(self.cores) as f64;
        waves * self.per_problem_us(users)
    }

    /// When the pool drains its current queue (0 when idle) — lets a
    /// scheduler project classical completion before committing.
    pub fn busy_until_us(&self) -> f64 {
        self.busy_until_us
    }

    /// Enqueues a frame arriving at `now_us`; returns completion time.
    pub fn enqueue(&mut self, now_us: f64, problems: usize, users: usize) -> f64 {
        let start = now_us.max(self.busy_until_us);
        let done = start + self.service_time_us(problems, users);
        self.busy_until_us = done;
        done
    }

    /// Resets the pool clock.
    pub fn reset(&mut self) {
        self.busy_until_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cores_cut_frame_time() {
        let policy = CpuPolicy::ZeroForcing {
            vectors_per_channel: 1,
        };
        let one = CpuPool::new(1, policy).service_time_us(50, 48);
        let ten = CpuPool::new(10, policy).service_time_us(50, 48);
        assert!((one / ten - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sphere_policy_uses_node_model() {
        let pool = CpuPool::new(
            1,
            CpuPolicy::Sphere {
                expected_nodes: 1_900,
            },
        );
        // Table 1's hard row: ≈ 190 µs per subcarrier.
        assert!((pool.per_problem_us(30) - 190.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut pool = CpuPool::new(
            4,
            CpuPolicy::ZeroForcing {
                vectors_per_channel: 1,
            },
        );
        let t1 = pool.enqueue(0.0, 8, 12);
        let t2 = pool.enqueue(0.0, 8, 12);
        assert!(t2 > t1);
        pool.reset();
        let t3 = pool.enqueue(0.0, 8, 12);
        assert!((t3 - t1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = CpuPool::new(0, CpuPolicy::Sphere { expected_nodes: 1 });
    }
}
