//! Per-worker circuit breaker: closed → open after K consecutive
//! failures → half-open probe after a cooldown.
//!
//! The breaker is what turns *per-job* fault handling into *per-worker*
//! degradation handling: a worker that fails K jobs in a row (crashed,
//! drifting, storming) stops receiving traffic instead of eating every
//! job's retry budget, and is probed with a single job once its
//! cooldown elapses — success closes the breaker, failure re-opens it
//! for another cooldown.

/// The breaker's state machine position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic flows; consecutive failures are counted.
    Closed,
    /// Tripped: no traffic until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe job is allowed through.
    HalfOpen,
}

/// A consecutive-failure circuit breaker over simulation time.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    /// Consecutive failures that trip the breaker.
    failure_threshold: u32,
    /// Time the breaker stays open before allowing a probe, µs.
    cooldown_us: f64,
    consecutive_failures: u32,
    state: BreakerState,
    /// When the breaker last opened (valid in `Open`/`HalfOpen`).
    opened_at_us: f64,
    /// Lifetime trip count (telemetry).
    trips: u64,
}

impl CircuitBreaker {
    /// A breaker tripping after `failure_threshold` consecutive
    /// failures, probing after `cooldown_us`.
    ///
    /// # Panics
    /// Panics unless the threshold and cooldown are positive.
    pub fn new(failure_threshold: u32, cooldown_us: f64) -> Self {
        assert!(failure_threshold > 0, "need a positive failure threshold");
        assert!(cooldown_us > 0.0, "need a positive cooldown");
        CircuitBreaker {
            failure_threshold,
            cooldown_us,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at_us: 0.0,
            trips: 0,
        }
    }

    /// Current state, advancing `Open → HalfOpen` if the cooldown has
    /// elapsed by `now_us`.
    pub fn state(&mut self, now_us: f64) -> BreakerState {
        if self.state == BreakerState::Open && now_us - self.opened_at_us >= self.cooldown_us {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// `true` when a job may be routed to this worker at `now_us`
    /// (closed, or half-open probe).
    pub fn allows(&mut self, now_us: f64) -> bool {
        self.state(now_us) != BreakerState::Open
    }

    /// Records a successful job: a half-open probe (or any success)
    /// closes the breaker and clears the failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed job at `now_us`: a half-open probe failure
    /// re-opens immediately; in closed state the K-th consecutive
    /// failure trips the breaker.
    pub fn on_failure(&mut self, now_us: f64) {
        match self.state(now_us) {
            BreakerState::HalfOpen => self.trip(now_us),
            BreakerState::Open => {}
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.trip(now_us);
                }
            }
        }
    }

    fn trip(&mut self, now_us: f64) {
        self.state = BreakerState::Open;
        self.opened_at_us = now_us;
        self.consecutive_failures = 0;
        self.trips += 1;
    }

    /// Times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Resets to closed with cleared counters (new simulation).
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at_us = 0.0;
        self.trips = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_k_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 1_000.0);
        b.on_failure(0.0);
        b.on_failure(1.0);
        assert!(b.allows(2.0), "two failures stay closed at K=3");
        b.on_failure(2.0);
        assert!(!b.allows(3.0), "third failure trips");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_clears_the_streak() {
        let mut b = CircuitBreaker::new(2, 1_000.0);
        b.on_failure(0.0);
        b.on_success();
        b.on_failure(1.0);
        assert!(b.allows(2.0), "streak was broken by the success");
    }

    #[test]
    fn half_open_probe_closes_on_success_reopens_on_failure() {
        let mut b = CircuitBreaker::new(1, 100.0);
        b.on_failure(0.0);
        assert_eq!(b.state(50.0), BreakerState::Open);
        assert_eq!(b.state(100.0), BreakerState::HalfOpen);
        assert!(b.allows(100.0), "the probe is allowed through");
        // Probe fails: re-open for a fresh cooldown from the failure.
        b.on_failure(100.0);
        assert_eq!(b.state(150.0), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Next probe succeeds: closed again.
        assert_eq!(b.state(200.0), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(200.0), BreakerState::Closed);
    }

    #[test]
    fn reset_restores_closed() {
        let mut b = CircuitBreaker::new(1, 1e6);
        b.on_failure(0.0);
        assert!(!b.allows(1.0));
        b.reset();
        assert!(b.allows(1.0));
        assert_eq!(b.trips(), 0);
    }
}
