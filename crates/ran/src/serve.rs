//! The fault-tolerant serving layer: a pool of QPU workers behind
//! deadline-aware retry, per-worker circuit breakers, an escalation
//! ladder, and recorded load shedding.
//!
//! [`ResilientServer`] is the guarded counterpart of dispatching
//! frames straight at one [`QpuServer`]: jobs are validated, admission-
//! controlled, routed to the least-loaded healthy worker, and — when a
//! [`FaultPlan`] injects a device fault — retried under the frame's
//! remaining deadline slack ([`RetryPolicy::fund_retry`]), escalated
//! down the ladder (QPU → hybrid → classical), or failed *with a
//! classified error*. Nothing is silently lost: the [`Ledger`]
//! conserves `submitted == completed + shed + failed`.
//!
//! With a quiet plan, one worker, and [`Guardrails::on`], the guarded
//! path is bit-identical to the unguarded [`QpuServer`] dispatch — the
//! resilience machinery prices exactly zero when nothing goes wrong
//! (tested in `tests/properties.rs`).

use crate::breaker::CircuitBreaker;
use crate::cpu::CpuPool;
use crate::fault::{FaultClass, FaultPlan, ServeError};
use crate::hybrid::HybridServer;
use crate::qpu::{JobDirection, QpuServer};
use crate::retry::RetryPolicy;
use quamax_telemetry::Telemetry;

/// A job's admission-control class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Never shed under the standard policy (control traffic, HARQ
    /// retransmissions already on their last chance).
    High,
    /// Ordinary uplink frames.
    Normal,
    /// Background / delay-tolerant traffic: shed first.
    Low,
}

impl Priority {
    /// A short lowercase label for reports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Per-priority backpressure limits: a job is shed when every healthy
/// worker's projected queue wait exceeds its priority's limit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedPolicy {
    /// Max projected wait for [`Priority::High`], µs (`None` = never).
    pub high_max_wait_us: Option<f64>,
    /// Max projected wait for [`Priority::Normal`], µs.
    pub normal_max_wait_us: Option<f64>,
    /// Max projected wait for [`Priority::Low`], µs.
    pub low_max_wait_us: Option<f64>,
}

impl ShedPolicy {
    /// Never sheds (the unguarded configuration — and also what keeps
    /// the guarded fair-weather path bit-identical to plain dispatch).
    pub fn disabled() -> Self {
        ShedPolicy {
            high_max_wait_us: None,
            normal_max_wait_us: None,
            low_max_wait_us: None,
        }
    }

    /// The guarded default: high never sheds, normal sheds past 20 ms
    /// of projected wait, low past 5 ms.
    pub fn standard() -> Self {
        ShedPolicy {
            high_max_wait_us: None,
            normal_max_wait_us: Some(20_000.0),
            low_max_wait_us: Some(5_000.0),
        }
    }

    /// The wait limit for `priority`, µs (`None` = never shed).
    pub fn limit_us(&self, priority: Priority) -> Option<f64> {
        match priority {
            Priority::High => self.high_max_wait_us,
            Priority::Normal => self.normal_max_wait_us,
            Priority::Low => self.low_max_wait_us,
        }
    }
}

/// The full guardrail configuration: what the resilience subsystem is
/// allowed to do about a failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Guardrails {
    /// Retry funding policy.
    pub retry: RetryPolicy,
    /// Consecutive failures that open a worker's breaker.
    pub breaker_threshold: u32,
    /// Breaker cooldown before a half-open probe, µs.
    pub breaker_cooldown_us: f64,
    /// Backpressure limits.
    pub shed: ShedPolicy,
    /// Whether exhausted jobs escalate down the ladder (hybrid, then
    /// classical) instead of failing.
    pub escalate: bool,
}

impl Guardrails {
    /// Everything on: standard retries, breakers tripping after 3
    /// consecutive failures with a 10 ms cooldown, standard shedding,
    /// escalation enabled.
    pub fn on() -> Self {
        Guardrails {
            retry: RetryPolicy::standard(),
            breaker_threshold: 3,
            breaker_cooldown_us: 10_000.0,
            shed: ShedPolicy::standard(),
            escalate: true,
        }
    }

    /// Everything off: one attempt, breakers that never trip, no
    /// shedding, no escalation — a fault kills its job. The control
    /// arm of the resilience bench.
    pub fn off() -> Self {
        Guardrails {
            retry: RetryPolicy::disabled(),
            breaker_threshold: u32::MAX,
            breaker_cooldown_us: 1.0,
            shed: ShedPolicy::disabled(),
            escalate: false,
        }
    }
}

/// One decode job as the serving layer sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Source key (access-point id): scopes programming sessions.
    pub source: usize,
    /// Uplink detection or downlink precoding. The serving layer's
    /// queueing treats both identically (anneals are anneals); the
    /// direction matters because it is folded into `channel_hash`
    /// upstream ([`crate::channel_hash_directed`]), so a detection
    /// session and a precoding session from the same `H` never share
    /// a cache entry or a batch.
    pub direction: JobDirection,
    /// Channel-estimate hash for the session cache, direction already
    /// folded in (`None` = use the frame-counted coherence model).
    pub channel_hash: Option<u64>,
    /// Subcarrier problems in this frame.
    pub problems: usize,
    /// Logical Ising variables per problem.
    pub logical_vars: usize,
    /// Concurrent users (sizes the classical rungs' service time).
    pub users: usize,
    /// Decode budget relative to submission time, µs — what funds
    /// retries ([`RetryPolicy::fund_retry`]).
    pub deadline_us: f64,
    /// Admission-control class.
    pub priority: Priority,
}

/// Which rung of the escalation ladder served a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeRung {
    /// A QPU worker (possibly after retries).
    Qpu,
    /// The classical-first hybrid server.
    Hybrid,
    /// The classical pool floor.
    Classical,
}

impl ServeRung {
    /// A short lowercase label for reports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ServeRung::Qpu => "qpu",
            ServeRung::Hybrid => "hybrid",
            ServeRung::Classical => "classical",
        }
    }
}

/// A successfully served job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Served {
    /// Completion time at the data center, µs.
    pub done_us: f64,
    /// QPU attempts consumed (1 = first try; escalated jobs report the
    /// attempts burned before escalating).
    pub attempts: u32,
    /// The rung that produced the answer.
    pub rung: ServeRung,
    /// The worker that served it (`None` for escalated jobs).
    pub worker: Option<usize>,
}

/// The conservation ledger: every submitted job is accounted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that produced an answer (any rung).
    pub completed: u64,
    /// Jobs shed by admission control (recorded, not lost).
    pub shed: u64,
    /// Jobs that failed with a classified error.
    pub failed: u64,
    /// In-flight gauge (not a terminal counter): jobs admitted into
    /// the brokered pipeline — sitting in a per-cell queue or an open
    /// batch — whose fate is not yet resolved. The direct
    /// [`ResilientServer::submit`] path resolves within the call, so
    /// it never moves this gauge.
    pub batched: u64,
}

impl Ledger {
    /// The invariant: no job is silently dropped. In-flight jobs are
    /// tolerated at snapshot time — `submitted == completed + shed +
    /// failed + in-flight` — and a drained pipeline has `batched == 0`,
    /// collapsing this to the classic terminal identity.
    pub fn conserved(&self) -> bool {
        self.submitted == self.completed + self.shed + self.failed + self.batched
    }

    /// Jobs admitted but not yet resolved (the `batched` gauge).
    pub fn in_flight(&self) -> u64 {
        self.batched
    }
}

/// One QPU worker plus its health state.
#[derive(Clone, Debug)]
struct QpuWorker {
    qpu: QpuServer,
    breaker: CircuitBreaker,
    /// Time until which this worker is down after a crash, µs.
    crashed_until_us: f64,
    /// Service time of work the batch scheduler has *assigned* to this
    /// worker but not yet dispatched (open batches filling toward
    /// their close time), µs. Counted into the projected queue wait so
    /// admission control and placement see the same load a dispatch
    /// is about to add — without it, every open batch looks free and
    /// shedding/placement systematically under-estimate.
    reserved_us: f64,
}

/// A pool of QPU workers behind the full guardrail stack.
pub struct ResilientServer {
    workers: Vec<QpuWorker>,
    /// The classical floor of the escalation ladder: always present,
    /// always assumed reliable (it is a plain multicore pool).
    classical: CpuPool,
    /// Optional middle rung: classical-first with quantum fallback.
    hybrid: Option<HybridServer>,
    plan: FaultPlan,
    guardrails: Guardrails,
    ledger: Ledger,
    /// Monotone job ids — the `job` axis of the fault plan's draws.
    job_seq: u64,
    /// Metrics handle (disabled by default). Recording never feeds
    /// back into routing, retry funding, or the fault schedule, so
    /// enabling it cannot perturb any completion time.
    telemetry: Telemetry,
}

impl ResilientServer {
    /// A server over `workers` identical QPUs with `classical` as the
    /// escalation floor, injecting faults from `plan` under
    /// `guardrails`.
    ///
    /// # Panics
    /// Panics when `workers` is empty.
    pub fn new(
        workers: Vec<QpuServer>,
        classical: CpuPool,
        plan: FaultPlan,
        guardrails: Guardrails,
    ) -> Self {
        assert!(!workers.is_empty(), "need at least one QPU worker");
        let breaker =
            CircuitBreaker::new(guardrails.breaker_threshold, guardrails.breaker_cooldown_us);
        ResilientServer {
            workers: workers
                .into_iter()
                .map(|qpu| QpuWorker {
                    qpu,
                    breaker: breaker.clone(),
                    crashed_until_us: 0.0,
                    reserved_us: 0.0,
                })
                .collect(),
            classical,
            hybrid: None,
            plan,
            guardrails,
            ledger: Ledger::default(),
            job_seq: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Inserts the hybrid middle rung of the escalation ladder.
    pub fn with_hybrid(mut self, hybrid: HybridServer) -> Self {
        self.hybrid = Some(hybrid);
        self
    }

    /// Attaches a metrics handle, propagating it to every worker QPU
    /// (their enqueues record the per-stage spans into the same
    /// registry).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// In-place [`ResilientServer::with_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for w in &mut self.workers {
            w.qpu.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// The attached metrics handle (disabled unless configured).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Publishes the snapshot-time views — conservation ledger,
    /// per-worker breaker trips and session-cache counters, per-class
    /// fault census — into the registry. The programmatic accessors
    /// ([`ResilientServer::ledger`], [`ResilientServer::breaker_trips`],
    /// [`ResilientServer::fault_plan`]) are unchanged; this is the
    /// collect-callback view of the same numbers.
    pub fn publish_telemetry(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        let ledger = self.ledger;
        for (state, v) in [
            ("submitted", ledger.submitted),
            ("completed", ledger.completed),
            ("shed", ledger.shed),
            ("failed", ledger.failed),
        ] {
            t.counter_store("quamax_serve_ledger_total", &[("state", state)], v);
        }
        t.gauge_set("quamax_serve_in_flight", &[], ledger.batched as f64);
        let counters = self.plan.counters();
        for class in FaultClass::ALL {
            t.counter_store(
                "quamax_serve_faults_total",
                &[("class", class.name())],
                counters.count(class),
            );
        }
        for (i, w) in self.workers.iter().enumerate() {
            let worker = i.to_string();
            let labels = [("worker", worker.as_str())];
            t.counter_store("quamax_breaker_trips_total", &labels, w.breaker.trips());
            if let Some(cache) = w.qpu.session_cache() {
                cache.publish_telemetry(t, &labels);
            }
        }
    }

    /// The conservation ledger so far.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// The fault plan (for its counters).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Lifetime breaker trips summed over workers.
    pub fn breaker_trips(&self) -> u64 {
        self.workers.iter().map(|w| w.breaker.trips()).sum()
    }

    /// Worker count.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The session-cache coherence time of worker 0, if its QPU has a
    /// cache attached — the simulation uses it to synthesize channel
    /// hashes exactly as it does for a plain [`QpuServer`].
    pub fn coherence_us(&self) -> Option<f64> {
        self.workers[0]
            .qpu
            .session_cache()
            .map(|c| c.coherence_us())
    }

    /// Resets every worker, the ladder rungs, the plan counters, and
    /// the ledger (new simulation; the fault *schedule* is unchanged).
    pub fn reset(&mut self) {
        for w in &mut self.workers {
            w.qpu.reset();
            w.breaker.reset();
            w.crashed_until_us = 0.0;
            w.reserved_us = 0.0;
        }
        self.classical.reset();
        if let Some(h) = self.hybrid.as_mut() {
            h.reset();
        }
        self.plan.reset();
        self.ledger = Ledger::default();
        self.job_seq = 0;
    }

    /// Workers currently allowed to take a job at `now_us` (repaired
    /// and breaker-permitted), with their projected queue waits —
    /// FIFO backlog *plus* reserved (batched-but-undispatched) work.
    fn eligible(&mut self, now_us: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for (i, w) in self.workers.iter_mut().enumerate() {
            if w.crashed_until_us <= now_us && w.breaker.allows(now_us) {
                out.push((i, (w.qpu.busy_until_us() - now_us).max(0.0) + w.reserved_us));
            }
        }
        out
    }

    /// Projected wait of one worker at `now_us`: its FIFO backlog plus
    /// the service time of open batches the scheduler has assigned to
    /// it. `None` when the worker is crashed or breaker-blocked.
    ///
    /// This is *the* load estimate: admission control
    /// ([`ResilientServer::shed_wait_us`]), least-loaded placement, and
    /// the batch scheduler's close-time projection all read it, so a
    /// job a worker is batching is never invisible to any of them.
    pub fn queue_depth_us(&mut self, worker: usize, now_us: f64) -> Option<f64> {
        let w = &mut self.workers[worker];
        if w.crashed_until_us <= now_us && w.breaker.allows(now_us) {
            Some((w.qpu.busy_until_us() - now_us).max(0.0) + w.reserved_us)
        } else {
            None
        }
    }

    /// The pool's projected wait at `now_us`: the minimum
    /// [`ResilientServer::queue_depth_us`] over eligible workers, or
    /// `None` when no worker can take a job right now.
    pub fn projected_wait_us(&mut self, now_us: f64) -> Option<f64> {
        let eligible = self.eligible(now_us);
        if eligible.is_empty() {
            return None;
        }
        Some(
            eligible
                .iter()
                .map(|&(_, w)| w)
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// The single shedding estimate shared by direct submission and
    /// broker admission: `Some(projected wait)` when a job of
    /// `priority` must be shed at `now_us` (every healthy worker's
    /// projected wait — batching reservations included — exceeds the
    /// priority's limit), `None` when it may proceed. A pool with no
    /// eligible worker does not shed: the job proceeds into the retry/
    /// escalation machinery, which knows what to do about an empty
    /// pool.
    pub fn shed_wait_us(&mut self, now_us: f64, priority: Priority) -> Option<f64> {
        let limit = self.guardrails.shed.limit_us(priority)?;
        let wait = self.projected_wait_us(now_us)?;
        (wait > limit).then_some(wait)
    }

    /// Reserves `delta_us` of projected service on `worker` for an
    /// open (not yet dispatched) batch. The reservation is visible to
    /// every load estimate until released.
    pub fn reserve_batch_us(&mut self, worker: usize, delta_us: f64) {
        assert!(delta_us >= 0.0, "reservations only grow the backlog");
        self.workers[worker].reserved_us += delta_us;
    }

    /// Releases `delta_us` of reservation on `worker` (the batch was
    /// dispatched — its load now lives in the worker's real FIFO — or
    /// abandoned). Saturates at zero.
    pub fn release_batch_us(&mut self, worker: usize, delta_us: f64) {
        assert!(delta_us >= 0.0, "releases cannot be negative");
        let w = &mut self.workers[worker];
        w.reserved_us = (w.reserved_us - delta_us).max(0.0);
    }

    /// The lowest-index worker whose session cache holds a fresh
    /// `(key, hash)` entry at `now_us` — the cache-aware placement
    /// preference: dispatching there skips preprocessing + programming
    /// entirely. Placement preference only; dispatch still checks
    /// breaker/crash eligibility.
    pub fn cached_worker(&self, now_us: f64, key: usize, hash: u64) -> Option<usize> {
        self.workers
            .iter()
            .position(|w| w.qpu.has_cached_session(now_us, key, hash))
    }

    /// Service time of one combined batch on a pool worker (the
    /// workers are identical): `program` charges preprocessing +
    /// programming (a cache miss on the target).
    pub fn batch_service_us(&self, problems: usize, logical_vars: usize, program: bool) -> f64 {
        self.workers[0]
            .qpu
            .amortized_service_time_us(problems, logical_vars, program)
    }

    /// Service time of one combined batch on the classical floor.
    pub fn classical_service_us(&self, problems: usize, users: usize) -> f64 {
        self.classical.service_time_us(problems, users)
    }

    /// When the classical floor's FIFO drains, µs — the cost-aware
    /// policy projects classical completion times from it.
    pub fn classical_busy_until_us(&self) -> f64 {
        self.classical.busy_until_us()
    }

    /// Picks the worker for an attempt at `now_us`: the least-loaded
    /// eligible worker (ties to the lowest index — deterministic).
    /// Warm retries prefer the previous worker (its chip still holds
    /// the programmed problem); cold retries prefer an *alternate*
    /// when one is eligible (the previous worker just failed).
    fn pick_worker(&mut self, now_us: f64, warm: bool, prev: Option<usize>) -> Option<usize> {
        let eligible = self.eligible(now_us);
        if eligible.is_empty() {
            return None;
        }
        if warm {
            if let Some(p) = prev {
                if eligible.iter().any(|&(i, _)| i == p) {
                    return Some(p);
                }
            }
        }
        let exclude_prev = match prev {
            Some(p) if !warm => eligible.iter().any(|&(i, _)| i != p),
            _ => false,
        };
        let mut best: Option<(usize, f64)> = None;
        for &(i, wait) in &eligible {
            if exclude_prev && Some(i) == prev {
                continue;
            }
            // Strict `<` keeps ties on the lowest index: deterministic.
            let better = match best {
                None => true,
                Some((_, bw)) => wait < bw,
            };
            if better {
                best = Some((i, wait));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Shape validation shared by direct submission and broker
    /// admission.
    fn validate(job: &Job) -> Result<(), ServeError> {
        if job.problems == 0 {
            return Err(ServeError::InvalidJob("zero problems in frame"));
        }
        if job.logical_vars == 0 {
            return Err(ServeError::InvalidJob("zero logical variables"));
        }
        Ok(())
    }

    /// Submits one job at `now_us`; returns where and when it was
    /// served, or a classified [`ServeError`]. Updates the ledger
    /// either way.
    pub fn submit(&mut self, now_us: f64, job: &Job) -> Result<Served, ServeError> {
        self.ledger.submitted += 1;
        self.telemetry.counter_inc(
            "quamax_serve_submitted_total",
            &[
                ("direction", job.direction.name()),
                ("priority", job.priority.name()),
            ],
        );
        if let Err(e) = Self::validate(job) {
            self.job_seq += 1;
            self.ledger.failed += 1;
            return Err(e);
        }

        // Backpressure: shed when every healthy worker's projected
        // wait exceeds this priority's limit. Shedding is a final,
        // recorded admission decision — never a silent drop.
        if let Some(wait) = self.shed_wait_us(now_us, job.priority) {
            self.job_seq += 1;
            self.ledger.shed += 1;
            self.telemetry.counter_inc(
                "quamax_serve_shed_total",
                &[("priority", job.priority.name())],
            );
            return Err(ServeError::Shed {
                projected_wait_us: wait,
            });
        }

        match self.serve_attempts(now_us, job, job.problems, None) {
            Ok(served) => {
                self.ledger.completed += 1;
                Ok(served)
            }
            Err(e) => {
                self.ledger.failed += 1;
                Err(e)
            }
        }
    }

    /// Admits one job into the brokered pipeline at `now_us` without
    /// serving it: validation and the shared shedding estimate run
    /// now (an invalid or shed job is a terminal, ledgered decision),
    /// an admitted job moves the ledger's `batched` in-flight gauge
    /// and *must* later be resolved by exactly one of
    /// [`ResilientServer::dispatch_batch`],
    /// [`ResilientServer::dispatch_batch_classical`], or
    /// [`ResilientServer::resolve_shed`].
    ///
    /// Admission and dispatch burn fault-plan job ids exactly like the
    /// direct path — one id per terminal admission decision, one per
    /// dispatched batch — so a broker that dispatches every job as a
    /// batch of one replays [`ResilientServer::submit`]'s fault
    /// schedule bit for bit.
    pub fn admit(&mut self, now_us: f64, job: &Job) -> Result<(), ServeError> {
        self.ledger.submitted += 1;
        self.telemetry.counter_inc(
            "quamax_serve_submitted_total",
            &[
                ("direction", job.direction.name()),
                ("priority", job.priority.name()),
            ],
        );
        if let Err(e) = Self::validate(job) {
            self.job_seq += 1;
            self.ledger.failed += 1;
            return Err(e);
        }
        if let Some(wait) = self.shed_wait_us(now_us, job.priority) {
            self.job_seq += 1;
            self.ledger.shed += 1;
            self.telemetry.counter_inc(
                "quamax_serve_shed_total",
                &[("priority", job.priority.name())],
            );
            return Err(ServeError::Shed {
                projected_wait_us: wait,
            });
        }
        self.ledger.batched += 1;
        Ok(())
    }

    /// Resolves `count` previously admitted jobs as shed (a queue the
    /// scheduler decided to cut under backpressure after admission).
    pub fn resolve_shed(&mut self, count: u64) {
        assert!(
            self.ledger.batched >= count,
            "cannot shed more jobs than are in flight"
        );
        self.ledger.batched -= count;
        self.ledger.shed += count;
    }

    /// Dispatches a closed batch of `count` previously admitted jobs
    /// sharing one compiled problem (same cell, same channel hash) as
    /// a single combined frame of `problems` subcarrier problems:
    /// one fault-plan draw per attempt, one programming decision, the
    /// anneal waves tiled across the whole batch. `proto` carries the
    /// batch's shared coordinates; its `deadline_us` must be the
    /// *earliest member's* remaining slack, so deadline-funded retries
    /// never overdraw any member. `preferred` is the scheduler's
    /// cache-aware placement hint, honored on the first attempt when
    /// that worker is eligible.
    ///
    /// Every member completes when the batch completes. The ledger
    /// moves `count` jobs from the `batched` gauge to `completed` or
    /// `failed`.
    pub fn dispatch_batch(
        &mut self,
        now_us: f64,
        proto: &Job,
        problems: usize,
        count: u64,
        preferred: Option<usize>,
    ) -> Result<Served, ServeError> {
        assert!(count > 0, "a batch holds at least one job");
        assert!(
            self.ledger.batched >= count,
            "dispatching jobs that were never admitted"
        );
        self.ledger.batched -= count;
        match self.serve_attempts(now_us, proto, problems, preferred) {
            Ok(served) => {
                self.ledger.completed += count;
                Ok(served)
            }
            Err(e) => {
                self.ledger.failed += count;
                Err(e)
            }
        }
    }

    /// Dispatches a closed batch of `count` admitted jobs straight to
    /// the classical floor — the cost-aware policy's route for batches
    /// whose slack can afford CPU service at CPU prices, keeping the
    /// annealer pool for the tight tail.
    pub fn dispatch_batch_classical(
        &mut self,
        now_us: f64,
        proto: &Job,
        problems: usize,
        count: u64,
    ) -> Served {
        assert!(count > 0, "a batch holds at least one job");
        assert!(
            self.ledger.batched >= count,
            "dispatching jobs that were never admitted"
        );
        self.ledger.batched -= count;
        let done = self.classical.enqueue(now_us, problems, proto.users);
        self.ledger.completed += count;
        self.telemetry.counter_add(
            "quamax_serve_served_total",
            &[("rung", ServeRung::Classical.name())],
            count,
        );
        Served {
            done_us: done,
            attempts: 0,
            rung: ServeRung::Classical,
            worker: None,
        }
    }

    /// The retry/escalation loop shared by [`ResilientServer::submit`]
    /// (one job, its own problem count) and
    /// [`ResilientServer::dispatch_batch`] (a coalesced batch serving
    /// `problems` combined subcarrier problems). Burns one fault-plan
    /// job id. Ledger accounting is the caller's.
    fn serve_attempts(
        &mut self,
        now_us: f64,
        job: &Job,
        problems: usize,
        preferred: Option<usize>,
    ) -> Result<Served, ServeError> {
        let job_id = self.job_seq;
        self.job_seq += 1;

        let mut attempt: u32 = 1;
        let mut t = now_us;
        let mut warm = false;
        let mut prev: Option<usize> = None;
        let mut last_err = ServeError::WorkerUnavailable;
        loop {
            // Cache-aware placement: the scheduler's preferred worker
            // (its chip already programmed with this batch's problem)
            // wins the first attempt when eligible; retries fall back
            // to the standard warm/alternate routing.
            let picked = match preferred {
                Some(p) if attempt == 1 && self.eligible(t).iter().any(|&(i, _)| i == p) => Some(p),
                _ => self.pick_worker(t, warm, prev),
            };
            let Some(w) = picked else { break };
            let fault = self.plan.draw(w, job_id, attempt);
            let worker = &mut self.workers[w];
            match fault {
                None | Some(FaultClass::WorkerStall) => {
                    // The job runs to completion — a stall just lands
                    // it late (and holds the worker through the stall).
                    let mut done = if warm {
                        worker.qpu.enqueue_warm_retry(
                            t,
                            problems,
                            job.logical_vars,
                            self.guardrails.retry.warm_fraction,
                        )
                    } else if let Some(hash) = job.channel_hash {
                        worker
                            .qpu
                            .enqueue_channel(t, job.source, hash, problems, job.logical_vars)
                    } else {
                        worker
                            .qpu
                            .enqueue_keyed(t, job.source, problems, job.logical_vars)
                    };
                    if fault.is_some() {
                        done = worker.qpu.occupy_us(done, self.plan.stall_us());
                    }
                    worker.breaker.on_success();
                    self.telemetry.counter_inc(
                        "quamax_serve_served_total",
                        &[("rung", ServeRung::Qpu.name())],
                    );
                    self.telemetry
                        .observe("quamax_serve_attempts", &[], f64::from(attempt));
                    return Ok(Served {
                        done_us: done,
                        attempts: attempt,
                        rung: ServeRung::Qpu,
                        worker: Some(w),
                    });
                }
                Some(class @ FaultClass::WorkerCrash) => {
                    // The dispatcher learns immediately; the worker is
                    // down for the repair interval. The job never ran,
                    // so a retry is cold and must use an alternate.
                    worker.crashed_until_us = t + self.plan.repair_us();
                    note_breaker_failure(&self.telemetry, &mut worker.breaker, t);
                    last_err = ServeError::Fault { class };
                    warm = false;
                }
                Some(class @ FaultClass::ProgrammingFailure) => {
                    // Fail fast: only the programming cycle is lost,
                    // nothing was annealed — the retry is cold.
                    let fail_at = worker
                        .qpu
                        .occupy_us(t, worker.qpu.overheads().programming_us);
                    note_breaker_failure(&self.telemetry, &mut worker.breaker, fail_at);
                    last_err = ServeError::Fault { class };
                    warm = false;
                    t = fail_at;
                }
                Some(class) => {
                    // Chain-break storm / ICE drift: the anneals ran
                    // (full service charged) but their quality is
                    // garbage. The best candidate survives, so the
                    // retry is a warm reverse-anneal restart.
                    debug_assert!(class.warm_restartable());
                    let fail_at = if warm {
                        worker.qpu.enqueue_warm_retry(
                            t,
                            problems,
                            job.logical_vars,
                            self.guardrails.retry.warm_fraction,
                        )
                    } else if let Some(hash) = job.channel_hash {
                        worker
                            .qpu
                            .enqueue_channel(t, job.source, hash, problems, job.logical_vars)
                    } else {
                        worker
                            .qpu
                            .enqueue_keyed(t, job.source, problems, job.logical_vars)
                    };
                    note_breaker_failure(&self.telemetry, &mut worker.breaker, fail_at);
                    last_err = ServeError::Fault { class };
                    warm = true;
                    t = fail_at;
                }
            }
            // The attempt failed at time `t`. Fund a retry from the
            // remaining deadline slack, or leave the loop.
            prev = Some(w);
            let retry_cost = if warm {
                self.workers[w].qpu.warm_retry_time_us(
                    problems,
                    job.logical_vars,
                    self.guardrails.retry.warm_fraction,
                )
            } else {
                self.workers[w]
                    .qpu
                    .service_time_us(problems, job.logical_vars)
            };
            match self.guardrails.retry.fund_retry(
                attempt + 1,
                t - now_us,
                job.deadline_us,
                retry_cost,
                self.plan.seed() ^ job_id,
            ) {
                Some(backoff) => {
                    self.telemetry
                        .counter_inc("quamax_serve_retries_total", &[("outcome", "funded")]);
                    self.telemetry.counter_inc(
                        "quamax_serve_restarts_total",
                        &[("kind", if warm { "warm" } else { "cold" })],
                    );
                    t += backoff;
                    attempt += 1;
                }
                None => {
                    self.telemetry
                        .counter_inc("quamax_serve_retries_total", &[("outcome", "denied")]);
                    break;
                }
            }
        }

        // Retries exhausted (or no worker): walk down the ladder.
        if self.guardrails.escalate {
            let (done, rung) = match self.hybrid.as_mut() {
                Some(h) => (
                    h.enqueue_keyed(t, job.source, problems, job.users, job.logical_vars),
                    ServeRung::Hybrid,
                ),
                None => (
                    self.classical.enqueue(t, problems, job.users),
                    ServeRung::Classical,
                ),
            };
            self.telemetry
                .counter_inc("quamax_serve_served_total", &[("rung", rung.name())]);
            self.telemetry
                .observe("quamax_serve_attempts", &[], f64::from(attempt));
            return Ok(Served {
                done_us: done,
                attempts: attempt,
                rung,
                worker: None,
            });
        }
        Err(last_err)
    }
}

/// Records the breaker failure and, when it tripped the breaker from
/// closed to open, bumps the transition counter. Uses the pure-read
/// [`CircuitBreaker::trips`] delta — never an extra
/// [`CircuitBreaker::state`] call, which would advance open → half-open
/// and perturb routing when telemetry is on.
fn note_breaker_failure(telemetry: &Telemetry, breaker: &mut CircuitBreaker, at_us: f64) {
    let before = breaker.trips();
    breaker.on_failure(at_us);
    if breaker.trips() > before {
        telemetry.counter_inc("quamax_breaker_transitions_total", &[("to", "open")]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPolicy;
    use crate::fault::FaultRates;
    use crate::qpu::QpuOverheads;

    fn qpu() -> QpuServer {
        QpuServer::new(QpuOverheads::integrated(), 1.0, 10)
    }

    fn classical() -> CpuPool {
        CpuPool::new(
            8,
            CpuPolicy::ZeroForcing {
                vectors_per_channel: 1,
            },
        )
    }

    fn job(deadline_us: f64) -> Job {
        Job {
            source: 0,
            direction: JobDirection::Uplink,
            channel_hash: None,
            problems: 1,
            logical_vars: 16,
            users: 16,
            deadline_us,
            priority: Priority::Normal,
        }
    }

    #[test]
    fn quiet_plan_serves_like_a_plain_qpu() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            FaultPlan::quiet(1),
            Guardrails::on(),
        );
        let mut plain = qpu();
        for k in 0..20 {
            let at = 100.0 * k as f64;
            let served = srv.submit(at, &job(1e6)).unwrap();
            let expect = plain.enqueue_keyed(at, 0, 1, 16);
            assert_eq!(served.done_us.to_bits(), expect.to_bits(), "job {k}");
            assert_eq!(served.attempts, 1);
            assert_eq!(served.rung, ServeRung::Qpu);
            assert_eq!(served.worker, Some(0));
        }
        let ledger = srv.ledger();
        assert_eq!(ledger.submitted, 20);
        assert_eq!(ledger.completed, 20);
        assert!(ledger.conserved());
        assert_eq!(srv.breaker_trips(), 0);
    }

    #[test]
    fn invalid_jobs_are_classified_and_ledgered() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            FaultPlan::quiet(1),
            Guardrails::on(),
        );
        let mut bad = job(1e6);
        bad.problems = 0;
        assert_eq!(
            srv.submit(0.0, &bad),
            Err(ServeError::InvalidJob("zero problems in frame"))
        );
        bad.problems = 1;
        bad.logical_vars = 0;
        assert_eq!(
            srv.submit(0.0, &bad),
            Err(ServeError::InvalidJob("zero logical variables"))
        );
        let ledger = srv.ledger();
        assert_eq!(ledger.failed, 2);
        assert!(ledger.conserved());
    }

    /// A plan whose rates make *every* draw fire as `class`.
    fn always(class: FaultClass) -> FaultPlan {
        let mut r = FaultRates::none();
        match class {
            FaultClass::ChainBreakStorm => r.chain_break_storm = 1.0,
            FaultClass::IceDrift => r.ice_drift = 1.0,
            FaultClass::ProgrammingFailure => r.programming_failure = 1.0,
            FaultClass::WorkerStall => r.worker_stall = 1.0,
            FaultClass::WorkerCrash => r.worker_crash = 1.0,
        }
        FaultPlan::new(5, r)
    }

    #[test]
    fn stalls_complete_late_but_complete() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            always(FaultClass::WorkerStall).with_stall_us(500.0),
            Guardrails::off(),
        );
        let served = srv.submit(0.0, &job(1e6)).unwrap();
        let plain = qpu().enqueue_keyed(0.0, 0, 1, 16);
        assert!((served.done_us - plain - 500.0).abs() < 1e-9);
        assert!(srv.ledger().conserved());
        assert_eq!(srv.fault_plan().counters().worker_stalls, 1);
    }

    #[test]
    fn unguarded_faults_kill_their_jobs() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            always(FaultClass::IceDrift),
            Guardrails::off(),
        );
        assert_eq!(
            srv.submit(0.0, &job(1e6)),
            Err(ServeError::Fault {
                class: FaultClass::IceDrift
            })
        );
        let ledger = srv.ledger();
        assert_eq!((ledger.failed, ledger.completed), (1, 0));
        assert!(ledger.conserved());
    }

    #[test]
    fn guarded_jobs_escalate_to_the_classical_floor() {
        // Every QPU attempt drifts; guardrails exhaust the retries and
        // the classical pool answers.
        let mut srv = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            always(FaultClass::IceDrift),
            Guardrails::on(),
        );
        let served = srv.submit(0.0, &job(1e9)).unwrap();
        assert_eq!(served.rung, ServeRung::Classical);
        assert_eq!(served.worker, None);
        assert_eq!(served.attempts, RetryPolicy::standard().max_attempts);
        assert!(srv.ledger().conserved());
        assert_eq!(srv.ledger().completed, 1);
    }

    #[test]
    fn hybrid_rung_precedes_classical() {
        let hybrid = HybridServer::new(classical(), qpu(), 0.1);
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            always(FaultClass::ProgrammingFailure),
            Guardrails::on(),
        )
        .with_hybrid(hybrid);
        let served = srv.submit(0.0, &job(1e9)).unwrap();
        assert_eq!(served.rung, ServeRung::Hybrid);
    }

    #[test]
    fn crash_downs_the_worker_and_retries_route_around_it() {
        // Worker picked first crashes on its first draw; the retry must
        // land on the other worker. Keyed draws: (w, job 0, attempt 1)
        // crashes for every worker under `always`, so attempt 2 also
        // crashes... instead use a plan where only attempt 1 fires.
        let mut plan = always(FaultClass::WorkerCrash);
        plan = plan.with_repair_us(1_000.0);
        let mut srv = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            plan,
            Guardrails {
                escalate: false,
                ..Guardrails::on()
            },
        );
        // Every attempt crashes its worker; after both workers are
        // down, no worker is available and (escalation off) the job
        // fails classified.
        let err = srv.submit(0.0, &job(1e9)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Fault {
                class: FaultClass::WorkerCrash
            } | ServeError::WorkerUnavailable
        ));
        // Both workers are down until repair.
        assert!(srv.eligible(10.0).is_empty());
        assert_eq!(srv.eligible(2_000.0).len(), 2, "repair restores both");
        assert!(srv.ledger().conserved());
    }

    #[test]
    fn breaker_opens_after_threshold_and_sheds_traffic_to_floor() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            always(FaultClass::ProgrammingFailure),
            Guardrails {
                retry: RetryPolicy::disabled(),
                ..Guardrails::on()
            },
        );
        // Threshold 3: three one-attempt failures trip the breaker.
        for k in 0..3 {
            let served = srv.submit(k as f64, &job(1e9)).unwrap();
            assert_eq!(served.rung, ServeRung::Classical, "job {k} escalates");
        }
        assert_eq!(srv.breaker_trips(), 1);
        // With the breaker open, the next job never touches the QPU:
        // no new fault draw fires.
        let before = srv.fault_plan().counters().total();
        let served = srv.submit(3.0, &job(1e9)).unwrap();
        assert_eq!(served.rung, ServeRung::Classical);
        assert_eq!(srv.fault_plan().counters().total(), before);
    }

    #[test]
    fn backpressure_sheds_low_priority_first_and_records_it() {
        // Saturate the single worker, then submit one job per class.
        let slow = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 50);
        let mut srv = ResilientServer::new(
            vec![slow],
            classical(),
            FaultPlan::quiet(1),
            Guardrails::on(),
        );
        let mut high = job(1e9);
        high.priority = Priority::High;
        for k in 0..20 {
            let _ = srv.submit(k as f64, &high).unwrap();
        }
        let mut low = job(1e9);
        low.priority = Priority::Low;
        let shed = srv.submit(20.0, &low).unwrap_err();
        assert!(matches!(shed, ServeError::Shed { projected_wait_us } if projected_wait_us > 0.0));
        let kept = srv.submit(21.0, &high).unwrap();
        assert_eq!(kept.rung, ServeRung::Qpu, "high priority is never shed");
        let ledger = srv.ledger();
        assert_eq!(ledger.shed, 1);
        assert!(ledger.conserved());
    }

    #[test]
    fn warm_retry_is_cheaper_than_a_cold_second_attempt() {
        // One storm, then success: the retry reverse-anneals warm. With
        // jitter off the completion time is exactly first-failure +
        // backoff + warm service.
        let mut rates = FaultRates::none();
        rates.chain_break_storm = 0.6;
        let plan = FaultPlan::new(9, rates);
        // Find a job id whose attempt 1 faults and attempt 2 does not.
        let mut probe = None;
        for j in 0..100 {
            if plan.peek(0, j, 1).is_some() && plan.peek(0, j, 2).is_none() {
                probe = Some(j);
                break;
            }
        }
        let probe = probe.expect("a storm-then-clear job exists");
        let guard = Guardrails {
            retry: RetryPolicy {
                jitter_fraction: 0.0,
                ..RetryPolicy::standard()
            },
            ..Guardrails::on()
        };
        let mut srv = ResilientServer::new(vec![qpu()], classical(), plan, guard);
        // Burn job ids up to the probe (deadline 0 funds nothing, so
        // each is a single attempt; escalation completes them).
        for _ in 0..probe {
            let _ = srv.submit(0.0, &job(0.0));
        }
        let t0 = srv.workers[0].qpu.busy_until_us();
        let served = srv.submit(t0, &job(1e9)).unwrap();
        assert_eq!(served.attempts, 2);
        let cold = qpu().service_time_us(1, 16);
        let warm = qpu().warm_retry_time_us(1, 16, guard.retry.warm_fraction);
        let expect = t0 + cold + 20.0 + warm;
        assert!(
            (served.done_us - expect).abs() < 1e-9,
            "done {} expect {expect}",
            served.done_us
        );
    }

    #[test]
    fn reset_clears_state_but_not_the_schedule() {
        let mut srv = ResilientServer::new(
            vec![qpu()],
            classical(),
            FaultPlan::new(3, FaultRates::uniform(0.1)),
            Guardrails::on(),
        );
        let mut first = Vec::new();
        for k in 0..50 {
            first.push(srv.submit(100.0 * k as f64, &job(1e9)).map(|s| s.done_us));
        }
        let ledger = srv.ledger();
        srv.reset();
        assert_eq!(srv.ledger(), Ledger::default());
        let mut again = Vec::new();
        for k in 0..50 {
            again.push(srv.submit(100.0 * k as f64, &job(1e9)).map(|s| s.done_us));
        }
        assert_eq!(first, again, "same schedule after reset");
        assert_eq!(ledger, srv.ledger());
    }

    #[test]
    fn telemetry_never_perturbs_serving_and_counts_the_right_events() {
        // Same faulty workload with telemetry off and on: every outcome
        // (including completion-time bits and the fault schedule) must
        // match, because recording may observe the serve path but never
        // feed back into it.
        let plan = || FaultPlan::new(3, FaultRates::uniform(0.1));
        let run = |telemetry: Telemetry| {
            let mut srv =
                ResilientServer::new(vec![qpu(), qpu()], classical(), plan(), Guardrails::on())
                    .with_telemetry(telemetry);
            let mut outcomes = Vec::new();
            for k in 0..200 {
                outcomes.push(
                    srv.submit(40.0 * k as f64, &job(1e4))
                        .map(|s| (s.done_us.to_bits(), s.attempts, s.rung, s.worker)),
                );
            }
            srv.publish_telemetry();
            (outcomes, srv.ledger(), srv.breaker_trips())
        };

        let t = Telemetry::enabled();
        let (plain, plain_ledger, plain_trips) = run(Telemetry::disabled());
        let (observed, ledger, trips) = run(t.clone());
        assert_eq!(plain, observed, "telemetry changed a serve outcome");
        assert_eq!(plain_ledger, ledger);
        assert_eq!(plain_trips, trips);

        let snap = t.snapshot();
        assert_eq!(
            snap.counter_total("quamax_serve_submitted_total"),
            ledger.submitted
        );
        assert_eq!(
            snap.counter("quamax_serve_ledger_total", &[("state", "submitted")]),
            Some(ledger.submitted)
        );
        let served = snap.counter_total("quamax_serve_served_total");
        assert_eq!(served, ledger.completed);
        assert_eq!(snap.counter_total("quamax_serve_shed_total"), ledger.shed);
        assert_eq!(
            snap.counter_total("quamax_breaker_transitions_total"),
            trips
        );
        // Every completed job recorded its attempt count.
        let attempts = snap
            .histogram("quamax_serve_attempts", &[])
            .expect("attempts histogram");
        assert_eq!(attempts.count, ledger.completed);
        // Funded retries and the serve outcomes agree: each attempt
        // beyond the first on a completed job was funded.
        let funded = snap
            .counter("quamax_serve_retries_total", &[("outcome", "funded")])
            .unwrap_or(0);
        let extra_attempts: u64 = observed
            .iter()
            .filter_map(|o| o.as_ref().ok())
            .map(|&(_, attempts, _, _)| u64::from(attempts - 1))
            .sum();
        assert!(
            funded >= extra_attempts,
            "funded {funded} < extra attempts {extra_attempts}"
        );
    }
}
