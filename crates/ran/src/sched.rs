//! The deadline-aware batch scheduler: the brain between the
//! [`Broker`]'s per-cell queues and the [`ResilientServer`] pool.
//!
//! The scheduler exploits the central timing fact of annealer serving:
//! a 16-variable detection problem tiles ~24× onto one chip
//! ([`parallelization`]), so a per-user job with one subcarrier
//! problem wastes ~96% of an anneal wave — and a full programming
//! cycle — that a coalesced batch would amortize. Jobs sharing
//! `(cell, channel_hash)` were detected against the same channel and
//! compile into one QPU problem, so the scheduler keeps one *open
//! batch* per coalescing key and dispatches it when either
//!
//! 1. the batch is **full** ([`SchedConfig::max_batch`] members), or
//! 2. the **batch-closing rule** fires: the earliest member's
//!    deadline slack, minus the batch's projected service time
//!    (queue wait on the reserved worker + tiled anneal waves), hits
//!    zero. Waiting any longer would convert batching gain into a
//!    deadline miss; the projection is conservative (today's measured
//!    wait, which only drains with time), so a rule-closed batch never
//!    *projects* past its earliest deadline while slack was available.
//!
//! Open batches *reserve* their projected service on a preferred
//! worker ([`ResilientServer::reserve_batch_us`]) so placement,
//! shedding, and other batches' close rules all see load that is
//! about to exist. Placement is cache-aware: a worker whose
//! [`SessionCache`] holds the batch's `(cell, hash)` session skips
//! preprocessing + programming entirely and is preferred both for
//! reservation and dispatch.
//!
//! Three policies share this machinery ([`Policy`]): `Fifo` dispatches
//! every job as a batch of one at arrival (bit-identical to the
//! unbatched [`ResilientServer::submit`] path — a tested contract);
//! `DeadlineBatch` runs the closing rule; `CostAware` additionally
//! consults the [`CostModel`] at close time and routes a batch to the
//! classical floor when CPU service is cheaper *and* still meets the
//! earliest member deadline — spending annealer time only on the
//! deadline-tight tail.
//!
//! [`Broker`]: crate::broker::Broker
//! [`parallelization`]: quamax_chimera::parallelization
//! [`SessionCache`]: crate::qpu::SessionCache
//! [`ResilientServer`]: crate::serve::ResilientServer
//! [`ResilientServer::submit`]: crate::serve::ResilientServer::submit
//! [`ResilientServer::reserve_batch_us`]: crate::serve::ResilientServer::reserve_batch_us
//! [`CostModel`]: crate::cost::CostModel

use crate::broker::{Broker, JobId, JobState, UserJob};
use crate::cost::{CostModel, DecodeCost};
use crate::fault::ServeError;
use crate::qpu::JobDirection;
use crate::serve::{Job, Priority, ResilientServer, ServeRung};
use quamax_telemetry::Telemetry;

/// Close-rule comparisons tolerate this much float noise, µs.
const EPS: f64 = 1e-9;

/// The scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// No batching: every job dispatches alone at arrival, in arrival
    /// order — the baseline, bit-identical to unbrokered submission.
    Fifo,
    /// Deadline-aware batching: coalesce per `(cell, hash)`, dispatch
    /// at full or at the closing rule.
    DeadlineBatch,
    /// Deadline-aware batching plus cost routing: a closed batch goes
    /// to the classical floor when that is cheaper and still meets the
    /// earliest member deadline.
    CostAware,
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedConfig {
    /// The policy.
    pub policy: Policy,
    /// Members per batch cap — the chip's parallel factor is the
    /// natural choice (filling one anneal wave exactly).
    pub max_batch: usize,
    /// The price book (bills every policy; routes only `CostAware`).
    pub cost: CostModel,
}

impl SchedConfig {
    /// A config over `policy` and `max_batch` with the NextG baseline
    /// price book.
    ///
    /// # Panics
    /// Panics when `max_batch` is zero.
    pub fn new(policy: Policy, max_batch: usize) -> Self {
        assert!(max_batch > 0, "a batch holds at least one job");
        SchedConfig {
            policy,
            max_batch,
            cost: CostModel::nextg_baseline(),
        }
    }
}

/// Why a batch left the open set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CloseTrigger {
    /// Reached [`SchedConfig::max_batch`] members.
    Full,
    /// The closing rule fired (slack minus projected service ≤ 0).
    Slack,
    /// End-of-run drain.
    Drain,
}

impl CloseTrigger {
    /// The metric-label spelling of this trigger.
    pub fn name(self) -> &'static str {
        match self {
            CloseTrigger::Full => "full",
            CloseTrigger::Slack => "slack",
            CloseTrigger::Drain => "drain",
        }
    }
}

/// One dispatched batch, as recorded for the dispatch log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchRecord {
    /// Dispatch time, µs.
    pub close_us: f64,
    /// Members in the batch.
    pub occupancy: usize,
    /// The earliest member's absolute deadline, µs.
    pub earliest_deadline_us: f64,
    /// Projected completion at close (wait + service), µs.
    pub projected_done_us: f64,
    /// `earliest_deadline_us − projected_done_us` at close.
    pub slack_at_close_us: f64,
    /// Slack the batch had when it was opened — negative means the
    /// deadline was unmeetable from the start (no rule saves it).
    pub open_slack_us: f64,
    /// What closed it.
    pub trigger: CloseTrigger,
    /// The rung that served it.
    pub rung: ServeRung,
}

/// One job's terminal record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// The broker's handle.
    pub id: JobId,
    /// Originating cell.
    pub cell: usize,
    /// Arrival time, µs.
    pub arrival_us: f64,
    /// Completion time, µs (infinite for shed/failed jobs).
    pub done_us: f64,
    /// `done_us − arrival_us` (infinite for shed/failed jobs).
    pub latency_us: f64,
    /// Whether the job finished by its absolute deadline.
    pub met_deadline: bool,
    /// Terminal lifecycle state.
    pub state: JobState,
    /// The rung that served it (`None` for shed/failed jobs).
    pub rung: Option<ServeRung>,
    /// QPU attempts its batch consumed.
    pub attempts: u32,
    /// This job's share of its batch's bill.
    pub cost: DecodeCost,
}

/// Everything one scheduling run produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScheduleReport {
    /// Per-job terminal records, in submission ([`JobId`]) order.
    pub outcomes: Vec<JobOutcome>,
    /// The dispatch log, in dispatch order.
    pub dispatches: Vec<DispatchRecord>,
    /// The run's total bill.
    pub total_cost: DecodeCost,
}

impl ScheduleReport {
    /// Fraction of jobs meeting their deadline (shed/failed = missed).
    pub fn deadline_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.met_deadline).count() as f64 / self.outcomes.len() as f64
    }

    /// Mean members per dispatched batch.
    pub fn mean_occupancy(&self) -> f64 {
        if self.dispatches.is_empty() {
            return 0.0;
        }
        self.dispatches
            .iter()
            .map(|d| d.occupancy as f64)
            .sum::<f64>()
            / self.dispatches.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of *served* job latency, µs
    /// (nearest-rank); 0 when nothing was served.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut served: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.state == JobState::Completed)
            .map(|o| o.latency_us)
            .collect();
        if served.is_empty() {
            return 0.0;
        }
        served.sort_by(f64::total_cmp);
        let idx = ((served.len() - 1) as f64 * q).round() as usize;
        served[idx]
    }

    /// Completed jobs.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state == JobState::Completed)
            .count()
    }

    /// Shed jobs.
    pub fn shed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state == JobState::Shed)
            .count()
    }

    /// Failed jobs.
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state == JobState::Failed)
            .count()
    }

    /// Dollars per completed decode (0 when nothing completed).
    pub fn usd_per_decode(&self) -> f64 {
        let n = self.completed();
        if n == 0 {
            return 0.0;
        }
        self.total_cost.usd / n as f64
    }

    /// Joules per completed decode (0 when nothing completed).
    pub fn joules_per_decode(&self) -> f64 {
        let n = self.completed();
        if n == 0 {
            return 0.0;
        }
        self.total_cost.joules / n as f64
    }
}

/// An open batch: one coalescing key's accumulating members.
#[derive(Clone, Debug)]
struct OpenBatch {
    cell: usize,
    /// Uplink or downlink — batches never mix directions: a detection
    /// batch and a precoding batch program different problems even
    /// from the same channel.
    direction: JobDirection,
    hash: u64,
    members: Vec<JobId>,
    /// Combined subcarrier problems.
    problems: usize,
    logical_vars: usize,
    users: usize,
    /// The strictest member priority (a batch is as urgent as its most
    /// urgent member).
    priority: Priority,
    /// The earliest member's absolute deadline, µs.
    earliest_deadline_us: f64,
    /// `(worker, reserved µs)` — the projected service currently
    /// reserved on the preferred worker.
    reserve: Option<(usize, f64)>,
    /// Slack at open time (for the dispatch log).
    open_slack_us: f64,
}

/// `High > Normal > Low`.
fn stricter(a: Priority, b: Priority) -> Priority {
    let rank = |p: Priority| match p {
        Priority::High => 2,
        Priority::Normal => 1,
        Priority::Low => 0,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// The serving-layer view of a broker job (admission shape).
fn admission_job(j: &UserJob) -> Job {
    Job {
        source: j.cell,
        direction: j.direction,
        channel_hash: Some(j.channel_hash),
        problems: j.problems,
        logical_vars: j.logical_vars,
        users: j.users,
        deadline_us: j.deadline_us,
        priority: j.priority,
    }
}

/// The deadline-aware batch scheduler.
pub struct BatchScheduler {
    config: SchedConfig,
    open: Vec<OpenBatch>,
    /// Batch/queue metrics sink. Recording observes scheduling
    /// decisions but never feeds back into them — close times,
    /// placement, and routing are identical with telemetry on or off.
    telemetry: Telemetry,
}

impl BatchScheduler {
    /// A scheduler over `config`.
    pub fn new(config: SchedConfig) -> Self {
        assert!(config.max_batch > 0, "a batch holds at least one job");
        BatchScheduler {
            config,
            open: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle ([`SchedConfig`] is `Copy`, so the
    /// handle rides the scheduler itself, builder-style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs `arrivals` (any order; sorted by arrival time internally)
    /// through `broker` admission and batched dispatch onto `server`,
    /// draining every open batch before returning. The returned
    /// report's outcomes are in submission order; the broker ends
    /// [`Broker::drained`] and the server ledger's in-flight gauge
    /// ends at zero.
    pub fn run(
        &mut self,
        server: &mut ResilientServer,
        broker: &mut Broker,
        mut arrivals: Vec<UserJob>,
    ) -> ScheduleReport {
        arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
        let mut report = ScheduleReport::default();
        let mut now = 0.0_f64;
        let mut i = 0;
        while i < arrivals.len() || !self.open.is_empty() {
            let next_arrival = arrivals.get(i).map(|j| j.arrival_us);
            let next_close = self.next_close_us(server, now);
            match (next_arrival, next_close) {
                // Ties close before ingesting: a job must not join a
                // batch whose slack just hit zero (it would push the
                // projection past the earliest deadline).
                (Some(a), Some(c)) if c <= a => {
                    now = now.max(c);
                    self.dispatch_due(server, broker, now, &mut report);
                }
                (None, Some(c)) => {
                    now = now.max(c);
                    self.dispatch_due(server, broker, now, &mut report);
                }
                (Some(a), _) => {
                    now = now.max(a);
                    let job = arrivals[i];
                    i += 1;
                    self.ingest(server, broker, job, &mut report);
                    self.telemetry.observe(
                        "quamax_sched_open_batches",
                        &[],
                        self.open.len() as f64,
                    );
                }
                (None, None) => break,
            }
        }
        // Drain: dispatch leftovers at their close times (or now).
        while let Some(idx) = self.next_open_index(server, now) {
            let c = Self::close_us(server, now, &self.open[idx]);
            now = now.max(c);
            let batch = self.open.swap_remove(idx);
            self.dispatch(server, broker, now, batch, CloseTrigger::Drain, &mut report);
        }
        report.outcomes.sort_by_key(|o| o.id);
        report
    }

    /// Index of the open batch with the earliest close time.
    fn next_open_index(&self, server: &mut ResilientServer, now: f64) -> Option<usize> {
        (0..self.open.len()).min_by(|&a, &b| {
            Self::close_us(server, now, &self.open[a]).total_cmp(&Self::close_us(
                server,
                now,
                &self.open[b],
            ))
        })
    }

    /// The earliest close time over open batches at `now`.
    fn next_close_us(&self, server: &mut ResilientServer, now: f64) -> Option<f64> {
        self.open
            .iter()
            .map(|b| Self::close_us(server, now, b))
            .min_by(f64::total_cmp)
    }

    /// The batch-closing rule: the time at which `b`'s earliest
    /// deadline slack minus its projected service hits zero, evaluated
    /// with the wait measured *now*. Queue wait only drains as time
    /// advances, so this is conservative: re-evaluated at the returned
    /// time it can move later (the event loop just re-arms), but a
    /// batch is never closed *after* its projection misses.
    fn close_us(server: &mut ResilientServer, now: f64, b: &OpenBatch) -> f64 {
        b.earliest_deadline_us - Self::projected_service_us(server, now, b)
    }

    /// Projected wait + service for `b` dispatched at `now`: the
    /// reserved worker's queue depth (its own reservation excluded —
    /// a batch does not wait behind itself) plus tiled anneal waves,
    /// charging programming unless a worker holds the session.
    fn projected_service_us(server: &mut ResilientServer, now: f64, b: &OpenBatch) -> f64 {
        let program = server.cached_worker(now, b.cell, b.hash).is_none();
        let service = server.batch_service_us(b.problems, b.logical_vars, program);
        let wait = match b.reserve {
            Some((w, own)) => server.queue_depth_us(w, now).map(|d| (d - own).max(0.0)),
            None => server.projected_wait_us(now),
        }
        .unwrap_or(0.0);
        wait + service
    }

    /// Ingests one arrival: broker submission, shared admission
    /// control, then policy routing.
    fn ingest(
        &mut self,
        server: &mut ResilientServer,
        broker: &mut Broker,
        job: UserJob,
        report: &mut ScheduleReport,
    ) {
        let t = job.arrival_us;
        let id = broker.submit(job);
        let popped = broker.pop_queued(job.cell).expect("just queued");
        debug_assert_eq!(popped, id, "scheduler keeps cell queues drained");

        match server.admit(t, &admission_job(&job)) {
            Err(ServeError::Shed { .. }) => {
                broker.transition(id, JobState::Shed);
                report
                    .outcomes
                    .push(Self::lost_outcome(id, &job, JobState::Shed));
                return;
            }
            Err(_) => {
                broker.transition(id, JobState::Failed);
                report
                    .outcomes
                    .push(Self::lost_outcome(id, &job, JobState::Failed));
                return;
            }
            Ok(()) => {}
        }
        broker.transition(id, JobState::Batched);

        if self.config.policy == Policy::Fifo {
            let batch = self.open_batch(server, t, id, &job);
            self.dispatch(server, broker, t, batch, CloseTrigger::Full, report);
            return;
        }
        // Coalescing key: same cell, same direction, same channel
        // hash, and the same problem shape — jobs of a different
        // direction or user count/modulation compile to a different
        // Ising problem and never share a batch.
        match self.open.iter().position(|b| {
            b.cell == job.cell
                && b.direction == job.direction
                && b.hash == job.channel_hash
                && b.logical_vars == job.logical_vars
                && b.users == job.users
        }) {
            Some(idx) => self.join_batch(server, idx, id, &job),
            None => {
                let b = self.open_batch(server, t, id, &job);
                self.open.push(b);
            }
        }
        let idx = self
            .open
            .iter()
            .position(|b| b.members.contains(&id))
            .expect("the job just joined an open batch");
        if self.open[idx].members.len() >= self.config.max_batch {
            let batch = self.open.swap_remove(idx);
            self.dispatch(server, broker, t, batch, CloseTrigger::Full, report);
        }
    }

    /// A fresh open batch seeded with `job`, its projected service
    /// reserved on the preferred worker (cache-holder first, then the
    /// least-loaded eligible worker).
    fn open_batch(
        &self,
        server: &mut ResilientServer,
        now: f64,
        id: JobId,
        job: &UserJob,
    ) -> OpenBatch {
        let service = server.batch_service_us(job.problems, job.logical_vars, true);
        let worker = server
            .cached_worker(now, job.cell, job.channel_hash)
            .or_else(|| {
                (0..server.num_workers())
                    .filter_map(|w| server.queue_depth_us(w, now).map(|d| (w, d)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(w, _)| w)
            });
        if let Some(w) = worker {
            server.reserve_batch_us(w, service);
            self.telemetry
                .observe("quamax_sched_reservation_us", &[], service);
        }
        let mut b = OpenBatch {
            cell: job.cell,
            direction: job.direction,
            hash: job.channel_hash,
            members: vec![id],
            problems: job.problems,
            logical_vars: job.logical_vars,
            users: job.users,
            priority: job.priority,
            earliest_deadline_us: job.absolute_deadline_us(),
            reserve: worker.map(|w| (w, service)),
            open_slack_us: 0.0,
        };
        b.open_slack_us =
            b.earliest_deadline_us - now - Self::projected_service_us(server, now, &b);
        b
    }

    /// Adds `job` to open batch `idx`, growing its reservation by the
    /// service delta.
    fn join_batch(&mut self, server: &mut ResilientServer, idx: usize, id: JobId, job: &UserJob) {
        let b = &mut self.open[idx];
        b.members.push(id);
        b.problems += job.problems;
        b.users = b.users.max(job.users);
        b.priority = stricter(b.priority, job.priority);
        b.earliest_deadline_us = b.earliest_deadline_us.min(job.absolute_deadline_us());
        if let Some((w, own)) = b.reserve {
            let service = server.batch_service_us(b.problems, b.logical_vars, true);
            let delta = (service - own).max(0.0);
            server.reserve_batch_us(w, delta);
            b.reserve = Some((w, own + delta));
            self.telemetry
                .observe("quamax_sched_reservation_us", &[], delta);
        }
    }

    /// Dispatches every open batch whose close time has arrived.
    fn dispatch_due(
        &mut self,
        server: &mut ResilientServer,
        broker: &mut Broker,
        now: f64,
        report: &mut ScheduleReport,
    ) {
        while let Some(idx) =
            (0..self.open.len()).find(|&i| Self::close_us(server, now, &self.open[i]) <= now + EPS)
        {
            let batch = self.open.swap_remove(idx);
            self.dispatch(server, broker, now, batch, CloseTrigger::Slack, report);
        }
    }

    /// Dispatches `batch` at `now`: releases its reservation, routes
    /// (cost-aware policies may take the classical floor), serves, and
    /// records member outcomes plus the dispatch-log row.
    fn dispatch(
        &mut self,
        server: &mut ResilientServer,
        broker: &mut Broker,
        now: f64,
        batch: OpenBatch,
        trigger: CloseTrigger,
        report: &mut ScheduleReport,
    ) {
        // Project before releasing: `projected_service_us` nets the
        // batch's own reservation out of the worker's queue depth, so
        // it must still be reserved here or the wait is undercounted.
        let count = batch.members.len() as u64;
        let projected_done_us = now + Self::projected_service_us(server, now, &batch);
        self.telemetry
            .counter_inc("quamax_sched_batches_total", &[("trigger", trigger.name())]);
        self.telemetry
            .observe("quamax_sched_batch_occupancy", &[], count as f64);
        self.telemetry.observe(
            "quamax_sched_slack_at_close_us",
            &[],
            batch.earliest_deadline_us - projected_done_us,
        );
        if let Some((w, own)) = batch.reserve {
            server.release_batch_us(w, own);
        }
        for &id in &batch.members {
            broker.transition(id, JobState::Running);
        }

        // Cost routing: take the classical floor when it is cheaper
        // and its projected completion still meets the earliest member
        // deadline.
        //
        // Cache-aware placement is a batching-policy feature: Fifo must
        // replay `ResilientServer::submit` exactly, and `submit` always
        // routes least-loaded, so Fifo never steers toward the cache
        // holder.
        let cached = server.cached_worker(now, batch.cell, batch.hash);
        let preferred = match self.config.policy {
            Policy::Fifo => None,
            Policy::DeadlineBatch | Policy::CostAware => cached,
        };
        let program = cached.is_none();
        let qpu_service = server.batch_service_us(batch.problems, batch.logical_vars, program);
        let cpu_service = server.classical_service_us(batch.problems, batch.users);
        let take_floor = self.config.policy == Policy::CostAware && {
            let cpu_done = now.max(server.classical_busy_until_us()) + cpu_service;
            let cheaper = self
                .config
                .cost
                .rung_cost(ServeRung::Classical, cpu_service)
                .usd
                < self.config.cost.rung_cost(ServeRung::Qpu, qpu_service).usd;
            cheaper && cpu_done <= batch.earliest_deadline_us
        };

        let proto = Job {
            source: batch.cell,
            direction: batch.direction,
            channel_hash: Some(batch.hash),
            problems: batch.problems,
            logical_vars: batch.logical_vars,
            users: batch.users,
            deadline_us: batch.earliest_deadline_us - now,
            priority: batch.priority,
        };
        let result = if take_floor {
            Ok(server.dispatch_batch_classical(now, &proto, batch.problems, count))
        } else {
            server.dispatch_batch(now, &proto, batch.problems, count, preferred)
        };

        match result {
            Ok(served) => {
                let billed_service = match served.rung {
                    ServeRung::Qpu => qpu_service,
                    ServeRung::Hybrid | ServeRung::Classical => cpu_service,
                };
                let bill = self.config.cost.rung_cost(served.rung, billed_service);
                let share = DecodeCost {
                    usd: bill.usd / count as f64,
                    joules: bill.joules / count as f64,
                };
                report.total_cost = report.total_cost.plus(bill);
                report.dispatches.push(DispatchRecord {
                    close_us: now,
                    occupancy: batch.members.len(),
                    earliest_deadline_us: batch.earliest_deadline_us,
                    projected_done_us,
                    slack_at_close_us: batch.earliest_deadline_us - projected_done_us,
                    open_slack_us: batch.open_slack_us,
                    trigger,
                    rung: served.rung,
                });
                for &id in &batch.members {
                    broker.transition(id, JobState::Completed);
                    let job = *broker.job(id);
                    let latency = served.done_us - job.arrival_us;
                    report.outcomes.push(JobOutcome {
                        id,
                        cell: job.cell,
                        arrival_us: job.arrival_us,
                        done_us: served.done_us,
                        latency_us: latency,
                        met_deadline: served.done_us <= job.absolute_deadline_us(),
                        state: JobState::Completed,
                        rung: Some(served.rung),
                        attempts: served.attempts,
                        cost: share,
                    });
                }
            }
            Err(_) => {
                for &id in &batch.members {
                    broker.transition(id, JobState::Failed);
                    let job = *broker.job(id);
                    report
                        .outcomes
                        .push(Self::lost_outcome(id, &job, JobState::Failed));
                }
            }
        }
    }

    /// The terminal record of a job that never produced an answer.
    fn lost_outcome(id: JobId, job: &UserJob, state: JobState) -> JobOutcome {
        JobOutcome {
            id,
            cell: job.cell,
            arrival_us: job.arrival_us,
            done_us: f64::INFINITY,
            latency_us: f64::INFINITY,
            met_deadline: false,
            state,
            rung: None,
            attempts: 0,
            cost: DecodeCost::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuPolicy, CpuPool};
    use crate::fault::FaultPlan;
    use crate::qpu::{QpuOverheads, QpuServer};
    use crate::serve::Guardrails;

    fn pool(workers: usize) -> ResilientServer {
        ResilientServer::new(
            (0..workers)
                .map(|_| {
                    QpuServer::new(QpuOverheads::integrated(), 2.0, 5).with_session_cache(30_000.0)
                })
                .collect(),
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            ),
            FaultPlan::quiet(7),
            Guardrails::on(),
        )
    }

    fn user_job(arrival_us: f64, cell: usize, hash: u64, deadline_us: f64) -> UserJob {
        UserJob {
            arrival_us,
            cell,
            direction: JobDirection::Uplink,
            channel_hash: hash,
            problems: 1,
            logical_vars: 16,
            users: 16,
            deadline_us,
            priority: Priority::Normal,
        }
    }

    #[test]
    fn same_hash_jobs_coalesce_and_occupancy_grows() {
        let mut server = pool(2);
        let mut broker = Broker::new();
        let arrivals: Vec<UserJob> = (0..12)
            .map(|k| user_job(100.0 + k as f64, 0, 0xABCD, 3_000.0))
            .collect();
        let mut sched = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 24));
        let report = sched.run(&mut server, &mut broker, arrivals);
        assert_eq!(report.completed(), 12);
        assert!(broker.drained());
        assert_eq!(server.ledger().in_flight(), 0);
        assert!(server.ledger().conserved());
        assert!(
            report.mean_occupancy() > 1.5,
            "12 same-hash jobs must coalesce: occupancy {}",
            report.mean_occupancy()
        );
        assert_eq!(report.deadline_rate(), 1.0);
    }

    #[test]
    fn full_batches_dispatch_immediately() {
        let mut server = pool(1);
        let mut broker = Broker::new();
        let arrivals: Vec<UserJob> = (0..6)
            .map(|k| user_job(10.0 + k as f64 * 0.01, 3, 0x5EED, 10_000.0))
            .collect();
        let mut sched = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 3));
        let report = sched.run(&mut server, &mut broker, arrivals);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.dispatches.len(), 2);
        assert!(report
            .dispatches
            .iter()
            .all(|d| d.trigger == CloseTrigger::Full && d.occupancy == 3));
    }

    #[test]
    fn different_hashes_never_share_a_batch() {
        let mut server = pool(2);
        let mut broker = Broker::new();
        let arrivals = vec![
            user_job(10.0, 0, 0xAAAA, 5_000.0),
            user_job(11.0, 0, 0xBBBB, 5_000.0),
            user_job(12.0, 1, 0xAAAA, 5_000.0),
        ];
        let mut sched = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 8));
        let report = sched.run(&mut server, &mut broker, arrivals);
        assert_eq!(report.completed(), 3);
        assert_eq!(
            report.dispatches.len(),
            3,
            "three distinct (cell, hash) keys"
        );
        assert!(report.dispatches.iter().all(|d| d.occupancy == 1));
    }

    #[test]
    fn cost_aware_routes_slack_rich_batches_to_the_floor() {
        // WCDMA-scale slack: the ZF floor easily meets it, and CPU
        // microseconds are ~3 orders of magnitude cheaper.
        let arrivals: Vec<UserJob> = (0..8)
            .map(|k| user_job(50.0 + k as f64, 2, 0xF00D, 10_000.0))
            .collect();
        let run = |policy: Policy| {
            let mut server = pool(2);
            let mut broker = Broker::new();
            let mut sched = BatchScheduler::new(SchedConfig::new(policy, 24));
            sched.run(&mut server, &mut broker, arrivals.clone())
        };
        let batched = run(Policy::DeadlineBatch);
        let costed = run(Policy::CostAware);
        assert_eq!(costed.completed(), 8);
        assert_eq!(
            costed.deadline_rate(),
            1.0,
            "the floor still meets the deadline"
        );
        assert!(costed
            .dispatches
            .iter()
            .all(|d| d.rung == ServeRung::Classical));
        assert!(
            costed.usd_per_decode() < batched.usd_per_decode(),
            "cost routing must beat pure deadline batching on $/decode: {} vs {}",
            costed.usd_per_decode(),
            batched.usd_per_decode()
        );
    }

    #[test]
    fn batches_never_mix_directions() {
        // A full-duplex cell: uplink detections and downlink precodes
        // against the same channel. Even with direction-distinct
        // hashes equal (forced here), the direction field alone must
        // keep the batches apart.
        let mut server = pool(2);
        let mut broker = Broker::new();
        let arrivals: Vec<UserJob> = (0..8)
            .map(|k| {
                let mut j = user_job(10.0 + k as f64, 0, 0x1234, 5_000.0);
                if k % 2 == 1 {
                    j.direction = JobDirection::Downlink;
                }
                j
            })
            .collect();
        let mut sched = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 24));
        let report = sched.run(&mut server, &mut broker, arrivals);
        assert_eq!(report.completed(), 8);
        assert!(broker.drained());
        assert_eq!(
            report.dispatches.len(),
            2,
            "one uplink batch + one downlink batch, never merged"
        );
        assert!(report.dispatches.iter().all(|d| d.occupancy == 4));
    }

    #[test]
    fn impossible_deadlines_are_recorded_not_hidden() {
        let mut server = pool(1);
        let mut broker = Broker::new();
        // 1 µs budget: nothing can serve it, open slack is negative.
        let arrivals = vec![user_job(10.0, 0, 0xDEAD, 1.0)];
        let mut sched = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 4));
        let report = sched.run(&mut server, &mut broker, arrivals);
        assert_eq!(report.completed(), 1, "served late, not lost");
        assert_eq!(report.deadline_rate(), 0.0);
        assert!(report.dispatches[0].open_slack_us < 0.0);
    }
}
