//! Deterministic discrete-event simulation of the C-RAN air interface
//! — uplink detection and downlink precoding frames over one shared
//! serving pool.
//!
//! Frames arrive periodically at each AP, cross the fronthaul, queue at
//! the chosen data-center server (QPU or CPU pool), and are scored
//! against their radio deadline on completion (including the return
//! fronthaul hop for the ACK/feedback — or, for a downlink stream, the
//! precoded samples heading back to the radio head). The simulation
//! answers §7's deployment question: with today's QPU overheads nothing
//! meets a deadline; with an integrated device, QA decoding fits even
//! Wi-Fi budgets for problems that parallelize on-chip. A full-duplex
//! cell is two [`AccessPoint`]s sharing an `id` with opposite
//! [`JobDirection`](crate::qpu::JobDirection)s; their session keys
//! never alias because every arm rekeys the synthetic channel hash by
//! direction.

use crate::broker::{Broker, JobState, UserJob};
use crate::cpu::CpuPool;
use crate::fault::ServeError;
use crate::hybrid::HybridServer;
use crate::qpu::QpuServer;
use crate::sched::{BatchScheduler, SchedConfig};
use crate::serve::{Job, Priority, ResilientServer, ServeRung};
use crate::topology::{AccessPoint, FronthaulConfig};
use quamax_telemetry::Telemetry;

/// The brokered serving stack: a [`ResilientServer`] pool behind the
/// [`Broker`] + [`BatchScheduler`] scheduling subsystem.
pub struct BrokeredServer {
    /// The worker pool.
    pub server: ResilientServer,
    /// The scheduling policy and price book.
    pub config: SchedConfig,
}

/// Which server a simulation dispatches to.
pub enum Server {
    /// The quantum annealer.
    Qpu(QpuServer),
    /// The classical pool.
    Cpu(CpuPool),
    /// Classical-first with per-AP quantum fallback (the HotNets '20
    /// routing structure; decode-level counterpart:
    /// `quamax_core::detect::HybridDetector`).
    Hybrid(HybridServer),
    /// The fault-tolerant serving layer: a QPU worker pool behind
    /// retry/breaker/shedding guardrails with injected faults (boxed:
    /// the pool + ledger dwarf the other variants).
    Resilient(Box<ResilientServer>),
    /// The scheduling subsystem over the resilient pool: broker
    /// admission, deadline-aware batching, policy routing.
    Brokered(Box<BrokeredServer>),
}

/// How a frame's decode ended.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FrameOutcome {
    /// Decoded (possibly after retries or down the escalation ladder).
    Served {
        /// QPU attempts consumed.
        attempts: u32,
        /// The rung that produced the answer.
        rung: ServeRung,
    },
    /// Shed by admission control — recorded, deadline scored as
    /// missed.
    Shed,
    /// Failed with a classified error after the guardrails gave up.
    Failed,
}

impl FrameOutcome {
    /// `true` when the frame produced an answer.
    pub fn is_served(&self) -> bool {
        matches!(self, FrameOutcome::Served { .. })
    }
}

/// One decoded frame's fate.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameRecord {
    /// Originating AP.
    pub ap_id: usize,
    /// Arrival time at the AP antenna, µs.
    pub arrival_us: f64,
    /// Total latency from arrival to feedback availability at the AP
    /// (infinite for shed/failed frames — no feedback ever arrives).
    pub latency_us: f64,
    /// Whether the radio deadline was met.
    pub met_deadline: bool,
    /// How the decode ended.
    pub outcome: FrameOutcome,
}

/// Aggregate results of one simulation run.
///
/// Derives `PartialEq`: two runs are comparable frame for frame, which
/// is what the fault-injection determinism and zero-fault bit-identity
/// tests assert.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Per-frame records in completion order.
    pub frames: Vec<FrameRecord>,
}

impl SimReport {
    /// Fraction of frames meeting their deadline (shed and failed
    /// frames count as missed).
    pub fn deadline_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.met_deadline).count() as f64 / self.frames.len() as f64
    }

    /// Worst-case *served* frame latency, µs.
    pub fn max_latency_us(&self) -> f64 {
        self.frames
            .iter()
            .filter(|f| f.outcome.is_served())
            .map(|f| f.latency_us)
            .fold(0.0, f64::max)
    }

    /// Mean *served* frame latency, µs.
    pub fn mean_latency_us(&self) -> f64 {
        let served: Vec<f64> = self
            .frames
            .iter()
            .filter(|f| f.outcome.is_served())
            .map(|f| f.latency_us)
            .collect();
        if served.is_empty() {
            return 0.0;
        }
        served.iter().sum::<f64>() / served.len() as f64
    }

    /// Frames that produced an answer.
    pub fn served_count(&self) -> usize {
        self.frames.iter().filter(|f| f.outcome.is_served()).count()
    }

    /// Frames shed by admission control.
    pub fn shed_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.outcome == FrameOutcome::Shed)
            .count()
    }

    /// Frames that failed with a classified error.
    pub fn failed_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.outcome == FrameOutcome::Failed)
            .count()
    }
}

/// The synthetic channel-hash schedule shared by the plain-QPU,
/// resilient, and brokered arms of [`Simulation::run`] — and by the
/// [`load`] generator: each cell's channel re-draws once per coherence
/// interval, so the hash is constant within an interval and changes at
/// its boundary.
///
/// [`load`]: crate::load
pub fn synthetic_channel_hash(ap_id: usize, at_dc: f64, coherence_us: f64) -> u64 {
    let interval = (at_dc / coherence_us) as u64;
    (ap_id as u64 ^ interval)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(interval)
}

/// [`synthetic_channel_hash`] with the AP's direction folded in
/// ([`crate::qpu::JobDirection::rekey`]): a full-duplex cell's uplink and downlink
/// streams observe the *same* physical channel per coherence interval,
/// but compile different programmed problems from it, so their session
/// keys must never alias.
fn directed_synthetic_hash(ap: &AccessPoint, at_dc: f64, coherence_us: f64) -> u64 {
    ap.direction
        .rekey(synthetic_channel_hash(ap.id, at_dc, coherence_us))
}

/// A single-attempt success on `rung` — what the plain (unguarded)
/// servers emit for every frame.
fn served_once(rung: ServeRung) -> FrameOutcome {
    FrameOutcome::Served { attempts: 1, rung }
}

/// The uplink simulation.
pub struct Simulation {
    aps: Vec<AccessPoint>,
    fronthaul: FronthaulConfig,
    server: Server,
    /// Frame-level metrics sink, propagated into the serving stack by
    /// [`Simulation::with_telemetry`]. Recording observes the run but
    /// never feeds back into it: a telemetry-enabled run's
    /// [`SimReport`] is bit-identical to a disabled one (a tested
    /// contract).
    telemetry: Telemetry,
}

impl Simulation {
    /// Builds a simulation over `aps` dispatching every frame to
    /// `server`.
    pub fn new(aps: Vec<AccessPoint>, fronthaul: FronthaulConfig, server: Server) -> Self {
        assert!(!aps.is_empty(), "need at least one access point");
        Simulation {
            aps,
            fronthaul,
            server,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle, propagating it into the serving
    /// stack (the QPU arm's server directly; the resilient and
    /// brokered arms fan it out to every pool worker).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        match &mut self.server {
            Server::Qpu(q) => q.set_telemetry(telemetry.clone()),
            Server::Resilient(r) => r.set_telemetry(telemetry.clone()),
            Server::Brokered(b) => b.server.set_telemetry(telemetry.clone()),
            Server::Cpu(_) | Server::Hybrid(_) => {}
        }
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The server being driven (post-run inspection: ledgers, fault
    /// counters, breaker trips).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Runs for `horizon_us` of simulated time, generating each AP's
    /// periodic frames and serving them FIFO in global arrival order.
    pub fn run(&mut self, horizon_us: f64) -> SimReport {
        assert!(horizon_us > 0.0, "empty horizon");
        // Generate all arrivals up front (periodic, deterministic),
        // then process in time order — with FIFO servers this is
        // exactly the event-driven schedule.
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        for (idx, ap) in self.aps.iter().enumerate() {
            let mut t = ap.frame_interval_us; // first frame after one interval
            while t <= horizon_us {
                arrivals.push((t, idx));
                t += ap.frame_interval_us;
            }
        }
        arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

        match &mut self.server {
            Server::Qpu(q) => q.reset(),
            Server::Cpu(c) => c.reset(),
            Server::Hybrid(h) => h.reset(),
            Server::Resilient(r) => r.reset(),
            Server::Brokered(b) => b.server.reset(),
        }

        // The brokered arm is event-driven (batch close times interleave
        // with arrivals), so it hands the whole arrival schedule to the
        // scheduler instead of walking it frame by frame.
        if let Server::Brokered(_) = &self.server {
            let report = self.run_brokered(&arrivals);
            self.finish(&report);
            return report;
        }

        let mut report = SimReport::default();
        let hop = self.fronthaul.one_way_latency_us;
        for (arrival, idx) in arrivals {
            let ap = &self.aps[idx];
            let at_dc = arrival + hop;
            let (done_dc, outcome) = match &mut self.server {
                // Keyed by AP: each AP's channel has its own coherence
                // intervals, so programming amortization (when the QPU
                // is configured with `with_coherence`) never crosses
                // sources.
                Server::Qpu(q) => {
                    let done = match q.session_cache().map(|c| c.coherence_us()) {
                        // With a session cache attached, the sim models
                        // each AP's channel re-drawing once per
                        // coherence interval: the synthetic hash is
                        // constant within an interval and changes at
                        // its boundary, so the cache reprograms exactly
                        // when the channel moves.
                        Some(coherence_us) => {
                            let hash = directed_synthetic_hash(ap, at_dc, coherence_us);
                            q.enqueue_channel(
                                at_dc,
                                ap.id,
                                hash,
                                ap.problems_per_frame(),
                                ap.logical_vars(),
                            )
                        }
                        None => q.enqueue_keyed(
                            at_dc,
                            ap.id,
                            ap.problems_per_frame(),
                            ap.logical_vars(),
                        ),
                    };
                    (Some(done), served_once(ServeRung::Qpu))
                }
                Server::Cpu(c) => (
                    Some(c.enqueue(at_dc, ap.problems_per_frame(), ap.users)),
                    served_once(ServeRung::Classical),
                ),
                Server::Hybrid(h) => (
                    Some(h.enqueue_keyed(
                        at_dc,
                        ap.id,
                        ap.problems_per_frame(),
                        ap.users,
                        ap.logical_vars(),
                    )),
                    served_once(ServeRung::Hybrid),
                ),
                Server::Resilient(r) => {
                    // Same synthetic channel-hash scheme as the plain
                    // QPU arm (part of the zero-fault bit-identity
                    // contract), same per-AP session keying.
                    let hash = r
                        .coherence_us()
                        .map(|c| directed_synthetic_hash(ap, at_dc, c));
                    let job = Job {
                        source: ap.id,
                        direction: ap.direction,
                        channel_hash: hash,
                        problems: ap.problems_per_frame(),
                        logical_vars: ap.logical_vars(),
                        users: ap.users,
                        // The decode must finish `hop` before the
                        // radio deadline (the feedback still has to
                        // cross the fronthaul back), and one hop was
                        // already spent getting here.
                        deadline_us: ap.deadline.budget_us() - 2.0 * hop,
                        priority: Priority::Normal,
                    };
                    match r.submit(at_dc, &job) {
                        Ok(s) => (
                            Some(s.done_us),
                            FrameOutcome::Served {
                                attempts: s.attempts,
                                rung: s.rung,
                            },
                        ),
                        Err(ServeError::Shed { .. }) => (None, FrameOutcome::Shed),
                        Err(_) => (None, FrameOutcome::Failed),
                    }
                }
                Server::Brokered(_) => {
                    unreachable!("the brokered arm returned from run_brokered above")
                }
            };
            let (latency, met) = match done_dc {
                Some(done) => {
                    let latency = done + hop - arrival;
                    (latency, latency <= ap.deadline.budget_us())
                }
                None => (f64::INFINITY, false),
            };
            report.frames.push(FrameRecord {
                ap_id: ap.id,
                arrival_us: arrival,
                latency_us: latency,
                met_deadline: met,
                outcome,
            });
        }
        self.finish(&report);
        report
    }

    /// End-of-run telemetry: per-frame latency/outcome series plus the
    /// serving stack's snapshot-time publication. A no-op with a
    /// disabled handle, and purely observational otherwise — called
    /// after the report is final, so it cannot perturb it.
    fn finish(&self, report: &SimReport) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for f in &report.frames {
            let outcome = match f.outcome {
                FrameOutcome::Served { .. } => "served",
                FrameOutcome::Shed => "shed",
                FrameOutcome::Failed => "failed",
            };
            self.telemetry
                .counter_inc("quamax_sim_frames_total", &[("outcome", outcome)]);
            if f.outcome.is_served() {
                let cell = f.ap_id.to_string();
                self.telemetry.observe(
                    "quamax_sim_frame_latency_us",
                    &[("cell", &cell)],
                    f.latency_us,
                );
            }
        }
        self.telemetry
            .gauge_set("quamax_sim_deadline_rate", &[], report.deadline_rate());
        match &self.server {
            Server::Resilient(r) => r.publish_telemetry(),
            Server::Brokered(b) => b.server.publish_telemetry(),
            Server::Qpu(q) => {
                if let Some(cache) = q.session_cache() {
                    cache.publish_telemetry(&self.telemetry, &[]);
                }
            }
            Server::Cpu(_) | Server::Hybrid(_) => {}
        }
    }

    /// The brokered arm: frames become per-cell [`UserJob`]s (same
    /// synthetic channel-hash schedule and deadline accounting as the
    /// resilient arm — part of the Fifo bit-identity contract), flow
    /// through broker admission and the batch scheduler, and come back
    /// as frame records in arrival order.
    fn run_brokered(&mut self, arrivals: &[(f64, usize)]) -> SimReport {
        let hop = self.fronthaul.one_way_latency_us;
        let Server::Brokered(b) = &mut self.server else {
            unreachable!("caller matched the brokered arm");
        };
        let coherence = b.server.coherence_us();
        let jobs: Vec<UserJob> = arrivals
            .iter()
            .map(|&(arrival, idx)| {
                let ap = &self.aps[idx];
                let at_dc = arrival + hop;
                let hash = match coherence {
                    Some(c) => directed_synthetic_hash(ap, at_dc, c),
                    // No session cache: the hash degenerates to a
                    // per-AP constant (enqueue_channel falls back to
                    // keyed dispatch, and batching still coalesces).
                    None => directed_synthetic_hash(ap, 0.0, 1.0),
                };
                UserJob {
                    arrival_us: at_dc,
                    cell: ap.id,
                    direction: ap.direction,
                    channel_hash: hash,
                    problems: ap.problems_per_frame(),
                    logical_vars: ap.logical_vars(),
                    users: ap.users,
                    deadline_us: ap.deadline.budget_us() - 2.0 * hop,
                    priority: Priority::Normal,
                }
            })
            .collect();
        let mut broker = Broker::new();
        let mut sched = BatchScheduler::new(b.config).with_telemetry(self.telemetry.clone());
        let schedule = sched.run(&mut b.server, &mut broker, jobs);
        broker.publish_telemetry(&self.telemetry);
        debug_assert!(broker.drained(), "the scheduler drains every job");
        debug_assert_eq!(b.server.ledger().in_flight(), 0);

        let mut report = SimReport::default();
        for o in &schedule.outcomes {
            let arrival = o.arrival_us - hop;
            let budget = self
                .aps
                .iter()
                .find(|ap| ap.id == o.cell)
                .expect("outcome cells come from the AP list")
                .deadline
                .budget_us();
            let (latency, met, outcome) = match o.state {
                JobState::Completed => {
                    let latency = o.done_us + hop - arrival;
                    (
                        latency,
                        latency <= budget,
                        FrameOutcome::Served {
                            attempts: o.attempts,
                            rung: o.rung.expect("completed jobs have a rung"),
                        },
                    )
                }
                JobState::Shed => (f64::INFINITY, false, FrameOutcome::Shed),
                _ => (f64::INFINITY, false, FrameOutcome::Failed),
            };
            report.frames.push(FrameRecord {
                ap_id: o.cell,
                arrival_us: arrival,
                latency_us: latency,
                met_deadline: met,
                outcome,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPolicy;
    use crate::qpu::{JobDirection, QpuOverheads};
    use crate::topology::Deadline;
    use quamax_wireless::Modulation;

    fn wifi_ap(id: usize, interval_us: f64) -> AccessPoint {
        AccessPoint {
            id,
            users: 16,
            modulation: Modulation::Bpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: interval_us,
            deadline: Deadline::WifiAck,
        }
    }

    #[test]
    fn integrated_qpu_meets_wifi_deadlines() {
        // 16-var BPSK problems tile ~24×: 50 subcarriers ≈ 3 batches of
        // 5 anneals × 2 µs = 30 µs? With 5 anneals per problem:
        // 3 × 5 × 2 = 30 µs < 30 µs budget − 10 µs fronthaul? Use 4
        // anneals to leave headroom.
        let server = Server::Qpu(QpuServer::new(QpuOverheads::integrated(), 2.0, 3));
        let mut sim = Simulation::new(
            vec![wifi_ap(0, 1_000.0)],
            FronthaulConfig {
                one_way_latency_us: 2.0,
            },
            server,
        );
        let report = sim.run(20_000.0);
        assert_eq!(report.frames.len(), 20);
        assert_eq!(
            report.deadline_rate(),
            1.0,
            "max latency {}",
            report.max_latency_us()
        );
    }

    #[test]
    fn current_overheads_miss_every_wireless_deadline() {
        // §7: "QuAMax cannot be deployed today".
        let server = Server::Qpu(QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 3));
        let mut sim = Simulation::new(
            vec![AccessPoint {
                deadline: Deadline::Wcdma,
                ..wifi_ap(0, 100_000.0)
            }],
            FronthaulConfig::default(),
            server,
        );
        let report = sim.run(500_000.0);
        assert!(!report.frames.is_empty());
        assert_eq!(report.deadline_rate(), 0.0);
    }

    #[test]
    fn coherence_batching_recovers_deadlines_reprogramming_misses() {
        // A hypothetical part-way-integrated device: programming costs
        // 80 µs per job. Reprogramming every frame busts a 100 µs
        // budget; a 50-frame compiled session meets it on every frame
        // after the first (> 90% of frames over the horizon).
        let overheads = QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 80.0,
            readout_per_anneal_us: 0.0,
        };
        let ap = || wifi_ap(0, 1_000.0); // Wi-Fi ACK budget: ~30 µs
        let fronthaul = FronthaulConfig {
            one_way_latency_us: 2.0,
        };
        let run = |server: QpuServer| {
            let mut sim = Simulation::new(vec![ap()], fronthaul, Server::Qpu(server));
            sim.run(50_000.0)
        };
        let per_frame = run(QpuServer::new(overheads, 2.0, 3));
        let sessions = run(QpuServer::new(overheads, 2.0, 3).with_coherence(50));
        assert_eq!(per_frame.deadline_rate(), 0.0, "80 µs per frame busts ACK");
        assert!(
            sessions.deadline_rate() > 0.9,
            "session frames after the boundary meet the ACK: rate {}",
            sessions.deadline_rate()
        );
    }

    #[test]
    fn overloaded_server_builds_backlog() {
        // Frames every 10 µs against ~30 µs service: latency must grow.
        let server = Server::Qpu(QpuServer::new(QpuOverheads::integrated(), 2.0, 3));
        let mut sim = Simulation::new(vec![wifi_ap(0, 10.0)], FronthaulConfig::default(), server);
        let report = sim.run(2_000.0);
        let first = report.frames.first().unwrap().latency_us;
        let last = report.frames.last().unwrap().latency_us;
        assert!(last > 3.0 * first, "backlog did not grow: {first} → {last}");
    }

    #[test]
    fn cpu_pool_meets_lte_but_not_wifi_for_large_mimo() {
        // 48-user ZF on 8 cores: ~0.1–1 ms per frame — fine for LTE's
        // 3 ms, hopeless for a Wi-Fi ACK.
        let ap = AccessPoint {
            id: 0,
            users: 48,
            modulation: Modulation::Bpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 2_000.0,
            deadline: Deadline::Lte,
        };
        let mut wifi_variant = ap.clone();
        wifi_variant.deadline = Deadline::WifiAck;

        let mut sim_lte = Simulation::new(
            vec![ap],
            FronthaulConfig::default(),
            Server::Cpu(CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        );
        assert_eq!(sim_lte.run(20_000.0).deadline_rate(), 1.0);

        let mut sim_wifi = Simulation::new(
            vec![wifi_variant],
            FronthaulConfig::default(),
            Server::Cpu(CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        );
        assert_eq!(sim_wifi.run(20_000.0).deadline_rate(), 0.0);
    }

    #[test]
    fn session_cache_in_sim_amortizes_like_frame_counted_coherence() {
        // The channel-hash cache and the frame-counted model describe
        // the same physics (one programming per coherence interval per
        // AP): with 1 ms frames and a 30 ms coherence time = 30 frames,
        // both servers should miss only the boundary frames of a
        // budget that amortized frames meet.
        let overheads = QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 80.0,
            readout_per_anneal_us: 0.0,
        };
        let fronthaul = FronthaulConfig {
            one_way_latency_us: 2.0,
        };
        let run = |server: QpuServer| {
            Simulation::new(vec![wifi_ap(0, 1_000.0)], fronthaul, Server::Qpu(server)).run(60_000.0)
        };
        let per_frame = run(QpuServer::new(overheads, 2.0, 3));
        let cached = run(QpuServer::new(overheads, 2.0, 3).with_session_cache(30_000.0));
        let counted = run(QpuServer::new(overheads, 2.0, 3).with_coherence(30));
        assert_eq!(per_frame.deadline_rate(), 0.0, "80 µs per frame busts ACK");
        assert!(
            cached.deadline_rate() > 0.9,
            "cached sessions should meet most frames: {}",
            cached.deadline_rate()
        );
        assert!((cached.deadline_rate() - counted.deadline_rate()).abs() < 0.05);
    }

    #[test]
    fn hybrid_server_recovers_deadlines_neither_pure_server_meets() {
        // A 30-user LTE cell: the sphere pool alone blows the 3 ms HARQ
        // budget (Table 1's "unfeasible" 1,900-node regime), and a
        // partly-integrated QPU decoding *all* 50 subcarriers per frame
        // also misses. Classical-first with a 10% quantum fallback —
        // ZF handles the easy problems, the QPU only the flagged tail —
        // fits the budget.
        let ap = AccessPoint {
            id: 0,
            users: 30,
            modulation: Modulation::Bpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 4_000.0,
            deadline: Deadline::Lte,
        };
        let qpu = || {
            QpuServer::new(
                QpuOverheads {
                    preprocessing_us: 0.0,
                    programming_us: 500.0,
                    readout_per_anneal_us: 10.0,
                },
                2.0,
                20,
            )
            .with_coherence(30)
        };
        let cpu = || {
            CpuPool::new(
                2,
                CpuPolicy::Sphere {
                    expected_nodes: 1_900,
                },
            )
        };
        let zf_pool = || {
            CpuPool::new(
                4,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )
        };
        let run = |server: Server| {
            Simulation::new(vec![ap.clone()], FronthaulConfig::default(), server).run(40_000.0)
        };
        let sphere_only = run(Server::Cpu(cpu()));
        let qpu_only = run(Server::Qpu(qpu()));
        let hybrid = run(Server::Hybrid(crate::hybrid::HybridServer::new(
            zf_pool(),
            qpu(),
            0.1,
        )));
        assert!(
            sphere_only.deadline_rate() < 0.5,
            "sphere pool should miss: rate {}",
            sphere_only.deadline_rate()
        );
        assert!(
            qpu_only.deadline_rate() < 0.5,
            "full-frame QPU should miss: rate {}",
            qpu_only.deadline_rate()
        );
        assert!(
            hybrid.deadline_rate() > 0.9,
            "hybrid should fit: rate {}",
            hybrid.deadline_rate()
        );
    }

    #[test]
    fn multiple_aps_share_the_server() {
        let server = Server::Qpu(QpuServer::new(QpuOverheads::integrated(), 2.0, 3));
        let mut sim = Simulation::new(
            vec![wifi_ap(0, 500.0), wifi_ap(1, 700.0)],
            FronthaulConfig::default(),
            server,
        );
        let report = sim.run(10_000.0);
        let ap0 = report.frames.iter().filter(|f| f.ap_id == 0).count();
        let ap1 = report.frames.iter().filter(|f| f.ap_id == 1).count();
        assert_eq!(ap0, 20);
        assert_eq!(ap1, 14);
        assert!(report.mean_latency_us() > 0.0);
    }

    #[test]
    fn resilient_arm_matches_plain_qpu_when_quiet() {
        use crate::fault::FaultPlan;
        use crate::serve::{Guardrails, ResilientServer};
        let overheads = QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 80.0,
            readout_per_anneal_us: 0.0,
        };
        let qpu = || QpuServer::new(overheads, 2.0, 3).with_session_cache(30_000.0);
        let classical = CpuPool::new(
            8,
            CpuPolicy::ZeroForcing {
                vectors_per_channel: 1,
            },
        );
        let fronthaul = FronthaulConfig {
            one_way_latency_us: 2.0,
        };
        let plain =
            Simulation::new(vec![wifi_ap(0, 1_000.0)], fronthaul, Server::Qpu(qpu())).run(60_000.0);
        let guarded = Simulation::new(
            vec![wifi_ap(0, 1_000.0)],
            fronthaul,
            Server::Resilient(Box::new(ResilientServer::new(
                vec![qpu()],
                classical,
                FaultPlan::quiet(11),
                Guardrails::on(),
            ))),
        )
        .run(60_000.0);
        assert_eq!(plain, guarded, "guardrails must price zero in fair weather");
    }

    #[test]
    fn resilient_arm_records_outcomes_and_conserves_frames() {
        use crate::fault::{FaultPlan, FaultRates};
        use crate::serve::{Guardrails, ResilientServer};
        let qpu = || QpuServer::new(QpuOverheads::integrated(), 2.0, 3);
        let classical = || {
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )
        };
        // LTE budget (3 ms): a funded retry or an escalated decode
        // still lands in time, so recovery shows up in the deadline
        // rate (a 30 µs Wi-Fi ACK leaves no room to retry at all).
        let ap = AccessPoint {
            deadline: Deadline::Lte,
            ..wifi_ap(0, 1_000.0)
        };
        let run = |guardrails: Guardrails| {
            let server = ResilientServer::new(
                vec![qpu(), qpu()],
                classical(),
                FaultPlan::new(17, FaultRates::uniform(0.05)),
                guardrails,
            );
            Simulation::new(
                vec![ap.clone()],
                FronthaulConfig {
                    one_way_latency_us: 2.0,
                },
                Server::Resilient(Box::new(server)),
            )
            .run(100_000.0)
        };
        let guarded = run(Guardrails::on());
        let unguarded = run(Guardrails::off());
        for report in [&guarded, &unguarded] {
            assert_eq!(report.frames.len(), 100);
            assert_eq!(
                report.served_count() + report.shed_count() + report.failed_count(),
                report.frames.len(),
                "every frame has a recorded fate"
            );
        }
        // 25% any-fault rate over 100 frames: some first attempts fail
        // in both configs. Unguarded, those become Failed frames;
        // guarded, they are retried or escalated.
        assert!(unguarded.failed_count() > 0, "faults must fire unguarded");
        assert_eq!(guarded.failed_count(), 0, "guardrails recover every frame");
        assert!(guarded.deadline_rate() > unguarded.deadline_rate());
    }

    #[test]
    fn brokered_fifo_arm_matches_resilient_arm_bit_for_bit() {
        use crate::fault::FaultPlan;
        use crate::sched::{Policy, SchedConfig};
        use crate::serve::{Guardrails, ResilientServer};
        let qpu =
            || QpuServer::new(QpuOverheads::integrated(), 2.0, 3).with_session_cache(30_000.0);
        let classical = || {
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )
        };
        let pool = || {
            ResilientServer::new(
                vec![qpu(), qpu()],
                classical(),
                FaultPlan::quiet(23),
                Guardrails::on(),
            )
        };
        let fronthaul = FronthaulConfig {
            one_way_latency_us: 2.0,
        };
        let aps = || vec![wifi_ap(0, 500.0), wifi_ap(1, 700.0)];
        let resilient =
            Simulation::new(aps(), fronthaul, Server::Resilient(Box::new(pool()))).run(30_000.0);
        let brokered = Simulation::new(
            aps(),
            fronthaul,
            Server::Brokered(Box::new(BrokeredServer {
                server: pool(),
                config: SchedConfig::new(Policy::Fifo, 24),
            })),
        )
        .run(30_000.0);
        assert_eq!(
            resilient, brokered,
            "Fifo brokering must replay unbrokered submission bit for bit"
        );
    }

    #[test]
    fn brokered_batching_serves_multi_cell_load_with_coalescing() {
        use crate::fault::FaultPlan;
        use crate::sched::{Policy, SchedConfig};
        use crate::serve::{Guardrails, ResilientServer};
        let qpu =
            || QpuServer::new(QpuOverheads::integrated(), 2.0, 3).with_session_cache(30_000.0);
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            ),
            FaultPlan::quiet(31),
            Guardrails::on(),
        );
        let aps = vec![
            AccessPoint {
                deadline: Deadline::Lte,
                ..wifi_ap(0, 400.0)
            },
            AccessPoint {
                deadline: Deadline::Lte,
                ..wifi_ap(1, 400.0)
            },
        ];
        let mut sim = Simulation::new(
            aps,
            FronthaulConfig {
                one_way_latency_us: 2.0,
            },
            Server::Brokered(Box::new(BrokeredServer {
                server,
                config: SchedConfig::new(Policy::DeadlineBatch, 8),
            })),
        );
        let report = sim.run(20_000.0);
        assert_eq!(report.frames.len(), 100);
        assert_eq!(
            report.served_count() + report.shed_count() + report.failed_count(),
            report.frames.len(),
            "every frame has a recorded fate"
        );
        assert!(
            report.deadline_rate() > 0.9,
            "LTE slack leaves room to batch: rate {}",
            report.deadline_rate()
        );
        let Server::Brokered(b) = sim.server() else {
            unreachable!();
        };
        assert!(b.server.ledger().conserved());
        assert_eq!(b.server.ledger().in_flight(), 0);
    }

    #[test]
    fn full_duplex_cell_serves_both_directions_from_one_pool() {
        use crate::fault::FaultPlan;
        use crate::sched::{Policy, SchedConfig};
        use crate::serve::{Guardrails, ResilientServer};
        // One cell, both directions: an uplink detection stream and a
        // downlink VPP stream share the cell id (and hence the same
        // physical channel schedule) but carry opposite directions, so
        // the scheduler may never coalesce them into one batch and the
        // session cache must hold two distinct compiled sessions per
        // coherence interval.
        let qpu =
            || QpuServer::new(QpuOverheads::integrated(), 2.0, 3).with_session_cache(30_000.0);
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            ),
            FaultPlan::quiet(41),
            Guardrails::on(),
        );
        let uplink = AccessPoint {
            deadline: Deadline::Lte,
            ..wifi_ap(0, 400.0)
        };
        let downlink = AccessPoint {
            direction: JobDirection::Downlink,
            ..uplink.clone()
        };
        assert_ne!(uplink.logical_vars(), downlink.logical_vars());
        let mut sim = Simulation::new(
            vec![uplink, downlink],
            FronthaulConfig {
                one_way_latency_us: 2.0,
            },
            Server::Brokered(Box::new(BrokeredServer {
                server,
                config: SchedConfig::new(Policy::DeadlineBatch, 8),
            })),
        );
        let report = sim.run(20_000.0);
        // Both streams emit 50 frames and every frame has a fate.
        assert_eq!(report.frames.len(), 100);
        assert_eq!(
            report.served_count() + report.shed_count() + report.failed_count(),
            report.frames.len(),
        );
        assert!(
            report.deadline_rate() >= 0.85,
            "full-duplex LTE load should still fit: rate {}",
            report.deadline_rate()
        );
        let Server::Brokered(b) = sim.server() else {
            unreachable!();
        };
        assert!(b.server.ledger().conserved());
        assert_eq!(b.server.ledger().in_flight(), 0);
    }

    #[test]
    fn report_statistics_on_empty_run() {
        let report = SimReport::default();
        assert_eq!(report.deadline_rate(), 0.0);
        assert_eq!(report.max_latency_us(), 0.0);
        assert_eq!(report.mean_latency_us(), 0.0);
    }
}
