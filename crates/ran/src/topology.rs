//! C-RAN topology: access points, fronthaul, radio deadlines.

use crate::qpu::JobDirection;
use quamax_wireless::Modulation;

/// Physical-layer feedback deadlines by radio technology (§1):
/// the receiver must finish decoding before the sender expects its
/// ACK / incremental-redundancy feedback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deadline {
    /// Wi-Fi: data-to-ACK spacing, tens of µs.
    WifiAck,
    /// 4G LTE HARQ: 3 ms.
    Lte,
    /// WCDMA: 10 ms.
    Wcdma,
}

impl Deadline {
    /// The budget in microseconds.
    pub fn budget_us(self) -> f64 {
        match self {
            // SIFS-scale: the paper says "on the order of tens of µs".
            Deadline::WifiAck => 30.0,
            Deadline::Lte => 3_000.0,
            Deadline::Wcdma => 10_000.0,
        }
    }
}

/// One access point's frame stream in one direction: uplink frames
/// need detection, downlink frames need precoding. A full-duplex cell
/// is modeled as two `AccessPoint`s sharing an `id` with opposite
/// `direction`s.
#[derive(Clone, Debug)]
pub struct AccessPoint {
    /// Identifier (unique per cell within a simulation; an uplink and
    /// a downlink stream of the same cell share it).
    pub id: usize,
    /// Concurrent single-antenna users (= AP antennas, `Nr = Nt`).
    pub users: usize,
    /// Modulation in use.
    pub modulation: Modulation,
    /// Uplink detection (the default) or downlink precoding.
    pub direction: JobDirection,
    /// OFDM subcarriers per frame — each needs its own ML decode (§3.2)
    /// or VPP precode.
    pub subcarriers: usize,
    /// Frame inter-arrival time at this AP, µs.
    pub frame_interval_us: f64,
    /// The radio technology's processing deadline.
    pub deadline: Deadline,
}

impl AccessPoint {
    /// Logical Ising variables per subcarrier problem.
    ///
    /// Uplink detection reduces to `Nt·log₂|O|` variables; downlink
    /// VPP expands each of the `2·Nu` real perturbation dimensions
    /// into 1 magnitude bit + 1 sign bit (the `t = 1` encoding the
    /// serving benches use), i.e. `4·Nu` variables.
    pub fn logical_vars(&self) -> usize {
        match self.direction {
            JobDirection::Uplink => self.users * self.modulation.bits_per_symbol(),
            JobDirection::Downlink => 4 * self.users,
        }
    }

    /// Problems per frame (one per subcarrier), either direction.
    pub fn problems_per_frame(&self) -> usize {
        self.subcarriers
    }
}

/// Fronthaul link model: AP ↔ data-center latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FronthaulConfig {
    /// One-way latency, µs. The paper argues this is small over fiber
    /// or mm-wave at metro scale (§7); 5 µs ≈ 1 km of fiber.
    pub one_way_latency_us: f64,
}

impl Default for FronthaulConfig {
    fn default() -> Self {
        FronthaulConfig {
            one_way_latency_us: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_match_paper() {
        assert!(Deadline::WifiAck.budget_us() < 100.0);
        assert_eq!(Deadline::Lte.budget_us(), 3_000.0);
        assert_eq!(Deadline::Wcdma.budget_us(), 10_000.0);
    }

    #[test]
    fn ap_arithmetic() {
        let ap = AccessPoint {
            id: 0,
            users: 14,
            modulation: Modulation::Qpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 1_000.0,
            deadline: Deadline::Lte,
        };
        assert_eq!(ap.logical_vars(), 28);
        assert_eq!(ap.problems_per_frame(), 50);
        // The downlink twin precodes 2·14 real dims × 2 bits each.
        let down = AccessPoint {
            direction: JobDirection::Downlink,
            ..ap
        };
        assert_eq!(down.logical_vars(), 56);
        assert_eq!(down.problems_per_frame(), 50);
    }

    #[test]
    fn default_fronthaul_is_metro_scale() {
        assert!(FronthaulConfig::default().one_way_latency_us <= 10.0);
    }
}
