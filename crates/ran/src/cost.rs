//! The NextG cost/power model: what a decode costs in dollars and
//! joules on each rung of the serving ladder.
//!
//! Follows the feasibility accounting of Kasi, Singh, Vook & Kim,
//! *"A Cost and Power Feasibility Analysis of Quantum Annealing for
//! NextG Cellular Wireless Networks"* (arXiv:2109.01465): a quantum
//! annealer is priced as amortized capital (machine cost over service
//! lifetime) plus wall power (a dilution refrigerator draws its ~25 kW
//! almost independently of duty cycle), a classical server likewise at
//! commodity prices. Dividing the resulting $/µs and W by achieved
//! decode throughput yields the paper's headline metrics — $/decode
//! and W/decode — and inverting utilization yields the
//! annealers-per-datacenter sizing rule.
//!
//! Default parameters ([`CostModel::nextg_baseline`]):
//!
//! | parameter | value | source (arXiv:2109.01465) |
//! |---|---|---|
//! | QA machine capex | $15 M | §III quoted system price |
//! | QA service lifetime | 5 years | §III amortization window |
//! | QA wall power | 25 kW | §IV cryostat + control draw |
//! | CPU server capex | $10 k | §III commodity server |
//! | CPU service lifetime | 5 years | §III amortization window |
//! | CPU wall power | 700 W | §IV loaded server draw |
//! | energy price | $0.12 / kWh | §III industrial tariff |
//!
//! The numbers are model inputs, not measurements — the struct is
//! plain-old-data precisely so sensitivity sweeps can replace any of
//! them. What the scheduler consumes is only the *ratio* structure:
//! QPU microseconds are orders of magnitude more expensive than CPU
//! microseconds today, so a cost-aware policy routes slack-rich
//! batches to the classical floor and spends annealer time on the
//! deadline-tight tail.

use crate::serve::ServeRung;

const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
const US_PER_HOUR: f64 = 3600.0 * 1e6;

/// What one decode (or one batch) cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecodeCost {
    /// Dollars: amortized capex + energy.
    pub usd: f64,
    /// Energy, joules (wall power × service time).
    pub joules: f64,
}

impl DecodeCost {
    /// Element-wise sum (accumulating a run's total bill).
    pub fn plus(self, other: DecodeCost) -> DecodeCost {
        DecodeCost {
            usd: self.usd + other.usd,
            joules: self.joules + other.joules,
        }
    }
}

/// The datacenter price book.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Quantum annealer machine cost, $.
    pub qpu_capex_usd: f64,
    /// Annealer amortization window, years.
    pub qpu_lifetime_years: f64,
    /// Annealer wall power (cryostat + control), W — drawn whether or
    /// not the chip is annealing.
    pub qpu_power_w: f64,
    /// Classical server cost, $.
    pub cpu_capex_usd: f64,
    /// Server amortization window, years.
    pub cpu_lifetime_years: f64,
    /// Loaded server wall power, W.
    pub cpu_power_w: f64,
    /// Electricity price, $/kWh.
    pub energy_usd_per_kwh: f64,
}

impl CostModel {
    /// The Kasi et al. baseline (table in the module docs).
    pub fn nextg_baseline() -> Self {
        CostModel {
            qpu_capex_usd: 15_000_000.0,
            qpu_lifetime_years: 5.0,
            qpu_power_w: 25_000.0,
            cpu_capex_usd: 10_000.0,
            cpu_lifetime_years: 5.0,
            cpu_power_w: 700.0,
            energy_usd_per_kwh: 0.12,
        }
    }

    /// Amortized + energy price of one QPU microsecond, $.
    pub fn qpu_usd_per_us(&self) -> f64 {
        let capex_per_us = self.qpu_capex_usd / (self.qpu_lifetime_years * SECONDS_PER_YEAR * 1e6);
        let energy_per_us = self.qpu_power_w / 1_000.0 * self.energy_usd_per_kwh / US_PER_HOUR;
        capex_per_us + energy_per_us
    }

    /// Amortized + energy price of one CPU-server microsecond, $.
    pub fn cpu_usd_per_us(&self) -> f64 {
        let capex_per_us = self.cpu_capex_usd / (self.cpu_lifetime_years * SECONDS_PER_YEAR * 1e6);
        let energy_per_us = self.cpu_power_w / 1_000.0 * self.energy_usd_per_kwh / US_PER_HOUR;
        capex_per_us + energy_per_us
    }

    /// Wall power of the rung that served a job, W. The hybrid rung is
    /// classical-first by construction, so it is billed at server
    /// prices — its quantum fallback shows up as [`ServeRung::Qpu`]
    /// service elsewhere in the ledger, never double-billed here.
    pub fn rung_power_w(&self, rung: ServeRung) -> f64 {
        match rung {
            ServeRung::Qpu => self.qpu_power_w,
            ServeRung::Hybrid | ServeRung::Classical => self.cpu_power_w,
        }
    }

    /// Price of `service_us` of busy time on `rung`.
    pub fn rung_cost(&self, rung: ServeRung, service_us: f64) -> DecodeCost {
        let usd_per_us = match rung {
            ServeRung::Qpu => self.qpu_usd_per_us(),
            ServeRung::Hybrid | ServeRung::Classical => self.cpu_usd_per_us(),
        };
        DecodeCost {
            usd: usd_per_us * service_us,
            joules: self.rung_power_w(rung) * service_us / 1e6,
        }
    }

    /// Annealers a datacenter needs to carry `offered_qpu_us_per_s`
    /// microseconds of annealer busy-time per wall-clock second at
    /// `utilization_target` (0 < target ≤ 1): Kasi et al.'s sizing
    /// rule, `ceil(offered utilization / target)`. Always at least 1 —
    /// a datacenter in this model owns an annealer even when lightly
    /// loaded.
    ///
    /// # Panics
    /// Panics when the target is outside `(0, 1]`.
    pub fn annealers_per_datacenter(
        &self,
        offered_qpu_us_per_s: f64,
        utilization_target: f64,
    ) -> usize {
        assert!(
            utilization_target > 0.0 && utilization_target <= 1.0,
            "utilization target must be in (0, 1]"
        );
        let busy_fraction = offered_qpu_us_per_s / 1e6;
        ((busy_fraction / utilization_target).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpu_microseconds_cost_orders_of_magnitude_more_than_cpu() {
        let m = CostModel::nextg_baseline();
        let ratio = m.qpu_usd_per_us() / m.cpu_usd_per_us();
        assert!(
            ratio > 100.0,
            "the whole cost-aware policy rests on this gap: ratio {ratio}"
        );
    }

    #[test]
    fn rung_cost_scales_linearly_and_bills_hybrid_as_classical() {
        let m = CostModel::nextg_baseline();
        let one = m.rung_cost(ServeRung::Qpu, 100.0);
        let two = m.rung_cost(ServeRung::Qpu, 200.0);
        assert!((two.usd - 2.0 * one.usd).abs() < 1e-12);
        assert!((two.joules - 2.0 * one.joules).abs() < 1e-12);
        assert_eq!(
            m.rung_cost(ServeRung::Hybrid, 50.0),
            m.rung_cost(ServeRung::Classical, 50.0)
        );
    }

    #[test]
    fn qpu_energy_matches_hand_calculation() {
        let m = CostModel::nextg_baseline();
        // 25 kW for 1 s of service = 25 kJ.
        let c = m.rung_cost(ServeRung::Qpu, 1e6);
        assert!((c.joules - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn datacenter_sizing_rounds_up_and_floors_at_one() {
        let m = CostModel::nextg_baseline();
        // 1.5 s of annealer busy time per second at 80% target → 2.
        assert_eq!(m.annealers_per_datacenter(1.5e6, 0.8), 2);
        // A trickle still owns one machine.
        assert_eq!(m.annealers_per_datacenter(10.0, 0.8), 1);
        // Exactly at target: no rounding up.
        assert_eq!(m.annealers_per_datacenter(0.8e6, 0.8), 1);
    }
}
