//! Coded goodput: the BER world and the queueing world, joined — and
//! the deadline-aware purchase of **IDD iterations**.
//!
//! The timing simulation ([`crate::sim`]) answers *"did the frame come
//! back before its deadline?"*; the soft-output coded pipeline
//! (`quamax_core::coded`) answers *"did the frame decode cleanly?"*.
//! The NextG feasibility framing (Kasi et al., arXiv:2109.01465) says
//! the deployment question is the conjunction — **coded goodput**:
//! payload bits per second that arrive both on time and error-free.
//! This module runs the two simulations over the same frame sequence
//! and reports exactly that, for the hard-input and soft-input decode
//! paths side by side.
//!
//! [`CodedUplink::run_idd`] extends the join to the iterative engine:
//! every detection–decoding iteration beyond the first costs real
//! anneal (reverse-anneal) wall-clock time, so iterations are *bought*
//! per frame out of whatever slack the frame's base latency leaves
//! under its deadline — a frame that arrives with room for two
//! refinement rounds runs them; a frame already at the wire decodes
//! once and ships.

use crate::sim::{SimReport, Simulation};
use quamax_core::coded::IddSpec;
use quamax_core::detect::{DetectError, DetectorKind};
use quamax_core::{CodedFrame, SoftSpec};
use quamax_wireless::Snr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The decode-level half of a coded-uplink study: what each simulated
/// frame carries and how it is detected.
#[derive(Clone)]
pub struct CodedUplink {
    /// Frame geometry (payload, interleaver, channel uses).
    pub frame: CodedFrame,
    /// Detector backend decoding every channel use.
    pub kind: DetectorKind,
    /// Soft-output parameters (LLR scaling and clamp).
    pub spec: SoftSpec,
    /// Operating SNR of the radio link.
    pub snr: Snr,
    /// Seed deriving every frame's payload, channels, and noise.
    pub seed: u64,
}

impl CodedUplink {
    /// Runs the timing simulation for `horizon_us` and decodes every
    /// simulated frame through the coded pipeline, combining deadline
    /// compliance with decode success.
    pub fn run(
        &self,
        sim: &mut Simulation,
        horizon_us: f64,
    ) -> Result<CodedUplinkReport, DetectError> {
        let timing = sim.run(horizon_us);
        let mut report = CodedUplinkReport {
            payload_bits_per_frame: self.frame.payload_len(),
            horizon_us,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (i, record) in timing.frames.iter().enumerate() {
            let payload = self.frame.random_payload(&mut rng);
            let out = self.frame.run(
                &self.kind,
                self.spec,
                self.snr,
                &payload,
                self.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            )?;
            report.frames += 1;
            report.hard_bit_errors += out.hard_errors;
            report.soft_bit_errors += out.soft_errors;
            if out.hard_ok() {
                report.hard_clean_frames += 1;
                if record.met_deadline {
                    report.hard_goodput_frames += 1;
                }
            }
            if out.soft_ok() {
                report.soft_clean_frames += 1;
                if record.met_deadline {
                    report.soft_goodput_frames += 1;
                }
            }
        }
        report.timing = timing;
        Ok(report)
    }

    /// Runs the timing simulation and decodes every simulated frame
    /// through the *iterative* detection–decoding engine, buying each
    /// frame as many iterations as its deadline slack affords
    /// ([`IddBudget::affordable_iters`]) and charging the bought
    /// iterations back onto the frame's latency. The same frame
    /// sequence, payload draws, and per-frame seeds as
    /// [`CodedUplink::run`] under the same `seed`.
    pub fn run_idd(
        &self,
        sim: &mut Simulation,
        horizon_us: f64,
        budget: &IddBudget,
    ) -> Result<CodedIddReport, DetectError> {
        let timing = sim.run(horizon_us);
        let mut report = CodedIddReport {
            payload_bits_per_frame: self.frame.payload_len(),
            horizon_us,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (i, record) in timing.frames.iter().enumerate() {
            let payload = self.frame.random_payload(&mut rng);
            let granted = budget.affordable_iters(record.latency_us);
            let spec = IddSpec {
                max_iters: granted,
                ..budget.idd
            };
            let out = self.frame.run_idd(
                &self.kind,
                self.spec,
                spec,
                self.snr,
                &payload,
                self.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            )?;
            let used = out.iters_run();
            let latency = record.latency_us + (used as f64 - 1.0) * budget.iteration_cost_us;
            let on_time = latency <= budget.deadline_us;
            report.frames += 1;
            report.iterations_granted += granted;
            report.iterations_used += used;
            report.first_pass_bit_errors += out.payload_errors_at(0);
            report.final_bit_errors += out.last().payload_errors;
            if out.payload_errors_at(0) == 0 {
                report.first_pass_clean_frames += 1;
            }
            if out.ok() {
                report.clean_frames += 1;
                if on_time {
                    report.goodput_frames += 1;
                }
            }
            if on_time {
                report.on_time_frames += 1;
            }
        }
        report.timing = timing;
        Ok(report)
    }
}

/// How a [`CodedUplink::run_idd`] buys detection–decoding iterations
/// against the radio deadline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IddBudget {
    /// The iteration engine's parameters; `idd.max_iters` caps what
    /// any frame may buy regardless of slack.
    pub idd: IddSpec,
    /// Wall-clock cost of one extra iteration for one frame, µs:
    /// every channel use re-detected once. For the annealed backend
    /// this is `⌈uses / P_f⌉ · Na · (reverse-anneal cycle + readout)` —
    /// see [`IddBudget::annealed_iteration_cost_us`].
    pub iteration_cost_us: f64,
    /// The radio deadline the slack is measured against, µs (the
    /// simulated APs' own budget; the timing sim scores base latency
    /// against the same number).
    pub deadline_us: f64,
}

impl IddBudget {
    /// A budget buying up to `idd.max_iters` iterations at
    /// `iteration_cost_us` each under `deadline_us`.
    ///
    /// # Panics
    /// Panics unless the cost and deadline are positive.
    pub fn new(idd: IddSpec, iteration_cost_us: f64, deadline_us: f64) -> Self {
        assert!(iteration_cost_us > 0.0, "an iteration costs time");
        assert!(deadline_us > 0.0, "need a positive deadline");
        IddBudget {
            idd,
            iteration_cost_us,
            deadline_us,
        }
    }

    /// The annealed per-frame iteration cost: one reverse-anneal batch
    /// of `anneals` cycles (`cycle_us` wall-clock each, plus per-anneal
    /// `readout_us`) for every on-chip batch of the frame's channel
    /// uses at parallelization factor `parallel_factor`.
    pub fn annealed_iteration_cost_us(
        uses: usize,
        parallel_factor: usize,
        anneals: usize,
        cycle_us: f64,
        readout_us: f64,
    ) -> f64 {
        let batches = uses.div_ceil(parallel_factor.max(1)) as f64;
        batches * anneals as f64 * (cycle_us + readout_us)
    }

    /// Iterations a frame whose base latency is `latency_us` can
    /// afford (≥ 1, ≤ `idd.max_iters`): the first detection pass is
    /// already part of the base latency; each *extra* iteration buys
    /// `iteration_cost_us` out of the remaining slack. A frame that
    /// already missed its deadline gets exactly one pass — more
    /// iterations cannot un-miss it.
    pub fn affordable_iters(&self, latency_us: f64) -> usize {
        let slack = self.deadline_us - latency_us;
        if slack <= 0.0 {
            return 1;
        }
        let extra = (slack / self.iteration_cost_us).floor() as usize;
        (1 + extra).min(self.idd.max_iters).max(1)
    }
}

/// Joint timing × decoding results of one coded-uplink run.
#[derive(Clone, Debug, Default)]
pub struct CodedUplinkReport {
    /// The underlying timing simulation's per-frame records.
    pub timing: SimReport,
    /// Frames simulated (and decoded).
    pub frames: usize,
    /// Payload bits per frame.
    pub payload_bits_per_frame: usize,
    /// Simulated horizon, µs.
    pub horizon_us: f64,
    /// Residual payload bit errors, hard-input Viterbi.
    pub hard_bit_errors: usize,
    /// Residual payload bit errors, soft-input Viterbi.
    pub soft_bit_errors: usize,
    /// Frames the hard path decoded error-free.
    pub hard_clean_frames: usize,
    /// Frames the soft path decoded error-free.
    pub soft_clean_frames: usize,
    /// Frames error-free under the hard path *and* on time.
    pub hard_goodput_frames: usize,
    /// Frames error-free under the soft path *and* on time.
    pub soft_goodput_frames: usize,
}

impl CodedUplinkReport {
    fn ber(&self, errors: usize) -> f64 {
        let bits = self.frames * self.payload_bits_per_frame;
        errors as f64 / bits.max(1) as f64
    }

    /// Residual coded BER of the hard-input path.
    pub fn hard_ber(&self) -> f64 {
        self.ber(self.hard_bit_errors)
    }

    /// Residual coded BER of the soft-input path.
    pub fn soft_ber(&self) -> f64 {
        self.ber(self.soft_bit_errors)
    }

    fn goodput_mbps(&self, frames: usize) -> f64 {
        // bits / µs = Mbit/s.
        (frames * self.payload_bits_per_frame) as f64 / self.horizon_us.max(f64::MIN_POSITIVE)
    }

    /// On-time error-free payload throughput, hard path, Mbit/s.
    pub fn hard_goodput_mbps(&self) -> f64 {
        self.goodput_mbps(self.hard_goodput_frames)
    }

    /// On-time error-free payload throughput, soft path, Mbit/s.
    pub fn soft_goodput_mbps(&self) -> f64 {
        self.goodput_mbps(self.soft_goodput_frames)
    }
}

/// Joint timing × iterative-decoding results of one
/// [`CodedUplink::run_idd`].
#[derive(Clone, Debug, Default)]
pub struct CodedIddReport {
    /// The underlying timing simulation's per-frame records (base
    /// latency, before bought iterations are charged).
    pub timing: SimReport,
    /// Frames simulated (and decoded).
    pub frames: usize,
    /// Payload bits per frame.
    pub payload_bits_per_frame: usize,
    /// Simulated horizon, µs.
    pub horizon_us: f64,
    /// Iterations the deadline slack granted, summed over frames.
    pub iterations_granted: usize,
    /// Iterations actually executed (early exits return unused grant).
    pub iterations_used: usize,
    /// Payload bit errors after iteration 1 (the no-feedback decode).
    pub first_pass_bit_errors: usize,
    /// Payload bit errors after the final bought iteration.
    pub final_bit_errors: usize,
    /// Frames error-free already at iteration 1.
    pub first_pass_clean_frames: usize,
    /// Frames error-free after their final iteration.
    pub clean_frames: usize,
    /// Frames on time once bought iterations are charged.
    pub on_time_frames: usize,
    /// Frames error-free *and* on time — the IDD goodput.
    pub goodput_frames: usize,
}

impl CodedIddReport {
    fn ber(&self, errors: usize) -> f64 {
        let bits = self.frames * self.payload_bits_per_frame;
        errors as f64 / bits.max(1) as f64
    }

    /// Coded BER of the first (no-feedback) pass.
    pub fn first_pass_ber(&self) -> f64 {
        self.ber(self.first_pass_bit_errors)
    }

    /// Coded BER after the bought iterations.
    pub fn final_ber(&self) -> f64 {
        self.ber(self.final_bit_errors)
    }

    /// Mean iterations executed per frame.
    pub fn mean_iterations(&self) -> f64 {
        self.iterations_used as f64 / self.frames.max(1) as f64
    }

    /// On-time error-free payload throughput, Mbit/s.
    pub fn goodput_mbps(&self) -> f64 {
        (self.goodput_frames * self.payload_bits_per_frame) as f64
            / self.horizon_us.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuPolicy, CpuPool};
    use crate::qpu::JobDirection;
    use crate::sim::Server;
    use crate::topology::{AccessPoint, Deadline, FronthaulConfig};
    use quamax_wireless::Modulation;

    fn uplink(snr_db: f64) -> CodedUplink {
        let snr = Snr::from_db(snr_db);
        let spec = SoftSpec::noise_matched(snr, Modulation::Qpsk);
        CodedUplink {
            frame: CodedFrame::new(4, Modulation::Qpsk, 60),
            kind: DetectorKind::mmse(spec.noise_variance),
            spec,
            snr,
            seed: 11,
        }
    }

    fn sim() -> Simulation {
        Simulation::new(
            vec![AccessPoint {
                id: 0,
                users: 4,
                modulation: Modulation::Qpsk,
                direction: JobDirection::Uplink,
                subcarriers: 17,
                frame_interval_us: 2_000.0,
                deadline: Deadline::Lte,
            }],
            FronthaulConfig::default(),
            Server::Cpu(CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        )
    }

    #[test]
    fn goodput_joins_deadlines_and_decoding() {
        // Easy radio (18 dB) + easy deadlines: everything is goodput,
        // both paths.
        let report = uplink(18.0).run(&mut sim(), 20_000.0).unwrap();
        assert_eq!(report.frames, 10);
        assert_eq!(report.timing.deadline_rate(), 1.0);
        assert_eq!(report.soft_goodput_frames, report.frames);
        assert_eq!(report.hard_goodput_frames, report.frames);
        assert_eq!(report.soft_ber(), 0.0);
        // 10 frames × 60 bits over 20 ms = 0.03 Mbit/s.
        assert!((report.soft_goodput_mbps() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn affordable_iters_follows_the_slack() {
        let budget = IddBudget::new(IddSpec::new(4), 100.0, 1_000.0);
        // No slack (or negative): one pass, no matter the cap.
        assert_eq!(budget.affordable_iters(1_000.0), 1);
        assert_eq!(budget.affordable_iters(5_000.0), 1);
        // 250 µs of slack: two extra iterations fit.
        assert_eq!(budget.affordable_iters(750.0), 3);
        // Plenty of slack: capped by the spec.
        assert_eq!(budget.affordable_iters(10.0), 4);
        // The annealed cost model: 30 uses at P_f=24 = 2 batches of
        // 6 anneals × (2 + 0.5) µs.
        let cost = IddBudget::annealed_iteration_cost_us(30, 24, 6, 2.0, 0.5);
        assert!((cost - 2.0 * 6.0 * 2.5).abs() < 1e-12);
    }

    #[test]
    fn tight_deadline_buys_no_iterations() {
        // An iteration costing more than any frame's slack: every
        // frame runs exactly one pass, and the report degenerates to
        // the first-pass numbers.
        let uplink = uplink(0.0);
        let budget = IddBudget::new(IddSpec::new(4), 1e9, 3_000.0);
        let report = uplink.run_idd(&mut sim(), 40_000.0, &budget).unwrap();
        assert!(report.frames >= 20);
        assert_eq!(report.iterations_granted, report.frames);
        assert_eq!(report.iterations_used, report.frames);
        assert!((report.mean_iterations() - 1.0).abs() < 1e-12);
        assert_eq!(report.final_bit_errors, report.first_pass_bit_errors);
        assert!(report.first_pass_bit_errors > 0, "0 dB must leave errors");
    }

    #[test]
    fn slack_buys_iterations_that_fix_frames() {
        // A starved annealed detector at low SNR with a roomy deadline:
        // the slack grants refinement rounds, the reverse-anneal warm
        // starts fix payload bits, and goodput beats the single pass.
        use quamax_anneal::{Annealer, AnnealerConfig, Schedule};
        let snr = Snr::from_db(5.0);
        let spec = SoftSpec::noise_matched(snr, Modulation::Qpsk);
        let uplink = CodedUplink {
            frame: CodedFrame::new(8, Modulation::Qpsk, 114),
            kind: DetectorKind::quamax(
                Annealer::new(AnnealerConfig {
                    sweeps_per_us: 3.0,
                    threads: 1,
                    ..Default::default()
                }),
                quamax_core::DecoderConfig {
                    schedule: Schedule::standard(1.0),
                    ..Default::default()
                },
                6,
            ),
            spec,
            snr,
            seed: 11,
        };
        let mut timing = Simulation::new(
            vec![AccessPoint {
                id: 0,
                users: 8,
                modulation: Modulation::Qpsk,
                direction: JobDirection::Uplink,
                subcarriers: 15,
                frame_interval_us: 4_000.0,
                deadline: Deadline::Lte,
            }],
            FronthaulConfig::default(),
            Server::Cpu(CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        );
        // 100 µs per extra iteration against a 3 ms HARQ budget: room
        // for the full cap on every frame.
        let budget = IddBudget::new(IddSpec::new(3), 100.0, 3_000.0);
        let report = uplink.run_idd(&mut timing, 32_000.0, &budget).unwrap();
        assert!(report.frames >= 8);
        assert!(
            report.mean_iterations() > 1.0,
            "slack should buy iterations: {}",
            report.mean_iterations()
        );
        assert!(
            report.first_pass_bit_errors > 0,
            "the starved detector must leave first-pass errors"
        );
        assert!(
            report.final_bit_errors < report.first_pass_bit_errors,
            "bought iterations should fix bits: {} vs {}",
            report.final_bit_errors,
            report.first_pass_bit_errors
        );
        assert!(report.clean_frames >= report.first_pass_clean_frames);
        assert!(report.goodput_frames <= report.on_time_frames);
    }

    #[test]
    fn soft_decoding_buys_goodput_at_low_snr() {
        // Same arrivals, same deadlines, harsher radio: frames now die
        // to residual bit errors, and the soft path keeps strictly
        // more of them than the hard path — the coded-throughput gap
        // that motivates soft output.
        let report = uplink(0.0).run(&mut sim(), 40_000.0).unwrap();
        assert!(report.frames >= 20);
        assert!(
            report.soft_goodput_frames > report.hard_goodput_frames,
            "soft {} vs hard {} goodput frames",
            report.soft_goodput_frames,
            report.hard_goodput_frames
        );
        assert!(report.soft_ber() < report.hard_ber());
    }
}
