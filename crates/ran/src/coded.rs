//! Coded goodput: the BER world and the queueing world, joined.
//!
//! The timing simulation ([`crate::sim`]) answers *"did the frame come
//! back before its deadline?"*; the soft-output coded pipeline
//! (`quamax_core::coded`) answers *"did the frame decode cleanly?"*.
//! The NextG feasibility framing (Kasi et al., arXiv:2109.01465) says
//! the deployment question is the conjunction — **coded goodput**:
//! payload bits per second that arrive both on time and error-free.
//! This module runs the two simulations over the same frame sequence
//! and reports exactly that, for the hard-input and soft-input decode
//! paths side by side.

use crate::sim::{SimReport, Simulation};
use quamax_core::detect::{DetectError, DetectorKind};
use quamax_core::{CodedFrame, SoftSpec};
use quamax_wireless::Snr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The decode-level half of a coded-uplink study: what each simulated
/// frame carries and how it is detected.
#[derive(Clone)]
pub struct CodedUplink {
    /// Frame geometry (payload, interleaver, channel uses).
    pub frame: CodedFrame,
    /// Detector backend decoding every channel use.
    pub kind: DetectorKind,
    /// Soft-output parameters (LLR scaling and clamp).
    pub spec: SoftSpec,
    /// Operating SNR of the radio link.
    pub snr: Snr,
    /// Seed deriving every frame's payload, channels, and noise.
    pub seed: u64,
}

impl CodedUplink {
    /// Runs the timing simulation for `horizon_us` and decodes every
    /// simulated frame through the coded pipeline, combining deadline
    /// compliance with decode success.
    pub fn run(
        &self,
        sim: &mut Simulation,
        horizon_us: f64,
    ) -> Result<CodedUplinkReport, DetectError> {
        let timing = sim.run(horizon_us);
        let mut report = CodedUplinkReport {
            payload_bits_per_frame: self.frame.payload_len(),
            horizon_us,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (i, record) in timing.frames.iter().enumerate() {
            let payload = self.frame.random_payload(&mut rng);
            let out = self.frame.run(
                &self.kind,
                self.spec,
                self.snr,
                &payload,
                self.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            )?;
            report.frames += 1;
            report.hard_bit_errors += out.hard_errors;
            report.soft_bit_errors += out.soft_errors;
            if out.hard_ok() {
                report.hard_clean_frames += 1;
                if record.met_deadline {
                    report.hard_goodput_frames += 1;
                }
            }
            if out.soft_ok() {
                report.soft_clean_frames += 1;
                if record.met_deadline {
                    report.soft_goodput_frames += 1;
                }
            }
        }
        report.timing = timing;
        Ok(report)
    }
}

/// Joint timing × decoding results of one coded-uplink run.
#[derive(Clone, Debug, Default)]
pub struct CodedUplinkReport {
    /// The underlying timing simulation's per-frame records.
    pub timing: SimReport,
    /// Frames simulated (and decoded).
    pub frames: usize,
    /// Payload bits per frame.
    pub payload_bits_per_frame: usize,
    /// Simulated horizon, µs.
    pub horizon_us: f64,
    /// Residual payload bit errors, hard-input Viterbi.
    pub hard_bit_errors: usize,
    /// Residual payload bit errors, soft-input Viterbi.
    pub soft_bit_errors: usize,
    /// Frames the hard path decoded error-free.
    pub hard_clean_frames: usize,
    /// Frames the soft path decoded error-free.
    pub soft_clean_frames: usize,
    /// Frames error-free under the hard path *and* on time.
    pub hard_goodput_frames: usize,
    /// Frames error-free under the soft path *and* on time.
    pub soft_goodput_frames: usize,
}

impl CodedUplinkReport {
    fn ber(&self, errors: usize) -> f64 {
        let bits = self.frames * self.payload_bits_per_frame;
        errors as f64 / bits.max(1) as f64
    }

    /// Residual coded BER of the hard-input path.
    pub fn hard_ber(&self) -> f64 {
        self.ber(self.hard_bit_errors)
    }

    /// Residual coded BER of the soft-input path.
    pub fn soft_ber(&self) -> f64 {
        self.ber(self.soft_bit_errors)
    }

    fn goodput_mbps(&self, frames: usize) -> f64 {
        // bits / µs = Mbit/s.
        (frames * self.payload_bits_per_frame) as f64 / self.horizon_us.max(f64::MIN_POSITIVE)
    }

    /// On-time error-free payload throughput, hard path, Mbit/s.
    pub fn hard_goodput_mbps(&self) -> f64 {
        self.goodput_mbps(self.hard_goodput_frames)
    }

    /// On-time error-free payload throughput, soft path, Mbit/s.
    pub fn soft_goodput_mbps(&self) -> f64 {
        self.goodput_mbps(self.soft_goodput_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuPolicy, CpuPool};
    use crate::sim::Server;
    use crate::topology::{AccessPoint, Deadline, FronthaulConfig};
    use quamax_wireless::Modulation;

    fn uplink(snr_db: f64) -> CodedUplink {
        let snr = Snr::from_db(snr_db);
        let spec = SoftSpec::noise_matched(snr, Modulation::Qpsk);
        CodedUplink {
            frame: CodedFrame::new(4, Modulation::Qpsk, 60),
            kind: DetectorKind::mmse(spec.noise_variance),
            spec,
            snr,
            seed: 11,
        }
    }

    fn sim() -> Simulation {
        Simulation::new(
            vec![AccessPoint {
                id: 0,
                users: 4,
                modulation: Modulation::Qpsk,
                subcarriers: 17,
                frame_interval_us: 2_000.0,
                deadline: Deadline::Lte,
            }],
            FronthaulConfig::default(),
            Server::Cpu(CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        )
    }

    #[test]
    fn goodput_joins_deadlines_and_decoding() {
        // Easy radio (18 dB) + easy deadlines: everything is goodput,
        // both paths.
        let report = uplink(18.0).run(&mut sim(), 20_000.0).unwrap();
        assert_eq!(report.frames, 10);
        assert_eq!(report.timing.deadline_rate(), 1.0);
        assert_eq!(report.soft_goodput_frames, report.frames);
        assert_eq!(report.hard_goodput_frames, report.frames);
        assert_eq!(report.soft_ber(), 0.0);
        // 10 frames × 60 bits over 20 ms = 0.03 Mbit/s.
        assert!((report.soft_goodput_mbps() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn soft_decoding_buys_goodput_at_low_snr() {
        // Same arrivals, same deadlines, harsher radio: frames now die
        // to residual bit errors, and the soft path keeps strictly
        // more of them than the hard path — the coded-throughput gap
        // that motivates soft output.
        let report = uplink(0.0).run(&mut sim(), 40_000.0).unwrap();
        assert!(report.frames >= 20);
        assert!(
            report.soft_goodput_frames > report.hard_goodput_frames,
            "soft {} vs hard {} goodput frames",
            report.soft_goodput_frames,
            report.hard_goodput_frames
        );
        assert!(report.soft_ber() < report.hard_ber());
    }
}
