//! Seeded, deterministic fault injection for the serving layer, and
//! the classified error taxonomy it surfaces.
//!
//! Real annealer-backed BBUs degrade: chains decohere in storms, the
//! analog control drifts off calibration, programming cycles fail,
//! workers stall on host-side hiccups, and whole workers crash. A
//! [`FaultPlan`] injects exactly those classes into the discrete-event
//! simulation — each with an independent rate, each counted — from a
//! single seed, so any degraded run is reproducible bit for bit.
//!
//! Fault classes map onto real device-layer hooks: a
//! [`FaultClass::ChainBreakStorm`] is what
//! `quamax_anneal::AnnealDegradation::chain_break_storm` does to an
//! actual anneal batch, and a [`FaultClass::IceDrift`] is
//! `IceModel::excursion` (riding `IceModel::scaled`); the
//! [`FaultPlan::degradation`] mapping makes the correspondence
//! executable for callers that run real decodes under injected faults.

use quamax_anneal::AnnealDegradation;
use quamax_core::DetectError;

/// The classes of degradation an annealer-backed serving pool sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Embedding chains decohere en masse during one job's anneals;
    /// the readouts majority-vote to garbage and the job's result is
    /// unusable. Transient — and the failed attempt's best candidate
    /// survives as a `decode_reverse_from` warm start.
    ChainBreakStorm,
    /// The analog control drifts off its calibration point for one
    /// job: every programmed coefficient lands outside the nominal ICE
    /// floor and the decode quality collapses. Transient; warm
    /// restartable like a storm.
    IceDrift,
    /// The chip refuses a programming cycle (flux trapping, DAC
    /// timeout). Fails fast — only the programming time is lost, and
    /// nothing was decoded, so a retry is cold.
    ProgrammingFailure,
    /// The worker's host stalls mid-job (GC pause, readout contention):
    /// the job *completes correctly* but late by the stall duration.
    WorkerStall,
    /// The worker dies and stays dead for a repair interval; the job
    /// never ran. Transient for the *job* (an alternate worker can
    /// serve it), fatal for the worker until repaired.
    WorkerCrash,
}

impl FaultClass {
    /// Every class, in the fixed order the single-draw classifier
    /// walks them (and the order counters are reported in).
    pub const ALL: [FaultClass; 5] = [
        FaultClass::WorkerCrash,
        FaultClass::WorkerStall,
        FaultClass::ProgrammingFailure,
        FaultClass::ChainBreakStorm,
        FaultClass::IceDrift,
    ];

    /// Stable lowercase name (bench JSON rows, log lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::ChainBreakStorm => "chain_break_storm",
            FaultClass::IceDrift => "ice_drift",
            FaultClass::ProgrammingFailure => "programming_failure",
            FaultClass::WorkerStall => "worker_stall",
            FaultClass::WorkerCrash => "worker_crash",
        }
    }

    /// `true` when a retry of the *job* may succeed (every class: the
    /// job itself is fine, the attempt was unlucky). Distinguished
    /// from permanent job defects ([`ServeError::InvalidJob`]).
    pub fn is_transient(self) -> bool {
        true
    }

    /// `true` when the failed attempt leaves a usable best-so-far
    /// candidate, making the retry a *warm* `decode_reverse_from`
    /// restart (cheaper than a cold job): the anneals ran, only their
    /// quality was degraded.
    pub fn warm_restartable(self) -> bool {
        matches!(self, FaultClass::ChainBreakStorm | FaultClass::IceDrift)
    }
}

/// Per-class independent fault rates (probability per job attempt,
/// except crashes which are per worker-job encounter).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Chain-break storm probability per anneal batch.
    pub chain_break_storm: f64,
    /// ICE drift excursion probability per anneal batch.
    pub ice_drift: f64,
    /// Programming failure probability per programming cycle.
    pub programming_failure: f64,
    /// Worker stall probability per job.
    pub worker_stall: f64,
    /// Worker crash probability per job.
    pub worker_crash: f64,
}

impl FaultRates {
    /// No faults at all — the fair-weather closed loop.
    pub fn none() -> Self {
        FaultRates {
            chain_break_storm: 0.0,
            ice_drift: 0.0,
            programming_failure: 0.0,
            worker_stall: 0.0,
            worker_crash: 0.0,
        }
    }

    /// Every class at the same rate `r` — the bench sweep's knob.
    ///
    /// # Panics
    /// Panics unless `0 ≤ r` and the total stays ≤ 1.
    pub fn uniform(r: f64) -> Self {
        let rates = FaultRates {
            chain_break_storm: r,
            ice_drift: r,
            programming_failure: r,
            worker_stall: r,
            worker_crash: r,
        };
        rates.validate();
        rates
    }

    /// The rate for `class`.
    pub fn rate(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::ChainBreakStorm => self.chain_break_storm,
            FaultClass::IceDrift => self.ice_drift,
            FaultClass::ProgrammingFailure => self.programming_failure,
            FaultClass::WorkerStall => self.worker_stall,
            FaultClass::WorkerCrash => self.worker_crash,
        }
    }

    /// Sum of all class rates (the per-attempt any-fault probability).
    pub fn total(&self) -> f64 {
        FaultClass::ALL.iter().map(|&c| self.rate(c)).sum()
    }

    /// `true` when every rate is zero.
    pub fn is_quiet(&self) -> bool {
        self.total() == 0.0
    }

    fn validate(&self) {
        for class in FaultClass::ALL {
            let r = self.rate(class);
            assert!(
                (0.0..=1.0).contains(&r),
                "{} rate out of range: {r}",
                class.name()
            );
        }
        assert!(
            self.total() <= 1.0 + 1e-12,
            "class rates must sum to ≤ 1 (single-draw classifier): {}",
            self.total()
        );
    }
}

/// Per-class injection counters (what actually fired).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Chain-break storms injected.
    pub chain_break_storms: u64,
    /// ICE drift excursions injected.
    pub ice_drifts: u64,
    /// Programming failures injected.
    pub programming_failures: u64,
    /// Worker stalls injected.
    pub worker_stalls: u64,
    /// Worker crashes injected.
    pub worker_crashes: u64,
}

impl FaultCounters {
    /// The counter for `class`.
    pub fn count(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::ChainBreakStorm => self.chain_break_storms,
            FaultClass::IceDrift => self.ice_drifts,
            FaultClass::ProgrammingFailure => self.programming_failures,
            FaultClass::WorkerStall => self.worker_stalls,
            FaultClass::WorkerCrash => self.worker_crashes,
        }
    }

    /// Total faults injected across classes.
    pub fn total(&self) -> u64 {
        FaultClass::ALL.iter().map(|&c| self.count(c)).sum()
    }

    fn bump(&mut self, class: FaultClass) {
        match class {
            FaultClass::ChainBreakStorm => self.chain_break_storms += 1,
            FaultClass::IceDrift => self.ice_drifts += 1,
            FaultClass::ProgrammingFailure => self.programming_failures += 1,
            FaultClass::WorkerStall => self.worker_stalls += 1,
            FaultClass::WorkerCrash => self.worker_crashes += 1,
        }
    }
}

/// A seeded, deterministic fault schedule.
///
/// Each `(worker, job, attempt)` triple owns one uniform draw — a
/// SplitMix64 hash of the plan seed and the triple — classified
/// against the cumulative class rates in [`FaultClass::ALL`] order.
/// Two plans with the same seed and rates inject byte-identical fault
/// sequences into identical request streams, which is what makes a
/// degraded `SimReport` reproducible and the guarded-vs-unguarded
/// comparison fair: the *first* attempt of every job sees the same
/// fault either way, only the recovery differs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Stall duration injected by [`FaultClass::WorkerStall`], µs.
    stall_us: f64,
    /// Worker downtime after a [`FaultClass::WorkerCrash`], µs.
    repair_us: f64,
    counters: FaultCounters,
}

impl FaultPlan {
    /// A plan drawing from `seed` at the given per-class rates, with
    /// default stall (2 ms) and repair (20 ms) durations.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        rates.validate();
        FaultPlan {
            seed,
            rates,
            stall_us: 2_000.0,
            repair_us: 20_000.0,
            counters: FaultCounters::default(),
        }
    }

    /// A plan that never fires (rates all zero).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan::new(seed, FaultRates::none())
    }

    /// Sets the stall duration, µs.
    ///
    /// # Panics
    /// Panics unless positive.
    pub fn with_stall_us(mut self, stall_us: f64) -> Self {
        assert!(stall_us > 0.0, "a stall lasts a positive duration");
        self.stall_us = stall_us;
        self
    }

    /// Sets the crash repair time, µs.
    ///
    /// # Panics
    /// Panics unless positive.
    pub fn with_repair_us(mut self, repair_us: f64) -> Self {
        assert!(repair_us > 0.0, "repair takes a positive duration");
        self.repair_us = repair_us;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Stall duration injected with a [`FaultClass::WorkerStall`], µs.
    pub fn stall_us(&self) -> f64 {
        self.stall_us
    }

    /// Worker downtime after a [`FaultClass::WorkerCrash`], µs.
    pub fn repair_us(&self) -> f64 {
        self.repair_us
    }

    /// `true` when the plan can never fire.
    pub fn is_quiet(&self) -> bool {
        self.rates.is_quiet()
    }

    /// What has fired so far, per class.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Clears the counters (new simulation, same schedule).
    pub fn reset(&mut self) {
        self.counters = FaultCounters::default();
    }

    /// The fault (if any) that attempt `attempt` of job `job` on
    /// worker `worker` experiences. Pure in `(seed, rates, worker,
    /// job, attempt)` — calling it twice with the same triple returns
    /// the same class (but counts twice; the serving layer draws once
    /// per executed attempt).
    pub fn draw(&mut self, worker: usize, job: u64, attempt: u32) -> Option<FaultClass> {
        let class = self.peek(worker, job, attempt);
        if let Some(c) = class {
            self.counters.bump(c);
        }
        class
    }

    /// [`FaultPlan::draw`] without counting — for lookahead.
    pub fn peek(&self, worker: usize, job: u64, attempt: u32) -> Option<FaultClass> {
        if self.rates.is_quiet() {
            return None;
        }
        let key = (worker as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(job.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(attempt as u64);
        let unit = (splitmix(self.seed, key) >> 11) as f64 / (1u64 << 53) as f64;
        let mut cumulative = 0.0;
        for class in FaultClass::ALL {
            cumulative += self.rates.rate(class);
            if unit < cumulative {
                return Some(class);
            }
        }
        None
    }

    /// The device-layer degradation realizing `class` on an actual
    /// anneal batch, at this plan's calibrated severities: storms flip
    /// a quarter of chain qubits, drift excursions inflate the ICE
    /// floor 10×. Classes without an anneal-level mechanism (they act
    /// on the queue, not the samples) map to no degradation.
    pub fn degradation(class: FaultClass) -> AnnealDegradation {
        match class {
            FaultClass::ChainBreakStorm => AnnealDegradation::chain_break_storm(0.25),
            FaultClass::IceDrift => AnnealDegradation::ice_excursion(10.0),
            _ => AnnealDegradation::none(),
        }
    }
}

/// Why the serving layer could not (or chose not to) serve a job —
/// the classified error taxonomy callers decide on instead of
/// panicking.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// An injected (or real) device fault killed the attempt.
    Fault {
        /// Which class fired.
        class: FaultClass,
    },
    /// No worker was available (all crashed or circuit-broken) and no
    /// escalation rung was configured.
    WorkerUnavailable,
    /// The job itself is malformed — zero problems or zero logical
    /// variables — and would fail identically on every worker.
    InvalidJob(&'static str),
    /// Admission control shed the job under backpressure. Recorded,
    /// never silent: the ledger counts every shed job.
    Shed {
        /// Projected queue wait that triggered the shed, µs.
        projected_wait_us: f64,
    },
    /// A decode-level failure bubbled up from `quamax_core`.
    Detect(DetectError),
}

impl ServeError {
    /// `true` when a retry (other worker, later, bigger budget) may
    /// succeed; `false` for errors deterministic in the job itself.
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Fault { class } => class.is_transient(),
            // The pool's health recovers (breakers half-open, crashed
            // workers repair): transient.
            ServeError::WorkerUnavailable => true,
            ServeError::InvalidJob(_) => false,
            // A shed is a deliberate, final admission decision for
            // this job, not a failure a retry should paper over.
            ServeError::Shed { .. } => false,
            ServeError::Detect(e) => e.is_transient(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Fault { class } => write!(f, "device fault: {}", class.name()),
            ServeError::WorkerUnavailable => write!(f, "no worker available"),
            ServeError::InvalidJob(why) => write!(f, "invalid job: {why}"),
            ServeError::Shed { projected_wait_us } => {
                write!(
                    f,
                    "shed under backpressure ({projected_wait_us:.0} µs wait)"
                )
            }
            ServeError::Detect(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DetectError> for ServeError {
    fn from(e: DetectError) -> Self {
        ServeError::Detect(e)
    }
}

/// SplitMix64 of `(seed, k)` — the fault classifier's hash.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::quiet(7);
        for job in 0..1000 {
            assert_eq!(plan.draw(0, job, 1), None);
        }
        assert_eq!(plan.counters().total(), 0);
        assert!(plan.is_quiet());
    }

    #[test]
    fn draws_are_deterministic_in_the_triple() {
        let rates = FaultRates::uniform(0.05);
        let mut a = FaultPlan::new(42, rates);
        let mut b = FaultPlan::new(42, rates);
        for job in 0..500 {
            for worker in 0..3 {
                for attempt in 1..3 {
                    assert_eq!(
                        a.draw(worker, job, attempt),
                        b.draw(worker, job, attempt),
                        "divergence at ({worker}, {job}, {attempt})"
                    );
                }
            }
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().total() > 0, "5%×5 over 3000 draws must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let rates = FaultRates::uniform(0.1);
        let a: Vec<_> = {
            let mut p = FaultPlan::new(1, rates);
            (0..200).map(|j| p.draw(0, j, 1)).collect()
        };
        let b: Vec<_> = {
            let mut p = FaultPlan::new(2, rates);
            (0..200).map(|j| p.draw(0, j, 1)).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn empirical_rates_track_configured_rates() {
        let mut plan = FaultPlan::new(11, FaultRates::uniform(0.04));
        let n = 20_000u64;
        for job in 0..n {
            plan.draw(job as usize % 4, job, 1);
        }
        for class in FaultClass::ALL {
            let empirical = plan.counters().count(class) as f64 / n as f64;
            assert!(
                (empirical - 0.04).abs() < 0.01,
                "{}: {empirical}",
                class.name()
            );
        }
        assert!((plan.counters().total() as f64 / n as f64 - 0.2).abs() < 0.02);
    }

    #[test]
    fn peek_does_not_count() {
        let plan = FaultPlan::new(3, FaultRates::uniform(0.2));
        let mut counted = plan.clone();
        for job in 0..100 {
            let peeked = plan.peek(0, job, 1);
            assert_eq!(peeked, counted.draw(0, job, 1));
        }
        assert_eq!(plan.counters().total(), 0);
        assert!(counted.counters().total() > 0);
    }

    #[test]
    fn warm_restart_classes() {
        assert!(FaultClass::ChainBreakStorm.warm_restartable());
        assert!(FaultClass::IceDrift.warm_restartable());
        assert!(!FaultClass::ProgrammingFailure.warm_restartable());
        assert!(!FaultClass::WorkerCrash.warm_restartable());
        for class in FaultClass::ALL {
            assert!(class.is_transient());
        }
    }

    #[test]
    fn degradation_mapping_reaches_the_device_layer() {
        let storm = FaultPlan::degradation(FaultClass::ChainBreakStorm);
        assert!(storm.chain_flip_probability > 0.0);
        let drift = FaultPlan::degradation(FaultClass::IceDrift);
        assert!(drift.ice_scale > 1.0);
        assert!(FaultPlan::degradation(FaultClass::WorkerStall).is_none());
    }

    #[test]
    fn serve_error_classification() {
        assert!(ServeError::Fault {
            class: FaultClass::IceDrift
        }
        .is_transient());
        assert!(ServeError::WorkerUnavailable.is_transient());
        assert!(!ServeError::InvalidJob("zero problems").is_transient());
        assert!(!ServeError::Shed {
            projected_wait_us: 1e4
        }
        .is_transient());
    }

    #[test]
    #[should_panic(expected = "sum to ≤ 1")]
    fn overfull_rates_panic() {
        let _ = FaultRates::uniform(0.3);
    }
}
