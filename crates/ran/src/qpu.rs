//! The data-center QPU as a queueing server.
//!
//! Service time for one frame's worth of subcarrier problems:
//!
//! ```text
//! t = preprocessing + programming
//!   + ⌈problems / P_f⌉ · (Na·(Ta+Tp) + Na·readout)
//! ```
//!
//! where `P_f` is the geometric parallelization factor of the problem
//! size on the chip. The three overhead terms are the §7 numbers
//! (≈30–50 ms preprocessing, 6–8 ms programming, 0.125 ms readout per
//! anneal) — "well beyond the processing time available for wireless
//! technologies" today, but "not of a fundamental nature". Toggling
//! [`QpuOverheads::integrated`] models the engineering-integrated
//! device the paper envisions.

use crate::fault::ServeError;
use quamax_chimera::parallelization;
use quamax_linalg::CMatrix;
use quamax_telemetry::Telemetry;

/// A stable 64-bit fingerprint of a channel estimate — the key a
/// compiled decode session is cached under. Two frames whose estimated
/// `H` hashes equal can share one programmed problem (the couplings
/// depend only on `H`); a changed hash means the coherence interval
/// ended and the chip must be reprogrammed.
///
/// FNV-1a over the raw `f64` bit patterns: deterministic across runs
/// and platforms with IEEE-754 doubles.
pub fn channel_hash(h: &CMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = OFFSET;
    let mut eat = |v: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            acc ^= (v >> shift) & 0xff;
            acc = acc.wrapping_mul(PRIME);
        }
    };
    eat(h.rows() as u64);
    eat(h.cols() as u64);
    for z in h.as_slice() {
        eat(z.re.to_bits());
        eat(z.im.to_bits());
    }
    acc
}

/// Which way a job flows through the C-RAN: uplink frames are
/// *detected* (`quamax_core::detect`), downlink frames are *precoded*
/// (`quamax_core::precode`). The two workloads compile **different**
/// programmed problems from the **same** channel estimate `H` — an
/// uplink `DetectorSession` and a downlink `PrecoderSession` must
/// never alias in a [`SessionCache`] or coalesce into one anneal
/// batch, so the direction participates in every session/batch key
/// via [`JobDirection::rekey`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum JobDirection {
    /// Uplink detection (the original workload).
    #[default]
    Uplink,
    /// Downlink vector-perturbation precoding.
    Downlink,
}

impl JobDirection {
    /// Folds this direction into a channel hash. Uplink is the
    /// identity — every pre-existing uplink-only key, cache entry, and
    /// bit-identity contract is unchanged — while downlink XORs a
    /// fixed tag (the ASCII bytes of `"DOWNLINK"`), so the same `H`
    /// yields two distinct, deterministic session keys.
    pub fn rekey(self, hash: u64) -> u64 {
        match self {
            JobDirection::Uplink => hash,
            JobDirection::Downlink => hash ^ 0x444F_574E_4C49_4E4B,
        }
    }

    /// A short lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            JobDirection::Uplink => "uplink",
            JobDirection::Downlink => "downlink",
        }
    }
}

/// [`channel_hash`] with the job direction folded in — the key a
/// direction-aware serving layer caches compiled sessions under.
pub fn channel_hash_directed(h: &CMatrix, direction: JobDirection) -> u64 {
    direction.rekey(channel_hash(h))
}

/// Hit/miss/eviction counters of a [`SessionCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served without reprogramming.
    pub hits: u64,
    /// Lookups that (re)programmed the chip.
    pub misses: u64,
    /// Live entries evicted under *capacity pressure* (oldest first).
    /// Coherence-expiry removals are not counted here — an expired
    /// session is physically dead, not a victim of a small cache.
    pub evictions: u64,
}

/// A per-source cache of compiled (programmed) decode sessions, keyed
/// by channel hash, with eviction on coherence expiry — and a hard
/// capacity cap with oldest-entry eviction.
///
/// Models the data-center front of §7 under the PR-2 compile-once
/// sessions: each access point's current channel owns at most one
/// programmed problem on the QPU; a frame whose channel hash is still
/// cached (and fresh) skips host preprocessing and chip programming.
/// Entries are evicted once they outlive the coherence time — the
/// channel has physically changed, so the programmed problem is stale
/// even if an identical hash were to reappear. The capacity cap bounds
/// the cache under *short* coherence windows with *many* live sources:
/// without it, every source seen within one window holds an entry,
/// which on a metro-scale AP population grows without limit.
#[derive(Clone, Debug)]
pub struct SessionCache {
    /// Maximum age of a cached session, µs (the coherence time).
    coherence_us: f64,
    /// Maximum live entries; exceeding it evicts the oldest entry.
    capacity: usize,
    /// `(source key, channel hash, programmed-at clock)` per source.
    entries: Vec<(usize, u64, f64)>,
    stats: CacheStats,
}

/// Default [`SessionCache`] capacity: roomy enough that a metro-scale
/// AP pool per QPU never evicts in the workloads this crate models,
/// but a hard bound nonetheless.
pub const DEFAULT_SESSION_CAPACITY: usize = 1024;

impl SessionCache {
    /// A cache whose sessions live `coherence_us` before eviction,
    /// holding at most [`DEFAULT_SESSION_CAPACITY`] entries.
    ///
    /// # Panics
    /// Panics when `coherence_us` is not positive.
    pub fn new(coherence_us: f64) -> Self {
        assert!(coherence_us > 0.0, "coherence time must be positive");
        SessionCache {
            coherence_us,
            capacity: DEFAULT_SESSION_CAPACITY,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Caps the cache at `capacity` live entries; inserting past the
    /// cap evicts the oldest entry (earliest programmed-at time) and
    /// counts it in [`CacheStats::evictions`].
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "a cache holds at least one session");
        self.capacity = capacity;
        self
    }

    /// The configured capacity cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `(key, hash)` at time `now_us`, inserting/refreshing on
    /// miss. Returns `true` on a hit (the frame skips programming).
    ///
    /// Expired entries — of *any* source — are evicted first, so the
    /// cache never reports stale sessions; a miss that would grow the
    /// cache past its capacity evicts the oldest live entry.
    pub fn lookup(&mut self, now_us: f64, key: usize, hash: u64) -> bool {
        let ttl = self.coherence_us;
        self.entries.retain(|&(_, _, at)| now_us - at <= ttl);
        match self.entries.iter().find(|&&(k, _, _)| k == key) {
            Some(&(_, cached_hash, _)) if cached_hash == hash => {
                self.stats.hits += 1;
                true
            }
            _ => {
                // New channel for this source: the old programmed
                // problem (if any) is dead — replace it.
                self.entries.retain(|&(k, _, _)| k != key);
                while self.entries.len() >= self.capacity {
                    // Oldest entry loses its slot. Entries are pushed
                    // in programming order, so index 0 of the minimum
                    // programmed-at is the deterministic victim.
                    let victim = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).expect("finite clock"))
                        .map(|(i, _)| i)
                        .expect("capacity > 0 so a victim exists");
                    self.entries.remove(victim);
                    self.stats.evictions += 1;
                }
                self.entries.push((key, hash, now_us));
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Whether `(key, hash)` is cached and fresh at `now_us`, without
    /// touching entries or statistics — the scheduler's placement
    /// probe ([`lookup`] is the dispatch-time decision and mutates).
    ///
    /// [`lookup`]: SessionCache::lookup
    pub fn contains(&self, now_us: f64, key: usize, hash: u64) -> bool {
        self.entries
            .iter()
            .any(|&(k, h, at)| k == key && h == hash && now_us - at <= self.coherence_us)
    }

    /// The configured coherence time, µs.
    pub fn coherence_us(&self) -> f64 {
        self.coherence_us
    }

    /// Hit/miss/eviction counters since construction or the last
    /// [`reset`].
    ///
    /// [`reset`]: SessionCache::reset
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Publishes the cache counters into a metrics registry under the
    /// given labels (snapshot-time collection; [`stats`] stays the
    /// programmatic accessor).
    ///
    /// [`stats`]: SessionCache::stats
    pub fn publish_telemetry(&self, t: &Telemetry, labels: &[(&str, &str)]) {
        t.counter_store("quamax_cache_hits_total", labels, self.stats.hits);
        t.counter_store("quamax_cache_misses_total", labels, self.stats.misses);
        t.counter_store("quamax_cache_evictions_total", labels, self.stats.evictions);
        t.gauge_set("quamax_cache_entries", labels, self.entries.len() as f64);
    }

    /// Live cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears entries and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
    }
}

/// The non-compute overhead stack of a QA job (§7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QpuOverheads {
    /// Host-side preprocessing per job, µs.
    pub preprocessing_us: f64,
    /// Chip programming per job, µs.
    pub programming_us: f64,
    /// Readout per anneal, µs.
    pub readout_per_anneal_us: f64,
}

impl QpuOverheads {
    /// Today's DW2Q overheads (midpoints of the §7 ranges).
    pub fn current_dw2q() -> Self {
        QpuOverheads {
            preprocessing_us: 40_000.0,
            programming_us: 7_000.0,
            readout_per_anneal_us: 125.0,
        }
    }

    /// The integrated future system: overheads engineered away.
    pub fn integrated() -> Self {
        QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 0.0,
            readout_per_anneal_us: 0.0,
        }
    }
}

/// Nominal host-side unembedding cost per subcarrier problem, µs —
/// *reported only*. Majority-vote unembedding is pipelined on the host
/// while the chip anneals the next wave, so the paper's service-time
/// model (and [`QpuServer::amortized_service_time_us`]) never charges
/// it; the telemetry breakdown still reports it so the stage table is
/// complete.
pub const NOMINAL_UNEMBED_US_PER_PROBLEM: f64 = 0.05;

/// The per-stage decomposition of one frame's modeled service time —
/// what the telemetry spans record per enqueue.
///
/// `program_us + anneal_us + readout_us` reproduces
/// [`QpuServer::amortized_service_time_us`] up to floating-point
/// association (the service-time formula itself is unchanged and stays
/// the single source of truth for the simulation clock); `unembed_us`
/// is reported only and never enters any latency (see
/// [`NOMINAL_UNEMBED_US_PER_PROBLEM`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageBreakdown {
    /// Host preprocessing + chip programming (zero on a cached frame).
    pub program_us: f64,
    /// On-chip anneal cycles across all batches.
    pub anneal_us: f64,
    /// Per-anneal readout across all batches.
    pub readout_us: f64,
    /// Pipelined host unembedding (reported only, never charged).
    pub unembed_us: f64,
}

/// A QPU serving decode jobs FIFO.
///
/// With [`QpuServer::with_coherence`], the server models the
/// *compile-once decode session*: the channel `H` (and hence the
/// embedded, programmed problem structure) is constant over a
/// coherence interval, so host preprocessing and chip programming are
/// paid once per interval per access point, while every frame still
/// pays its own anneal cycles and per-anneal readout. This is the §7
/// overhead stack under the batching the hybrid-structures follow-up
/// work identifies as the crux of meeting wireless deadlines.
#[derive(Clone, Debug)]
pub struct QpuServer {
    overheads: QpuOverheads,
    /// Per-anneal cycle time `Ta + Tp`, µs.
    cycle_us: f64,
    /// Anneals per problem.
    anneals: usize,
    /// Frames per compiled session (per source key); 1 = reprogram
    /// every frame (the historical per-job model).
    coherence_frames: usize,
    /// Frames served so far per source key (to know which frames fall
    /// on a session boundary and pay the programming overhead).
    frames_served: Vec<(usize, usize)>,
    /// Channel-hash-keyed session cache (the time-based alternative to
    /// frame-counted coherence); `None` = uncached.
    cache: Option<SessionCache>,
    /// Time at which the server frees up (simulation clock, µs).
    busy_until_us: f64,
    /// Metrics handle (disabled by default; recording never feeds back
    /// into service times, so enabling it cannot perturb the clock).
    telemetry: Telemetry,
}

impl QpuServer {
    /// A server with the given schedule cost and anneal budget,
    /// reprogramming on every frame.
    pub fn new(overheads: QpuOverheads, cycle_us: f64, anneals: usize) -> Self {
        assert!(
            cycle_us > 0.0 && anneals > 0,
            "need positive cycle and anneal count"
        );
        QpuServer {
            overheads,
            cycle_us,
            anneals,
            coherence_frames: 1,
            frames_served: Vec::new(),
            cache: None,
            busy_until_us: 0.0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a metrics handle; enqueues record per-stage spans
    /// (queue wait, program, anneal, readout, unembed) into it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the metrics handle in place (how a serving pool
    /// propagates one registry across its workers).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached metrics handle (disabled unless configured).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Amortizes preprocessing + programming over `frames` consecutive
    /// frames per source (the coherence-interval session length, in
    /// frames).
    ///
    /// # Panics
    /// Panics when `frames` is zero.
    pub fn with_coherence(mut self, frames: usize) -> Self {
        assert!(frames > 0, "a session covers at least one frame");
        self.coherence_frames = frames;
        self
    }

    /// Attaches a per-source session cache keyed by *channel hash* with
    /// eviction after `coherence_us` — the time-based refinement of
    /// [`QpuServer::with_coherence`]: instead of assuming a fixed frame
    /// count per session, frames name their channel
    /// ([`QpuServer::enqueue_channel`]) and programming is skipped
    /// exactly while the hash is cached and fresh.
    ///
    /// # Panics
    /// Panics when `coherence_us` is not positive.
    pub fn with_session_cache(mut self, coherence_us: f64) -> Self {
        self.cache = Some(SessionCache::new(coherence_us));
        self
    }

    /// The attached session cache, if any (for hit/miss statistics).
    pub fn session_cache(&self) -> Option<&SessionCache> {
        self.cache.as_ref()
    }

    /// Whether this server's chip already holds a fresh programmed
    /// session for `(key, hash)` at `now_us` — a read-only placement
    /// probe (no entry refresh, no stats). `false` when no session
    /// cache is attached.
    pub fn has_cached_session(&self, now_us: f64, key: usize, hash: u64) -> bool {
        self.cache
            .as_ref()
            .is_some_and(|c| c.contains(now_us, key, hash))
    }

    /// Service time for one frame: `problems` subcarrier decodes of
    /// `logical_vars` variables each, including the full per-job
    /// overhead stack (the first frame of a session).
    pub fn service_time_us(&self, problems: usize, logical_vars: usize) -> f64 {
        self.amortized_service_time_us(problems, logical_vars, true)
    }

    /// Service time for one frame, charging preprocessing + programming
    /// only when `program` is set (the session-boundary frame); later
    /// frames of a compiled session pay anneals and readout only.
    pub fn amortized_service_time_us(
        &self,
        problems: usize,
        logical_vars: usize,
        program: bool,
    ) -> f64 {
        let pf = parallelization(logical_vars).max(1);
        let batches = problems.div_ceil(pf) as f64;
        let per_batch =
            self.anneals as f64 * (self.cycle_us + self.overheads.readout_per_anneal_us);
        let overhead = if program {
            self.overheads.preprocessing_us + self.overheads.programming_us
        } else {
            0.0
        };
        overhead + batches * per_batch
    }

    /// Decomposes one frame's modeled service into telemetry stages
    /// (see [`StageBreakdown`] for the relationship to
    /// [`QpuServer::amortized_service_time_us`]).
    pub fn stage_breakdown(
        &self,
        problems: usize,
        logical_vars: usize,
        program: bool,
    ) -> StageBreakdown {
        let pf = parallelization(logical_vars).max(1);
        let batches = problems.div_ceil(pf) as f64;
        StageBreakdown {
            program_us: if program {
                self.overheads.preprocessing_us + self.overheads.programming_us
            } else {
                0.0
            },
            anneal_us: batches * self.anneals as f64 * self.cycle_us,
            readout_us: batches * self.anneals as f64 * self.overheads.readout_per_anneal_us,
            unembed_us: problems as f64 * NOMINAL_UNEMBED_US_PER_PROBLEM,
        }
    }

    /// Records one enqueue's queue wait and stage spans. Purely
    /// observational: called after the clock already advanced.
    fn record_enqueue(
        &self,
        now_us: f64,
        start_us: f64,
        key: usize,
        problems: usize,
        logical_vars: usize,
        program: bool,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        let cell = key.to_string();
        let labels = [("cell", cell.as_str())];
        t.span_us("quamax_qpu_queue_wait_us", &labels, now_us, start_us);
        let b = self.stage_breakdown(problems, logical_vars, program);
        t.observe("quamax_qpu_program_us", &labels, b.program_us);
        t.observe("quamax_qpu_anneal_us", &labels, b.anneal_us);
        t.observe("quamax_qpu_readout_us", &labels, b.readout_us);
        t.observe("quamax_qpu_unembed_us", &labels, b.unembed_us);
        t.counter_inc("quamax_qpu_jobs_total", &labels);
        t.counter_inc(
            "quamax_qpu_programs_total",
            &[
                ("cell", cell.as_str()),
                ("kind", if program { "cold" } else { "cached" }),
            ],
        );
    }

    /// Enqueues a frame arriving at `now_us`; returns its completion
    /// time. FIFO: the job starts when the server frees up.
    pub fn enqueue(&mut self, now_us: f64, problems: usize, logical_vars: usize) -> f64 {
        self.enqueue_keyed(now_us, 0, problems, logical_vars)
    }

    /// Enqueues a frame from source `key` (e.g. an access-point id):
    /// each source reprograms on its own coherence boundaries, since
    /// different sources see different channels.
    pub fn enqueue_keyed(
        &mut self,
        now_us: f64,
        key: usize,
        problems: usize,
        logical_vars: usize,
    ) -> f64 {
        let served = match self.frames_served.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => {
                let s = *n;
                *n += 1;
                s
            }
            None => {
                self.frames_served.push((key, 1));
                0
            }
        };
        let program = served % self.coherence_frames == 0;
        let start = now_us.max(self.busy_until_us);
        let done = start + self.amortized_service_time_us(problems, logical_vars, program);
        self.busy_until_us = done;
        self.record_enqueue(now_us, start, key, problems, logical_vars, program);
        done
    }

    /// Enqueues a frame from source `key` whose channel estimate hashes
    /// to `channel_hash` (see [`channel_hash`]): programming is paid
    /// only when the hash misses the session cache — first sight of
    /// this channel, a channel change, or coherence expiry.
    ///
    /// Requires [`QpuServer::with_session_cache`]; without a cache this
    /// degrades to the frame-counted [`QpuServer::enqueue_keyed`].
    pub fn enqueue_channel(
        &mut self,
        now_us: f64,
        key: usize,
        channel_hash: u64,
        problems: usize,
        logical_vars: usize,
    ) -> f64 {
        let Some(cache) = self.cache.as_mut() else {
            return self.enqueue_keyed(now_us, key, problems, logical_vars);
        };
        let program = !cache.lookup(now_us, key, channel_hash);
        let start = now_us.max(self.busy_until_us);
        let done = start + self.amortized_service_time_us(problems, logical_vars, program);
        self.busy_until_us = done;
        self.record_enqueue(now_us, start, key, problems, logical_vars, program);
        done
    }

    /// Validates a job's shape for the fallible enqueue family: a
    /// frame with zero subcarrier problems has nothing to decode, and
    /// zero logical variables per problem has no chip image — both
    /// would produce degenerate service times (overhead-only or
    /// nonsense parallelization), so they are classified errors, not
    /// silent numbers.
    fn validate(problems: usize, logical_vars: usize) -> Result<(), ServeError> {
        if problems == 0 {
            return Err(ServeError::InvalidJob("zero problems in frame"));
        }
        if logical_vars == 0 {
            return Err(ServeError::InvalidJob("zero logical variables"));
        }
        Ok(())
    }

    /// Fallible [`QpuServer::enqueue`]: classified error on a
    /// malformed job instead of a degenerate service time.
    pub fn try_enqueue(
        &mut self,
        now_us: f64,
        problems: usize,
        logical_vars: usize,
    ) -> Result<f64, ServeError> {
        Self::validate(problems, logical_vars)?;
        Ok(self.enqueue(now_us, problems, logical_vars))
    }

    /// Fallible [`QpuServer::enqueue_keyed`].
    pub fn try_enqueue_keyed(
        &mut self,
        now_us: f64,
        key: usize,
        problems: usize,
        logical_vars: usize,
    ) -> Result<f64, ServeError> {
        Self::validate(problems, logical_vars)?;
        Ok(self.enqueue_keyed(now_us, key, problems, logical_vars))
    }

    /// Fallible [`QpuServer::enqueue_channel`].
    pub fn try_enqueue_channel(
        &mut self,
        now_us: f64,
        key: usize,
        channel_hash: u64,
        problems: usize,
        logical_vars: usize,
    ) -> Result<f64, ServeError> {
        Self::validate(problems, logical_vars)?;
        Ok(self.enqueue_channel(now_us, key, channel_hash, problems, logical_vars))
    }

    /// Service time of a *warm retry*: the chip is still programmed
    /// with the failed attempt's problem (no preprocessing, no
    /// programming) and the retry reverse-anneals from that attempt's
    /// best candidate (`DecodeSession::decode_reverse_from`), so the
    /// anneal bill shrinks to `warm_fraction` of a cold batch's.
    ///
    /// # Panics
    /// Panics unless `warm_fraction ∈ (0, 1]`.
    pub fn warm_retry_time_us(
        &self,
        problems: usize,
        logical_vars: usize,
        warm_fraction: f64,
    ) -> f64 {
        assert!(
            warm_fraction > 0.0 && warm_fraction <= 1.0,
            "warm fraction must be in (0, 1]"
        );
        self.amortized_service_time_us(problems, logical_vars, false) * warm_fraction
    }

    /// Enqueues a warm retry (see [`QpuServer::warm_retry_time_us`]);
    /// returns its completion time.
    pub fn enqueue_warm_retry(
        &mut self,
        now_us: f64,
        problems: usize,
        logical_vars: usize,
        warm_fraction: f64,
    ) -> f64 {
        let start = now_us.max(self.busy_until_us);
        let done = start + self.warm_retry_time_us(problems, logical_vars, warm_fraction);
        self.busy_until_us = done;
        if self.telemetry.is_enabled() {
            self.telemetry
                .span_us("quamax_qpu_queue_wait_us", &[], now_us, start);
            self.telemetry
                .observe("quamax_qpu_warm_retry_us", &[], done - start);
        }
        done
    }

    /// The time at which this server's FIFO queue drains, µs (0 when
    /// idle) — what admission control projects queue waits from.
    pub fn busy_until_us(&self) -> f64 {
        self.busy_until_us
    }

    /// Charges `duration_us` of non-decode occupancy (a failed
    /// programming cycle, a stall) starting no earlier than `now_us`;
    /// returns the time the charge ends.
    pub fn occupy_us(&mut self, now_us: f64, duration_us: f64) -> f64 {
        assert!(duration_us >= 0.0, "occupancy cannot be negative");
        let start = now_us.max(self.busy_until_us);
        let done = start + duration_us;
        self.busy_until_us = done;
        self.telemetry
            .observe("quamax_qpu_occupancy_us", &[], duration_us);
        done
    }

    /// This server's configured overheads.
    pub fn overheads(&self) -> &QpuOverheads {
        &self.overheads
    }

    /// Resets the server clock and session state (new simulation).
    pub fn reset(&mut self) {
        self.busy_until_us = 0.0;
        self.frames_served.clear();
        if let Some(cache) = self.cache.as_mut() {
            cache.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_service_is_pure_compute() {
        // 16-var problems tile > 20× (paper §4): 50 subcarriers fit in
        // ⌈50/24⌉ = 3 batches… use the actual factor.
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 50);
        let pf = parallelization(16).max(1);
        let batches = 50usize.div_ceil(pf) as f64;
        let t = srv.service_time_us(50, 16);
        assert!((t - batches * 50.0 * 2.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn current_overheads_dominate() {
        let srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 50);
        let t = srv.service_time_us(50, 16);
        // ≥ 47 ms of fixed overhead plus 6.25 ms readout per batch:
        // today's stack busts every wireless deadline (§7's point).
        assert!(t > 40_000.0, "t={t}");
        let integrated =
            QpuServer::new(QpuOverheads::integrated(), 2.0, 50).service_time_us(50, 16);
        assert!(t > 100.0 * integrated);
    }

    #[test]
    fn fifo_queueing() {
        let mut srv = QpuServer::new(QpuOverheads::integrated(), 1.0, 10);
        let t1 = srv.enqueue(0.0, 1, 16); // 10 µs of anneals
        let t2 = srv.enqueue(0.0, 1, 16); // queued behind job 1
        assert!((t1 - 10.0).abs() < 1e-9);
        assert!((t2 - 20.0).abs() < 1e-9);
        // A job arriving after the queue drains starts immediately.
        let t3 = srv.enqueue(100.0, 1, 16);
        assert!((t3 - 110.0).abs() < 1e-9);
        srv.reset();
        assert!((srv.enqueue(0.0, 1, 16) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coherence_sessions_amortize_programming() {
        // 4-frame sessions: frames 0 and 4 pay the overhead stack,
        // frames 1–3 pay anneals + readout only.
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(4);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        assert!((full - amortized - 47_000.0).abs() < 1e-9);

        let mut last = 0.0;
        let mut costs = Vec::new();
        for _ in 0..5 {
            let done = srv.enqueue(last, 50, 16);
            costs.push(done - last);
            last = done;
        }
        assert!((costs[0] - full).abs() < 1e-9, "first frame programs");
        for c in &costs[1..4] {
            assert!(
                (c - amortized).abs() < 1e-9,
                "mid-session frame reprogrammed"
            );
        }
        assert!((costs[4] - full).abs() < 1e-9, "new interval reprograms");
    }

    #[test]
    fn coherence_boundaries_are_per_source() {
        // Two APs interleaved: each pays programming on its own first
        // frame, not on the other's.
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(100);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        let t1 = srv.enqueue_keyed(0.0, 7, 50, 16);
        let t2 = srv.enqueue_keyed(0.0, 8, 50, 16);
        let t3 = srv.enqueue_keyed(0.0, 7, 50, 16);
        assert!((t1 - full).abs() < 1e-9);
        assert!((t2 - t1 - full).abs() < 1e-9, "AP 8's first frame programs");
        assert!(
            (t3 - t2 - amortized).abs() < 1e-9,
            "AP 7's session continues"
        );
        srv.reset();
        assert!((srv.enqueue_keyed(0.0, 7, 50, 16) - full).abs() < 1e-9);
    }

    #[test]
    fn session_cache_amortizes_until_channel_or_coherence_changes() {
        // 30 ms coherence on a partly-integrated device (80 µs
        // programming, so frames finish well inside the interval):
        // frames with the same channel hash pay anneals only; a hash
        // change or expiry reprograms.
        let overheads = QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 80.0,
            readout_per_anneal_us: 0.0,
        };
        let mut srv = QpuServer::new(overheads, 2.0, 10).with_session_cache(30_000.0);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);

        let mut last = 0.0;
        let mut cost = |srv: &mut QpuServer, at: f64, hash: u64| {
            let done = srv.enqueue_channel(at.max(last), 7, hash, 50, 16);
            let c = done - at.max(last);
            last = done;
            c
        };
        assert!(
            (cost(&mut srv, 0.0, 0xAA) - full).abs() < 1e-9,
            "first sight programs"
        );
        assert!(
            (cost(&mut srv, 0.0, 0xAA) - amortized).abs() < 1e-9,
            "cached hash skips"
        );
        assert!(
            (cost(&mut srv, 0.0, 0xBB) - full).abs() < 1e-9,
            "channel change reprograms"
        );
        assert!((cost(&mut srv, 0.0, 0xBB) - amortized).abs() < 1e-9);
        // Past the coherence time the entry is evicted even for the
        // same hash — the physical channel moved on.
        assert!(
            (cost(&mut srv, 100_000.0, 0xBB) - full).abs() < 1e-9,
            "expired session reprograms"
        );
        let stats = srv.session_cache().unwrap().stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 2,
                misses: 3,
                evictions: 0
            }
        );
        srv.reset();
        assert_eq!(srv.session_cache().unwrap().stats(), CacheStats::default());
        assert!(srv.session_cache().unwrap().is_empty());
    }

    #[test]
    fn session_cache_evicts_oldest_past_capacity() {
        let mut cache = SessionCache::new(1e9).with_capacity(3);
        assert_eq!(cache.capacity(), 3);
        // Fill past capacity: five distinct sources, one per µs.
        for key in 0..5usize {
            assert!(!cache.lookup(key as f64, key, 0xE0 + key as u64));
        }
        assert_eq!(cache.len(), 3, "capacity bounds the live set");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 5,
                evictions: 2
            }
        );
        // Sources 0 and 1 (the oldest) were evicted; 2–4 survive.
        assert!(!cache.lookup(6.0, 0, 0xE0), "oldest entry was evicted");
        for key in 3..5usize {
            assert!(cache.lookup(6.0, key, 0xE0 + key as u64), "key {key} kept");
        }
        // That re-lookup of source 0 itself evicted the then-oldest.
        assert_eq!(cache.stats().evictions, 3);
        // A same-source channel change replaces in place: no eviction.
        let mut replace = SessionCache::new(1e9).with_capacity(1);
        assert!(!replace.lookup(0.0, 9, 0x1));
        assert!(!replace.lookup(1.0, 9, 0x2));
        assert_eq!(replace.stats().evictions, 0, "replacement is not eviction");
        assert_eq!(replace.len(), 1);
    }

    #[test]
    fn try_enqueue_rejects_degenerate_jobs() {
        let mut srv = QpuServer::new(QpuOverheads::integrated(), 1.0, 10).with_session_cache(1e9);
        assert_eq!(
            srv.try_enqueue(0.0, 0, 16),
            Err(ServeError::InvalidJob("zero problems in frame"))
        );
        assert_eq!(
            srv.try_enqueue(0.0, 50, 0),
            Err(ServeError::InvalidJob("zero logical variables"))
        );
        assert_eq!(
            srv.try_enqueue_keyed(0.0, 3, 0, 16),
            Err(ServeError::InvalidJob("zero problems in frame"))
        );
        assert_eq!(
            srv.try_enqueue_channel(0.0, 3, 0xAB, 50, 0),
            Err(ServeError::InvalidJob("zero logical variables"))
        );
        // Rejections leave the server untouched: clock, sessions, cache.
        assert_eq!(srv.busy_until_us(), 0.0);
        assert!(srv.session_cache().unwrap().is_empty());
        // Valid jobs pass through to the infallible paths unchanged.
        let t = srv.try_enqueue(0.0, 1, 16).unwrap();
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn warm_retry_is_cheaper_than_cold() {
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10);
        let cold = srv.service_time_us(50, 16);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        let warm = srv.warm_retry_time_us(50, 16, 0.5);
        assert!((warm - amortized * 0.5).abs() < 1e-9);
        assert!(warm < amortized, "reverse anneal beats a cold batch");
        assert!(warm < cold, "and certainly beats programming + batch");
        // Enqueue occupies the FIFO like any job.
        let done = srv.enqueue_warm_retry(100.0, 50, 16, 0.5);
        assert!((done - 100.0 - warm).abs() < 1e-9);
        assert_eq!(srv.busy_until_us(), done);
    }

    #[test]
    #[should_panic(expected = "warm fraction")]
    fn warm_fraction_above_one_panics() {
        QpuServer::new(QpuOverheads::integrated(), 1.0, 10).warm_retry_time_us(1, 16, 1.5);
    }

    #[test]
    fn occupy_charges_non_decode_time() {
        let mut srv = QpuServer::new(QpuOverheads::integrated(), 1.0, 10);
        let t = srv.occupy_us(5.0, 100.0);
        assert!((t - 105.0).abs() < 1e-9);
        // FIFO: the next job starts after the occupancy.
        let done = srv.enqueue(0.0, 1, 16);
        assert!((done - 115.0).abs() < 1e-9);
    }

    #[test]
    fn session_cache_is_per_source() {
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_session_cache(1e9);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        let t1 = srv.enqueue_channel(0.0, 1, 0xCC, 50, 16);
        let t2 = srv.enqueue_channel(0.0, 2, 0xCC, 50, 16);
        let t3 = srv.enqueue_channel(0.0, 1, 0xCC, 50, 16);
        assert!((t1 - full).abs() < 1e-9);
        assert!(
            (t2 - t1 - full).abs() < 1e-9,
            "source 2 programs its own session even at an equal hash"
        );
        assert!((t3 - t2 - amortized).abs() < 1e-9);
        assert_eq!(srv.session_cache().unwrap().len(), 2);
    }

    #[test]
    fn channel_hash_is_stable_and_sensitive() {
        use quamax_linalg::Complex;
        let h = CMatrix::from_fn(3, 2, |r, c| Complex::new(r as f64, c as f64));
        assert_eq!(channel_hash(&h), channel_hash(&h.clone()));
        let mut h2 = h.clone();
        h2[(1, 1)] += Complex::real(1e-12);
        assert_ne!(
            channel_hash(&h),
            channel_hash(&h2),
            "any tap change re-keys"
        );
        // Shape participates: a 2×3 of the same data is a different key.
        let wide = CMatrix::from_fn(2, 3, |r, c| Complex::new(r as f64, c as f64));
        assert_ne!(channel_hash(&h), channel_hash(&wide));
    }

    #[test]
    fn directions_never_alias_in_the_session_cache() {
        use quamax_linalg::Complex;
        // Regression: an uplink DetectorSession and a downlink
        // PrecoderSession compiled from the *same* channel estimate
        // must key differently, or a cache hit would hand the decoder
        // a precoding program (and vice versa).
        let h = CMatrix::from_fn(4, 4, |r, c| Complex::new(r as f64 + 1.0, c as f64));
        let up = channel_hash_directed(&h, JobDirection::Uplink);
        let down = channel_hash_directed(&h, JobDirection::Downlink);
        assert_ne!(up, down, "directions must not alias");
        assert_eq!(
            up,
            channel_hash(&h),
            "uplink rekey is the identity (legacy keys unchanged)"
        );
        assert_eq!(down, JobDirection::Downlink.rekey(channel_hash(&h)));
        // Through a real cache: the downlink lookup after an uplink
        // program is a miss, never a hit.
        let mut cache = SessionCache::new(1e9);
        assert!(!cache.lookup(0.0, 7, up), "first sight programs");
        assert!(cache.lookup(0.0, 7, up), "same direction hits");
        assert!(
            !cache.lookup(0.0, 7, down),
            "opposite direction on the same H must reprogram"
        );
        assert_eq!(JobDirection::default(), JobDirection::Uplink);
        assert_eq!(JobDirection::Uplink.name(), "uplink");
        assert_eq!(JobDirection::Downlink.name(), "downlink");
    }

    #[test]
    fn enqueue_channel_without_cache_degrades_to_keyed() {
        let mut cached = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(4);
        let mut plain = cached.clone();
        let a = cached.enqueue_channel(0.0, 3, 0xDD, 50, 16);
        let b = plain.enqueue_keyed(0.0, 3, 50, 16);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn stage_breakdown_sums_to_service_time_and_never_charges_unembed() {
        let srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10);
        for (problems, vars, program) in [(50, 16, true), (50, 16, false), (1, 60, true)] {
            let b = srv.stage_breakdown(problems, vars, program);
            let service = srv.amortized_service_time_us(problems, vars, program);
            assert!(
                (b.program_us + b.anneal_us + b.readout_us - service).abs() < 1e-6,
                "charged stages must reproduce the service model"
            );
            assert!(b.unembed_us > 0.0, "unembed is reported");
        }
        assert_eq!(srv.stage_breakdown(50, 16, false).program_us, 0.0);
    }

    #[test]
    fn telemetry_records_stages_without_touching_the_clock() {
        let t = Telemetry::enabled();
        let mut plain = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(4);
        let mut observed = plain.clone().with_telemetry(t.clone());
        for at in [0.0, 10.0, 20.0] {
            let a = plain.enqueue_keyed(at, 3, 50, 16);
            let b = observed.enqueue_keyed(at, 3, 50, 16);
            assert_eq!(a, b, "recording must not perturb completion times");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("quamax_qpu_jobs_total"), 3);
        assert_eq!(
            snap.counter(
                "quamax_qpu_programs_total",
                &[("cell", "3"), ("kind", "cold")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "quamax_qpu_programs_total",
                &[("cell", "3"), ("kind", "cached")]
            ),
            Some(2)
        );
        let queue = snap
            .histogram("quamax_qpu_queue_wait_us", &[("cell", "3")])
            .unwrap();
        assert_eq!(queue.count, 3);
        assert!(queue.max > 0.0, "later frames queue behind the first");
    }

    #[test]
    fn bigger_problems_tile_less_and_cost_more() {
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 10);
        let small = srv.service_time_us(50, 16);
        let large = srv.service_time_us(50, 60);
        assert!(large > small);
    }
}
