//! The data-center QPU as a queueing server.
//!
//! Service time for one frame's worth of subcarrier problems:
//!
//! ```text
//! t = preprocessing + programming
//!   + ⌈problems / P_f⌉ · (Na·(Ta+Tp) + Na·readout)
//! ```
//!
//! where `P_f` is the geometric parallelization factor of the problem
//! size on the chip. The three overhead terms are the §7 numbers
//! (≈30–50 ms preprocessing, 6–8 ms programming, 0.125 ms readout per
//! anneal) — "well beyond the processing time available for wireless
//! technologies" today, but "not of a fundamental nature". Toggling
//! [`QpuOverheads::integrated`] models the engineering-integrated
//! device the paper envisions.

use quamax_chimera::parallelization;

/// The non-compute overhead stack of a QA job (§7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QpuOverheads {
    /// Host-side preprocessing per job, µs.
    pub preprocessing_us: f64,
    /// Chip programming per job, µs.
    pub programming_us: f64,
    /// Readout per anneal, µs.
    pub readout_per_anneal_us: f64,
}

impl QpuOverheads {
    /// Today's DW2Q overheads (midpoints of the §7 ranges).
    pub fn current_dw2q() -> Self {
        QpuOverheads {
            preprocessing_us: 40_000.0,
            programming_us: 7_000.0,
            readout_per_anneal_us: 125.0,
        }
    }

    /// The integrated future system: overheads engineered away.
    pub fn integrated() -> Self {
        QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 0.0,
            readout_per_anneal_us: 0.0,
        }
    }
}

/// A QPU serving decode jobs FIFO.
///
/// With [`QpuServer::with_coherence`], the server models the
/// *compile-once decode session*: the channel `H` (and hence the
/// embedded, programmed problem structure) is constant over a
/// coherence interval, so host preprocessing and chip programming are
/// paid once per interval per access point, while every frame still
/// pays its own anneal cycles and per-anneal readout. This is the §7
/// overhead stack under the batching the hybrid-structures follow-up
/// work identifies as the crux of meeting wireless deadlines.
#[derive(Clone, Debug)]
pub struct QpuServer {
    overheads: QpuOverheads,
    /// Per-anneal cycle time `Ta + Tp`, µs.
    cycle_us: f64,
    /// Anneals per problem.
    anneals: usize,
    /// Frames per compiled session (per source key); 1 = reprogram
    /// every frame (the historical per-job model).
    coherence_frames: usize,
    /// Frames served so far per source key (to know which frames fall
    /// on a session boundary and pay the programming overhead).
    frames_served: Vec<(usize, usize)>,
    /// Time at which the server frees up (simulation clock, µs).
    busy_until_us: f64,
}

impl QpuServer {
    /// A server with the given schedule cost and anneal budget,
    /// reprogramming on every frame.
    pub fn new(overheads: QpuOverheads, cycle_us: f64, anneals: usize) -> Self {
        assert!(
            cycle_us > 0.0 && anneals > 0,
            "need positive cycle and anneal count"
        );
        QpuServer {
            overheads,
            cycle_us,
            anneals,
            coherence_frames: 1,
            frames_served: Vec::new(),
            busy_until_us: 0.0,
        }
    }

    /// Amortizes preprocessing + programming over `frames` consecutive
    /// frames per source (the coherence-interval session length, in
    /// frames).
    ///
    /// # Panics
    /// Panics when `frames` is zero.
    pub fn with_coherence(mut self, frames: usize) -> Self {
        assert!(frames > 0, "a session covers at least one frame");
        self.coherence_frames = frames;
        self
    }

    /// Service time for one frame: `problems` subcarrier decodes of
    /// `logical_vars` variables each, including the full per-job
    /// overhead stack (the first frame of a session).
    pub fn service_time_us(&self, problems: usize, logical_vars: usize) -> f64 {
        self.amortized_service_time_us(problems, logical_vars, true)
    }

    /// Service time for one frame, charging preprocessing + programming
    /// only when `program` is set (the session-boundary frame); later
    /// frames of a compiled session pay anneals and readout only.
    pub fn amortized_service_time_us(
        &self,
        problems: usize,
        logical_vars: usize,
        program: bool,
    ) -> f64 {
        let pf = parallelization(logical_vars).max(1);
        let batches = problems.div_ceil(pf) as f64;
        let per_batch =
            self.anneals as f64 * (self.cycle_us + self.overheads.readout_per_anneal_us);
        let overhead = if program {
            self.overheads.preprocessing_us + self.overheads.programming_us
        } else {
            0.0
        };
        overhead + batches * per_batch
    }

    /// Enqueues a frame arriving at `now_us`; returns its completion
    /// time. FIFO: the job starts when the server frees up.
    pub fn enqueue(&mut self, now_us: f64, problems: usize, logical_vars: usize) -> f64 {
        self.enqueue_keyed(now_us, 0, problems, logical_vars)
    }

    /// Enqueues a frame from source `key` (e.g. an access-point id):
    /// each source reprograms on its own coherence boundaries, since
    /// different sources see different channels.
    pub fn enqueue_keyed(
        &mut self,
        now_us: f64,
        key: usize,
        problems: usize,
        logical_vars: usize,
    ) -> f64 {
        let served = match self.frames_served.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => {
                let s = *n;
                *n += 1;
                s
            }
            None => {
                self.frames_served.push((key, 1));
                0
            }
        };
        let program = served % self.coherence_frames == 0;
        let start = now_us.max(self.busy_until_us);
        let done = start + self.amortized_service_time_us(problems, logical_vars, program);
        self.busy_until_us = done;
        done
    }

    /// Resets the server clock and session state (new simulation).
    pub fn reset(&mut self) {
        self.busy_until_us = 0.0;
        self.frames_served.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_service_is_pure_compute() {
        // 16-var problems tile > 20× (paper §4): 50 subcarriers fit in
        // ⌈50/24⌉ = 3 batches… use the actual factor.
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 50);
        let pf = parallelization(16).max(1);
        let batches = 50usize.div_ceil(pf) as f64;
        let t = srv.service_time_us(50, 16);
        assert!((t - batches * 50.0 * 2.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn current_overheads_dominate() {
        let srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 50);
        let t = srv.service_time_us(50, 16);
        // ≥ 47 ms of fixed overhead plus 6.25 ms readout per batch:
        // today's stack busts every wireless deadline (§7's point).
        assert!(t > 40_000.0, "t={t}");
        let integrated =
            QpuServer::new(QpuOverheads::integrated(), 2.0, 50).service_time_us(50, 16);
        assert!(t > 100.0 * integrated);
    }

    #[test]
    fn fifo_queueing() {
        let mut srv = QpuServer::new(QpuOverheads::integrated(), 1.0, 10);
        let t1 = srv.enqueue(0.0, 1, 16); // 10 µs of anneals
        let t2 = srv.enqueue(0.0, 1, 16); // queued behind job 1
        assert!((t1 - 10.0).abs() < 1e-9);
        assert!((t2 - 20.0).abs() < 1e-9);
        // A job arriving after the queue drains starts immediately.
        let t3 = srv.enqueue(100.0, 1, 16);
        assert!((t3 - 110.0).abs() < 1e-9);
        srv.reset();
        assert!((srv.enqueue(0.0, 1, 16) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coherence_sessions_amortize_programming() {
        // 4-frame sessions: frames 0 and 4 pay the overhead stack,
        // frames 1–3 pay anneals + readout only.
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(4);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        assert!((full - amortized - 47_000.0).abs() < 1e-9);

        let mut last = 0.0;
        let mut costs = Vec::new();
        for _ in 0..5 {
            let done = srv.enqueue(last, 50, 16);
            costs.push(done - last);
            last = done;
        }
        assert!((costs[0] - full).abs() < 1e-9, "first frame programs");
        for c in &costs[1..4] {
            assert!(
                (c - amortized).abs() < 1e-9,
                "mid-session frame reprogrammed"
            );
        }
        assert!((costs[4] - full).abs() < 1e-9, "new interval reprograms");
    }

    #[test]
    fn coherence_boundaries_are_per_source() {
        // Two APs interleaved: each pays programming on its own first
        // frame, not on the other's.
        let mut srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 10).with_coherence(100);
        let full = srv.amortized_service_time_us(50, 16, true);
        let amortized = srv.amortized_service_time_us(50, 16, false);
        let t1 = srv.enqueue_keyed(0.0, 7, 50, 16);
        let t2 = srv.enqueue_keyed(0.0, 8, 50, 16);
        let t3 = srv.enqueue_keyed(0.0, 7, 50, 16);
        assert!((t1 - full).abs() < 1e-9);
        assert!((t2 - t1 - full).abs() < 1e-9, "AP 8's first frame programs");
        assert!(
            (t3 - t2 - amortized).abs() < 1e-9,
            "AP 7's session continues"
        );
        srv.reset();
        assert!((srv.enqueue_keyed(0.0, 7, 50, 16) - full).abs() < 1e-9);
    }

    #[test]
    fn bigger_problems_tile_less_and_cost_more() {
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 10);
        let small = srv.service_time_us(50, 16);
        let large = srv.service_time_us(50, 60);
        assert!(large > small);
    }
}
