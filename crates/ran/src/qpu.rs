//! The data-center QPU as a queueing server.
//!
//! Service time for one frame's worth of subcarrier problems:
//!
//! ```text
//! t = preprocessing + programming
//!   + ⌈problems / P_f⌉ · (Na·(Ta+Tp) + Na·readout)
//! ```
//!
//! where `P_f` is the geometric parallelization factor of the problem
//! size on the chip. The three overhead terms are the §7 numbers
//! (≈30–50 ms preprocessing, 6–8 ms programming, 0.125 ms readout per
//! anneal) — "well beyond the processing time available for wireless
//! technologies" today, but "not of a fundamental nature". Toggling
//! [`QpuOverheads::integrated`] models the engineering-integrated
//! device the paper envisions.

use quamax_chimera::parallelization;

/// The non-compute overhead stack of a QA job (§7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QpuOverheads {
    /// Host-side preprocessing per job, µs.
    pub preprocessing_us: f64,
    /// Chip programming per job, µs.
    pub programming_us: f64,
    /// Readout per anneal, µs.
    pub readout_per_anneal_us: f64,
}

impl QpuOverheads {
    /// Today's DW2Q overheads (midpoints of the §7 ranges).
    pub fn current_dw2q() -> Self {
        QpuOverheads {
            preprocessing_us: 40_000.0,
            programming_us: 7_000.0,
            readout_per_anneal_us: 125.0,
        }
    }

    /// The integrated future system: overheads engineered away.
    pub fn integrated() -> Self {
        QpuOverheads {
            preprocessing_us: 0.0,
            programming_us: 0.0,
            readout_per_anneal_us: 0.0,
        }
    }
}

/// A QPU serving decode jobs FIFO.
#[derive(Clone, Debug)]
pub struct QpuServer {
    overheads: QpuOverheads,
    /// Per-anneal cycle time `Ta + Tp`, µs.
    cycle_us: f64,
    /// Anneals per problem.
    anneals: usize,
    /// Time at which the server frees up (simulation clock, µs).
    busy_until_us: f64,
}

impl QpuServer {
    /// A server with the given schedule cost and anneal budget.
    pub fn new(overheads: QpuOverheads, cycle_us: f64, anneals: usize) -> Self {
        assert!(
            cycle_us > 0.0 && anneals > 0,
            "need positive cycle and anneal count"
        );
        QpuServer {
            overheads,
            cycle_us,
            anneals,
            busy_until_us: 0.0,
        }
    }

    /// Service time for one frame: `problems` subcarrier decodes of
    /// `logical_vars` variables each.
    pub fn service_time_us(&self, problems: usize, logical_vars: usize) -> f64 {
        let pf = parallelization(logical_vars).max(1);
        let batches = problems.div_ceil(pf) as f64;
        let per_batch =
            self.anneals as f64 * (self.cycle_us + self.overheads.readout_per_anneal_us);
        self.overheads.preprocessing_us + self.overheads.programming_us + batches * per_batch
    }

    /// Enqueues a frame arriving at `now_us`; returns its completion
    /// time. FIFO: the job starts when the server frees up.
    pub fn enqueue(&mut self, now_us: f64, problems: usize, logical_vars: usize) -> f64 {
        let start = now_us.max(self.busy_until_us);
        let done = start + self.service_time_us(problems, logical_vars);
        self.busy_until_us = done;
        done
    }

    /// Resets the server clock (new simulation).
    pub fn reset(&mut self) {
        self.busy_until_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_service_is_pure_compute() {
        // 16-var problems tile > 20× (paper §4): 50 subcarriers fit in
        // ⌈50/24⌉ = 3 batches… use the actual factor.
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 50);
        let pf = parallelization(16).max(1);
        let batches = 50usize.div_ceil(pf) as f64;
        let t = srv.service_time_us(50, 16);
        assert!((t - batches * 50.0 * 2.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn current_overheads_dominate() {
        let srv = QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 50);
        let t = srv.service_time_us(50, 16);
        // ≥ 47 ms of fixed overhead plus 6.25 ms readout per batch:
        // today's stack busts every wireless deadline (§7's point).
        assert!(t > 40_000.0, "t={t}");
        let integrated =
            QpuServer::new(QpuOverheads::integrated(), 2.0, 50).service_time_us(50, 16);
        assert!(t > 100.0 * integrated);
    }

    #[test]
    fn fifo_queueing() {
        let mut srv = QpuServer::new(QpuOverheads::integrated(), 1.0, 10);
        let t1 = srv.enqueue(0.0, 1, 16); // 10 µs of anneals
        let t2 = srv.enqueue(0.0, 1, 16); // queued behind job 1
        assert!((t1 - 10.0).abs() < 1e-9);
        assert!((t2 - 20.0).abs() < 1e-9);
        // A job arriving after the queue drains starts immediately.
        let t3 = srv.enqueue(100.0, 1, 16);
        assert!((t3 - 110.0).abs() < 1e-9);
        srv.reset();
        assert!((srv.enqueue(0.0, 1, 16) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_problems_tile_less_and_cost_more() {
        let srv = QpuServer::new(QpuOverheads::integrated(), 2.0, 10);
        let small = srv.service_time_us(50, 16);
        let large = srv.service_time_us(50, 60);
        assert!(large > small);
    }
}
