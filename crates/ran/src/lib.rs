//! Centralized RAN substrate (§1, §7).
//!
//! QuAMax's deployment story is a C-RAN: access points forward uplink
//! samples over low-latency fronthaul to a data center where physical-
//! layer processing is aggregated — and where a QPU sits next to the
//! CPU pool. This crate models that system far enough to ask the
//! paper's §7 question quantitatively: *with which overheads does QA
//! decoding meet wireless deadlines?*
//!
//! * [`topology`] — APs, their load (users, modulation, subcarriers),
//!   fronthaul latency, and the radio-technology deadlines the paper
//!   quotes (tens of µs for Wi-Fi ACKs, 3 ms LTE HARQ, 10 ms WCDMA);
//! * [`qpu`] — a QPU server with the paper's measured overhead stack
//!   (≈40 ms preprocessing, ≈7 ms programming, 0.125 ms readout per
//!   anneal) that can be toggled off to model the paper's envisioned
//!   integrated system;
//! * [`cpu`] — a multi-core CPU pool running the classical baselines
//!   (ZF or Sphere-Decoder service times from `baselines::timing`);
//! * [`hybrid`] — the classical-first server of the HotNets '20
//!   follow-on structure: the CPU pool decodes everything, the QPU
//!   re-decodes only the residual-flagged fallback fraction per AP;
//! * [`sim`] — a deterministic discrete-event simulation dispatching
//!   per-subcarrier decode jobs to any of the servers and scoring
//!   deadline compliance;
//! * [`coded`] — the join of the timing world and the BER world:
//!   every simulated frame is also decoded through the soft-output
//!   coded pipeline (`quamax_core::coded`), and the report is **coded
//!   goodput** — payload that arrived both on time and error-free,
//!   hard-input vs soft-input Viterbi side by side.
//!
//! Programming amortization is modeled two ways on the QPU server:
//! frame-counted coherence ([`QpuServer::with_coherence`]) and a
//! per-AP *session cache keyed by channel hash*
//! ([`QpuServer::with_session_cache`] + [`qpu::channel_hash`]), which
//! evicts on coherence expiry and reprograms exactly when an AP's
//! channel actually changes.
//!
//! # DESIGN §Resilience
//!
//! A deployed annealer-backed BBU pool degrades in ways the fair-
//! weather pipeline above never sees: chains decohere in storms, the
//! analog control drifts off calibration (`IceModel::excursion`),
//! programming cycles fail, hosts stall, workers crash.
//! The resilience subsystem spans four modules, device layer to
//! serving layer:
//!
//! * [`fault`] — a seeded, deterministic [`FaultPlan`]: one SplitMix64
//!   draw per `(worker, job, attempt)` triple classified against per-
//!   class rates, so degraded runs are bit-reproducible and the
//!   guarded-vs-unguarded comparison is fair (first attempts see the
//!   same faults either way). Each [`FaultClass`] maps onto a real
//!   device hook via [`FaultPlan::degradation`] →
//!   `quamax_anneal::AnnealDegradation` (chain-break storms flip chain
//!   qubits post-readout; drift rides `IceModel::scaled`). The
//!   [`ServeError`] taxonomy classifies every failure as transient or
//!   permanent so callers decide instead of panicking.
//! * [`retry`] — deadline-aware [`RetryPolicy`]: exponential backoff
//!   with deterministic seeded jitter, *funded by deadline slack* (the
//!   PR-5 `IddBudget` pattern — a retry that cannot land before the
//!   frame's deadline is never scheduled). QuAMax retries after a
//!   storm/drift are **warm**: the failed attempt's best candidate
//!   seeds a `decode_reverse_from` reverse anneal at
//!   [`RetryPolicy::warm_fraction`] of a cold job's anneal bill.
//! * [`breaker`] — a per-worker [`CircuitBreaker`] (closed → open
//!   after K consecutive failures → half-open probe), which turns
//!   per-job fault handling into per-worker degradation handling.
//! * [`serve`] — the [`ResilientServer`]: validation, recorded
//!   priority-class load shedding ([`ShedPolicy`], never a silent
//!   drop), least-loaded healthy-worker routing, the retry loop, and
//!   the escalation ladder QPU → hybrid → classical. The [`Ledger`]
//!   conserves `submitted == completed + shed + failed`, and with a
//!   quiet plan the guarded path is *bit-identical* to plain
//!   [`QpuServer`] dispatch — guardrails price zero in fair weather.
//!
//! [`sim::Server::Resilient`] drives it end to end; frame fates are
//! recorded per frame as [`sim::FrameOutcome`] and the
//! `bench_resilience` binary sweeps fault rate × guardrails.

pub mod breaker;
pub mod coded;
pub mod cpu;
pub mod fault;
pub mod hybrid;
pub mod qpu;
pub mod retry;
pub mod serve;
pub mod sim;
pub mod topology;

pub use breaker::{BreakerState, CircuitBreaker};
pub use coded::{CodedIddReport, CodedUplink, CodedUplinkReport, IddBudget};
pub use cpu::{CpuPolicy, CpuPool};
pub use fault::{FaultClass, FaultCounters, FaultPlan, FaultRates, ServeError};
pub use hybrid::HybridServer;
pub use qpu::{channel_hash, CacheStats, QpuOverheads, QpuServer, SessionCache};
pub use retry::RetryPolicy;
pub use serve::{
    Guardrails, Job, Ledger, Priority, ResilientServer, ServeRung, Served, ShedPolicy,
};
pub use sim::{FrameOutcome, FrameRecord, Server, SimReport, Simulation};
pub use topology::{AccessPoint, Deadline, FronthaulConfig};
