//! Centralized RAN substrate (§1, §7).
//!
//! QuAMax's deployment story is a C-RAN: access points forward uplink
//! samples over low-latency fronthaul to a data center where physical-
//! layer processing is aggregated — and where a QPU sits next to the
//! CPU pool. This crate models that system far enough to ask the
//! paper's §7 question quantitatively: *with which overheads does QA
//! decoding meet wireless deadlines?*
//!
//! * [`topology`] — APs, their load (users, modulation, subcarriers),
//!   fronthaul latency, and the radio-technology deadlines the paper
//!   quotes (tens of µs for Wi-Fi ACKs, 3 ms LTE HARQ, 10 ms WCDMA);
//! * [`qpu`] — a QPU server with the paper's measured overhead stack
//!   (≈40 ms preprocessing, ≈7 ms programming, 0.125 ms readout per
//!   anneal) that can be toggled off to model the paper's envisioned
//!   integrated system;
//! * [`cpu`] — a multi-core CPU pool running the classical baselines
//!   (ZF or Sphere-Decoder service times from `baselines::timing`);
//! * [`hybrid`] — the classical-first server of the HotNets '20
//!   follow-on structure: the CPU pool decodes everything, the QPU
//!   re-decodes only the residual-flagged fallback fraction per AP;
//! * [`sim`] — a deterministic discrete-event simulation dispatching
//!   per-subcarrier decode jobs to any of the servers and scoring
//!   deadline compliance;
//! * [`coded`] — the join of the timing world and the BER world:
//!   every simulated frame is also decoded through the soft-output
//!   coded pipeline (`quamax_core::coded`), and the report is **coded
//!   goodput** — payload that arrived both on time and error-free,
//!   hard-input vs soft-input Viterbi side by side.
//!
//! Programming amortization is modeled two ways on the QPU server:
//! frame-counted coherence ([`QpuServer::with_coherence`]) and a
//! per-AP *session cache keyed by channel hash*
//! ([`QpuServer::with_session_cache`] + [`qpu::channel_hash`]), which
//! evicts on coherence expiry and reprograms exactly when an AP's
//! channel actually changes.

pub mod coded;
pub mod cpu;
pub mod hybrid;
pub mod qpu;
pub mod sim;
pub mod topology;

pub use coded::{CodedIddReport, CodedUplink, CodedUplinkReport, IddBudget};
pub use cpu::{CpuPolicy, CpuPool};
pub use hybrid::HybridServer;
pub use qpu::{channel_hash, QpuOverheads, QpuServer, SessionCache};
pub use sim::{FrameRecord, Server, SimReport, Simulation};
pub use topology::{AccessPoint, Deadline, FronthaulConfig};
