//! Centralized RAN substrate (§1, §7).
//!
//! QuAMax's deployment story is a C-RAN: access points forward uplink
//! samples over low-latency fronthaul to a data center where physical-
//! layer processing is aggregated — and where a QPU sits next to the
//! CPU pool. This crate models that system far enough to ask the
//! paper's §7 question quantitatively: *with which overheads does QA
//! decoding meet wireless deadlines?*
//!
//! * [`topology`] — APs, their load (users, modulation, subcarriers),
//!   fronthaul latency, and the radio-technology deadlines the paper
//!   quotes (tens of µs for Wi-Fi ACKs, 3 ms LTE HARQ, 10 ms WCDMA);
//! * [`qpu`] — a QPU server with the paper's measured overhead stack
//!   (≈40 ms preprocessing, ≈7 ms programming, 0.125 ms readout per
//!   anneal) that can be toggled off to model the paper's envisioned
//!   integrated system;
//! * [`cpu`] — a multi-core CPU pool running the classical baselines
//!   (ZF or Sphere-Decoder service times from `baselines::timing`);
//! * [`hybrid`] — the classical-first server of the HotNets '20
//!   follow-on structure: the CPU pool decodes everything, the QPU
//!   re-decodes only the residual-flagged fallback fraction per AP;
//! * [`sim`] — a deterministic discrete-event simulation dispatching
//!   per-subcarrier decode jobs to any of the servers and scoring
//!   deadline compliance;
//! * [`coded`] — the join of the timing world and the BER world:
//!   every simulated frame is also decoded through the soft-output
//!   coded pipeline (`quamax_core::coded`), and the report is **coded
//!   goodput** — payload that arrived both on time and error-free,
//!   hard-input vs soft-input Viterbi side by side.
//!
//! Programming amortization is modeled two ways on the QPU server:
//! frame-counted coherence ([`QpuServer::with_coherence`]) and a
//! per-AP *session cache keyed by channel hash*
//! ([`QpuServer::with_session_cache`] + [`qpu::channel_hash`]), which
//! evicts on coherence expiry and reprograms exactly when an AP's
//! channel actually changes.
//!
//! # DESIGN §Resilience
//!
//! A deployed annealer-backed BBU pool degrades in ways the fair-
//! weather pipeline above never sees: chains decohere in storms, the
//! analog control drifts off calibration (`IceModel::excursion`),
//! programming cycles fail, hosts stall, workers crash.
//! The resilience subsystem spans four modules, device layer to
//! serving layer:
//!
//! * [`fault`] — a seeded, deterministic [`FaultPlan`]: one SplitMix64
//!   draw per `(worker, job, attempt)` triple classified against per-
//!   class rates, so degraded runs are bit-reproducible and the
//!   guarded-vs-unguarded comparison is fair (first attempts see the
//!   same faults either way). Each [`FaultClass`] maps onto a real
//!   device hook via [`FaultPlan::degradation`] →
//!   `quamax_anneal::AnnealDegradation` (chain-break storms flip chain
//!   qubits post-readout; drift rides `IceModel::scaled`). The
//!   [`ServeError`] taxonomy classifies every failure as transient or
//!   permanent so callers decide instead of panicking.
//! * [`retry`] — deadline-aware [`RetryPolicy`]: exponential backoff
//!   with deterministic seeded jitter, *funded by deadline slack* (the
//!   PR-5 `IddBudget` pattern — a retry that cannot land before the
//!   frame's deadline is never scheduled). QuAMax retries after a
//!   storm/drift are **warm**: the failed attempt's best candidate
//!   seeds a `decode_reverse_from` reverse anneal at
//!   [`RetryPolicy::warm_fraction`] of a cold job's anneal bill.
//! * [`breaker`] — a per-worker [`CircuitBreaker`] (closed → open
//!   after K consecutive failures → half-open probe), which turns
//!   per-job fault handling into per-worker degradation handling.
//! * [`serve`] — the [`ResilientServer`]: validation, recorded
//!   priority-class load shedding ([`ShedPolicy`], never a silent
//!   drop), least-loaded healthy-worker routing, the retry loop, and
//!   the escalation ladder QPU → hybrid → classical. The [`Ledger`]
//!   conserves `submitted == completed + shed + failed`, and with a
//!   quiet plan the guarded path is *bit-identical* to plain
//!   [`QpuServer`] dispatch — guardrails price zero in fair weather.
//!
//! [`sim::Server::Resilient`] drives it end to end; frame fates are
//! recorded per frame as [`sim::FrameOutcome`] and the
//! `bench_resilience` binary sweeps fault rate × guardrails.
//!
//! # DESIGN §Scheduling
//!
//! PR 6's serving layer still took jobs one frame at a time: no queue,
//! no batching, no notion of what a decode costs. The scheduling
//! subsystem adds the C-RAN brain in four modules, split so that
//! *bookkeeping*, *policy*, *workload*, and *economics* never mix:
//!
//! * [`broker`] — the front door: per-cell FIFO queues and the job
//!   lifecycle `Submitted → Queued → Batched → Running → {Completed,
//!   Shed, Failed}` with a conserved per-state [`broker::Census`]. The
//!   broker holds no policy — it guarantees only that every job is in
//!   exactly one state and every transition is legal.
//! * [`sched`] — the policy: [`BatchScheduler`] coalesces jobs sharing
//!   `(cell, channel-hash, problem shape)` into batches that tile one
//!   chip ([`quamax_chimera::parallelization`] ≈ 24 for 16-variable
//!   problems), **closing a batch when it is full or when the earliest
//!   member deadline's slack minus the projected service time (reserved-
//!   worker queue wait + anneal waves) hits zero**. Projections are
//!   conservative — measured wait only drains with time — so a rule-
//!   closed batch never projects past its earliest deadline while
//!   slack was available (tested property). Open batches *reserve*
//!   their projected service on a preferred worker so shedding,
//!   placement, and other batches see load that is about to exist
//!   (the shared estimate of [`ResilientServer::queue_depth_us`]);
//!   placement is session-cache-aware. Policies: `Fifo` (batch-of-1,
//!   bit-identical to unbrokered [`ResilientServer::submit`] — tested),
//!   `DeadlineBatch`, and `CostAware` (routes slack-rich batches to
//!   the classical floor when cheaper under the deadline).
//! * [`load`] — seeded deterministic synthetic traffic: per-cell
//!   nonhomogeneous Poisson (diurnal sinusoid × Markov-modulated
//!   bursts) over a heterogeneous [`load::MixClass`] user mix, with
//!   counted SplitMix64 streams per cell so traces are bit-identical
//!   across runs and cells are independent (both tested).
//! * [`cost`] — the Kasi et al. (arXiv:2109.01465) NextG price book:
//!   amortized capex + wall power per rung-microsecond, $/decode and
//!   W/decode, and the annealers-per-datacenter sizing rule. The
//!   parameter table lives in the [`cost`] module docs.
//!
//! [`sim::Server::Brokered`] drives the whole stack inside the uplink
//! simulation; the `bench_serve` binary sweeps offered load × policy
//! and writes `BENCH_serve.json`.
//!
//! # DESIGN §Full duplex
//!
//! One QPU pool serves *both* air-interface directions: uplink frames
//! need ML detection (`quamax_core::detect`), downlink frames need VPP
//! precoding (`quamax_core::precode`) — different programmed problems
//! compiled from the *same* per-cell channel. The
//! [`qpu::JobDirection`] dimension threads through every layer:
//!
//! * **Session keying** — [`qpu::channel_hash_directed`] folds the
//!   direction into the channel hash ([`qpu::JobDirection::rekey`]:
//!   uplink is the identity, downlink XORs a fixed tag), so an uplink
//!   `DetectorSession` and a downlink `PrecoderSession` compiled from
//!   the same channel estimate never alias in a [`SessionCache`].
//! * **Batching** — [`UserJob`]/[`Job`] carry their direction and the
//!   [`BatchScheduler`] refuses to coalesce across it: a batch tiles
//!   one programmed problem, and detection and precoding are never the
//!   same problem (tested: `batches_never_mix_directions`).
//! * **Shape** — a downlink [`AccessPoint`]/[`MixClass`] sizes its
//!   problems as `4·Nu` logical variables (2·Nu real perturbation
//!   dimensions × 1 magnitude + 1 sign bit), vs `Nu·log₂|O|` uplink.
//! * **Workload** — [`LoadGen::full_duplex`] splits each metro class
//!   into an uplink and a downlink stream by a per-cell ratio (bit-
//!   identical to `metro` at ratio 0), and a full-duplex cell in
//!   [`sim`] is two `AccessPoint`s sharing an id with opposite
//!   directions. The `bench_vpp` binary closes the loop: BER-vs-SNR
//!   for annealed VPP vs ZF/THP, and scheduler deadline rates under
//!   the mixed load, written to `BENCH_vpp.json`.
//!
//! # DESIGN §Observability
//!
//! Every layer above records into the `quamax_telemetry` registry —
//! a [`Telemetry`] handle that is a one-branch no-op when disabled
//! and, crucially, **keyed on simulated time only**: recording reads
//! no wall clock and draws no randomness, so every bit-identity
//! contract in this crate (Fifo replay, zero-fault identity, seeded
//! determinism) holds with telemetry on (tested: contract 8 in
//! `tests/properties.rs`). The naming scheme, label-cardinality
//! rules, histogram mechanics, and exporter formats are documented in
//! the `quamax_telemetry` crate; attach a handle with
//! [`Simulation::with_telemetry`] (it fans out through the serving
//! stack) or per component via `with_telemetry`/`set_telemetry`.
//!
//! Metrics emitted by this crate:
//!
//! | series | type | labels | recorded |
//! |---|---|---|---|
//! | `quamax_qpu_program_us` | histogram | `cell` | per enqueue ([`qpu::StageBreakdown`]) |
//! | `quamax_qpu_anneal_us` | histogram | `cell` | per enqueue |
//! | `quamax_qpu_readout_us` | histogram | `cell` | per enqueue |
//! | `quamax_qpu_unembed_us` | histogram | `cell` | per enqueue (reported-only, never charged) |
//! | `quamax_qpu_queue_wait_us` | histogram | `cell` | span: arrival → service start |
//! | `quamax_qpu_warm_retry_us` | histogram | — | warm reverse-anneal restarts |
//! | `quamax_qpu_occupancy_us` | histogram | — | stall/occupancy charges |
//! | `quamax_qpu_jobs_total` | counter | `cell` | per enqueue |
//! | `quamax_qpu_programs_total` | counter | `cell`, `kind`=`cold`\|`cached` | session-cache outcome |
//! | `quamax_cache_{hits,misses,evictions}_total`, `quamax_cache_entries` | counter/gauge | caller labels | snapshot: [`SessionCache::publish_telemetry`] |
//! | `quamax_serve_submitted_total` | counter | `direction`, `priority` | per submit/admit |
//! | `quamax_serve_shed_total` | counter | `priority` | per shed decision |
//! | `quamax_serve_served_total` | counter | `rung` | per completed serve |
//! | `quamax_serve_retries_total` | counter | `outcome`=`funded`\|`denied` | per retry-funding decision |
//! | `quamax_serve_restarts_total` | counter | `kind`=`warm`\|`cold` | per funded retry |
//! | `quamax_serve_attempts` | histogram | — | per completed serve |
//! | `quamax_serve_ledger_total`, `quamax_serve_in_flight` | counter/gauge | `state` | snapshot: [`ResilientServer::publish_telemetry`] |
//! | `quamax_serve_faults_total` | counter | `class` | snapshot (fault-plan census) |
//! | `quamax_breaker_transitions_total` | counter | `to`=`open` | closed→open trips, event-time |
//! | `quamax_breaker_trips_total` | counter | `worker` | snapshot, per worker |
//! | `quamax_sched_batches_total` | counter | `trigger`=`full`\|`slack`\|`drain` | per dispatch |
//! | `quamax_sched_batch_occupancy` | histogram | — | per dispatch |
//! | `quamax_sched_slack_at_close_us` | histogram | — | per dispatch |
//! | `quamax_sched_reservation_us` | histogram | — | per reservation grow |
//! | `quamax_sched_open_batches` | histogram | — | per ingest |
//! | `quamax_broker_census_total`, `quamax_broker_in_flight` | counter/gauge | `state` | snapshot: [`Broker::publish_telemetry`] |
//! | `quamax_sim_frames_total` | counter | `outcome` | end of run |
//! | `quamax_sim_frame_latency_us` | histogram | `cell` | end of run, served frames |
//! | `quamax_sim_deadline_rate` | gauge | — | end of run |
//!
//! (`quamax_core_*` pipeline counters — reduce, embed, CSR freeze,
//! field refresh, anneals, unembed — live in `quamax_core::decoder`.)
//!
//! [`Telemetry`]: quamax_telemetry::Telemetry

pub mod breaker;
pub mod broker;
pub mod coded;
pub mod cost;
pub mod cpu;
pub mod fault;
pub mod hybrid;
pub mod load;
pub mod qpu;
pub mod retry;
pub mod sched;
pub mod serve;
pub mod sim;
pub mod topology;

pub use breaker::{BreakerState, CircuitBreaker};
pub use broker::{Broker, Census, JobId, JobState, UserJob};
pub use coded::{CodedIddReport, CodedUplink, CodedUplinkReport, IddBudget};
pub use cost::{CostModel, DecodeCost};
pub use cpu::{CpuPolicy, CpuPool};
pub use fault::{FaultClass, FaultCounters, FaultPlan, FaultRates, ServeError};
pub use hybrid::HybridServer;
pub use load::{BurstModel, CellProfile, DiurnalCurve, LoadGen, MixClass};
pub use qpu::{
    channel_hash, channel_hash_directed, CacheStats, JobDirection, QpuOverheads, QpuServer,
    SessionCache,
};
pub use retry::RetryPolicy;
pub use sched::{
    BatchScheduler, CloseTrigger, DispatchRecord, JobOutcome, Policy, SchedConfig, ScheduleReport,
};
pub use serve::{
    Guardrails, Job, Ledger, Priority, ResilientServer, ServeRung, Served, ShedPolicy,
};
pub use sim::{
    synthetic_channel_hash, BrokeredServer, FrameOutcome, FrameRecord, Server, SimReport,
    Simulation,
};
pub use topology::{AccessPoint, Deadline, FronthaulConfig};
