//! The hybrid classical-first data-center server.
//!
//! Models the routing structure of the HotNets '20 follow-on work (and
//! `quamax_core::detect::HybridDetector`'s decode-level counterpart)
//! at the queueing level: every subcarrier problem of a frame is first
//! decoded on the classical CPU pool; the fraction whose linear
//! residual fails the confidence policy is re-decoded on the QPU. The
//! QPU therefore sees only the hard tail of the workload — which is
//! what lets an only-partly-integrated device contribute at all: its
//! per-job overhead is paid on `⌈fallback × problems⌉` problems
//! instead of all of them, and per-AP compiled sessions
//! ([`QpuServer::with_coherence`] / session cache) amortize the
//! programming across a coherence interval of fallback batches.

use crate::cpu::CpuPool;
use crate::qpu::QpuServer;

/// A classical-first server: a [`CpuPool`] filters, a [`QpuServer`]
/// re-decodes the flagged residue.
#[derive(Clone, Debug)]
pub struct HybridServer {
    cpu: CpuPool,
    qpu: QpuServer,
    /// Expected fraction of subcarrier problems the confidence policy
    /// flags for quantum fallback (workload-dependent; the decode-level
    /// router's routing rate under the same policy).
    fallback_fraction: f64,
}

impl HybridServer {
    /// A hybrid server flagging `fallback_fraction` of each frame's
    /// problems for the QPU.
    ///
    /// # Panics
    /// Panics unless `0 ≤ fallback_fraction ≤ 1`.
    pub fn new(cpu: CpuPool, qpu: QpuServer, fallback_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fallback_fraction),
            "fallback fraction must be in [0, 1]"
        );
        HybridServer {
            cpu,
            qpu,
            fallback_fraction,
        }
    }

    /// Problems of a `problems`-subcarrier frame that go to the QPU.
    pub fn fallback_problems(&self, problems: usize) -> usize {
        (self.fallback_fraction * problems as f64).ceil() as usize
    }

    /// Enqueues one frame from source `key` arriving at `now_us`;
    /// returns the completion time of the *frame* (its last decoded
    /// problem): the classical pass over all problems, then — when the
    /// policy flags any — the quantum pass over the flagged subset,
    /// which can only start once the classical pass has priced every
    /// answer.
    pub fn enqueue_keyed(
        &mut self,
        now_us: f64,
        key: usize,
        problems: usize,
        users: usize,
        logical_vars: usize,
    ) -> f64 {
        let classical_done = self.cpu.enqueue(now_us, problems, users);
        let flagged = self.fallback_problems(problems);
        if flagged == 0 {
            return classical_done;
        }
        self.qpu
            .enqueue_keyed(classical_done, key, flagged, logical_vars)
    }

    /// Resets both servers (new simulation).
    pub fn reset(&mut self) {
        self.cpu.reset();
        self.qpu.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPolicy;
    use crate::qpu::QpuOverheads;

    fn pool() -> CpuPool {
        CpuPool::new(
            8,
            CpuPolicy::ZeroForcing {
                vectors_per_channel: 1,
            },
        )
    }

    #[test]
    fn zero_fallback_is_pure_classical() {
        let mut hybrid = HybridServer::new(
            pool(),
            QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 3),
            0.0,
        );
        let mut cpu = pool();
        let t_h = hybrid.enqueue_keyed(0.0, 0, 50, 16, 16);
        let t_c = cpu.enqueue(0.0, 50, 16);
        assert!((t_h - t_c).abs() < 1e-9);
    }

    #[test]
    fn full_fallback_serializes_both_passes() {
        let qpu = QpuServer::new(QpuOverheads::integrated(), 2.0, 3);
        let mut hybrid = HybridServer::new(pool(), qpu.clone(), 1.0);
        let mut cpu = pool();
        let t_c = cpu.enqueue(0.0, 50, 16);
        let qpu_time = qpu.service_time_us(50, 16);
        let t_h = hybrid.enqueue_keyed(0.0, 0, 50, 16, 16);
        assert!((t_h - (t_c + qpu_time)).abs() < 1e-9);
    }

    #[test]
    fn fallback_fraction_shrinks_the_quantum_pass() {
        // 10% fallback: the QPU decodes 5 of 50 problems; with a 24×
        // parallelization factor that is one batch instead of three.
        let hybrid = HybridServer::new(
            pool(),
            QpuServer::new(QpuOverheads::integrated(), 2.0, 3),
            0.1,
        );
        assert_eq!(hybrid.fallback_problems(50), 5);
        assert_eq!(hybrid.fallback_problems(0), 0);
        let all = HybridServer::new(
            pool(),
            QpuServer::new(QpuOverheads::integrated(), 2.0, 3),
            1.0,
        );
        assert_eq!(all.fallback_problems(50), 50);
    }

    #[test]
    fn reset_clears_both_backlogs() {
        let mut hybrid = HybridServer::new(
            pool(),
            QpuServer::new(QpuOverheads::integrated(), 2.0, 3),
            0.2,
        );
        let t1 = hybrid.enqueue_keyed(0.0, 0, 50, 16, 16);
        let t2 = hybrid.enqueue_keyed(0.0, 0, 50, 16, 16);
        assert!(t2 > t1);
        hybrid.reset();
        let t3 = hybrid.enqueue_keyed(0.0, 0, 50, 16, 16);
        assert!((t3 - t1).abs() < 1e-9);
    }
}
