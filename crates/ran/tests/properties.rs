//! Property and determinism tests for the resilience subsystem.
//!
//! Three contracts are pinned here:
//! 1. **Conservation** — across random fault-rate and priority mixes,
//!    the ledger balances: `submitted == completed + shed + failed`.
//!    No job is ever silently lost.
//! 2. **Determinism** — a fixed `FaultPlan` seed makes an entire
//!    degraded simulation reproducible: two runs yield an *identical*
//!    `SimReport`, frame for frame.
//! 3. **Zero-fault bit-identity** — with a quiet plan, the guarded
//!    serving path is bit-identical to today's plain `QpuServer`
//!    dispatch: the guardrails price exactly zero in fair weather.

use proptest::prelude::*;
use quamax_ran::{
    AccessPoint, CpuPolicy, CpuPool, Deadline, FaultPlan, FaultRates, FronthaulConfig, Guardrails,
    Job, Priority, QpuOverheads, QpuServer, ResilientServer, Server, Simulation,
};
use quamax_wireless::Modulation;

fn qpu() -> QpuServer {
    QpuServer::new(QpuOverheads::integrated(), 2.0, 5)
}

fn classical() -> CpuPool {
    CpuPool::new(
        8,
        CpuPolicy::ZeroForcing {
            vectors_per_channel: 1,
        },
    )
}

fn lte_ap(id: usize) -> AccessPoint {
    AccessPoint {
        id,
        users: 16,
        modulation: Modulation::Bpsk,
        subcarriers: 50,
        frame_interval_us: 1_000.0,
        deadline: Deadline::Lte,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: whatever the fault mix, the priority mix, and the
    /// guardrail configuration, every submitted job ends in exactly one
    /// of {completed, shed, failed}.
    #[test]
    fn ledger_conserves_every_job(
        seed in 0u64..1_000,
        storm in 0.0f64..0.15,
        drift in 0.0f64..0.15,
        program in 0.0f64..0.15,
        stall in 0.0f64..0.15,
        crash in 0.0f64..0.15,
        priorities in proptest::collection::vec(0u8..3, 60),
        guarded in proptest::bool::ANY,
    ) {
        let rates = FaultRates {
            chain_break_storm: storm,
            ice_drift: drift,
            programming_failure: program,
            worker_stall: stall,
            worker_crash: crash,
        };
        let guardrails = if guarded { Guardrails::on() } else { Guardrails::off() };
        let mut srv = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(seed, rates),
            guardrails,
        );
        for (k, &p) in priorities.iter().enumerate() {
            let job = Job {
                source: k % 3,
                channel_hash: None,
                problems: 1 + k % 50,
                logical_vars: 16,
                users: 16,
                deadline_us: 3_000.0,
                priority: match p {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                },
            };
            // Bursty arrivals (4 jobs per instant) so backpressure can
            // actually engage and shed.
            let _ = srv.submit(250.0 * (k / 4) as f64, &job);
        }
        let ledger = srv.ledger();
        prop_assert_eq!(ledger.submitted, priorities.len() as u64);
        prop_assert!(
            ledger.conserved(),
            "ledger leaked a job: {:?}",
            ledger
        );
        // Unguarded configs never shed and never escalate.
        if !guarded {
            prop_assert_eq!(ledger.shed, 0);
        }
    }
}

/// Same `FaultPlan` seed ⇒ byte-identical `SimReport`, including every
/// frame's outcome, attempts, and latency. This is what makes degraded
/// runs debuggable: any failure observed in a sweep can be replayed.
#[test]
fn fixed_seed_fault_injection_is_deterministic() {
    let run = || {
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(2_026, FaultRates::uniform(0.06)),
            Guardrails::on(),
        );
        Simulation::new(
            vec![lte_ap(0), lte_ap(1)],
            FronthaulConfig::default(),
            Server::Resilient(Box::new(server)),
        )
        .run(150_000.0)
    };
    let a = run();
    let b = run();
    assert!(!a.frames.is_empty());
    assert_eq!(a, b, "same seed must replay the same degraded run");
    // And a different seed gives a genuinely different run.
    let other = {
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(2_027, FaultRates::uniform(0.06)),
            Guardrails::on(),
        );
        Simulation::new(
            vec![lte_ap(0), lte_ap(1)],
            FronthaulConfig::default(),
            Server::Resilient(Box::new(server)),
        )
        .run(150_000.0)
    };
    assert_ne!(a, other, "different seeds must explore different faults");
}

/// At fault rate zero the guarded path reproduces today's simulation
/// bit for bit — with and without a session cache on the QPU.
#[test]
fn zero_faults_guarded_is_bit_identical_to_plain_qpu() {
    let overheads = QpuOverheads {
        preprocessing_us: 0.0,
        programming_us: 80.0,
        readout_per_anneal_us: 0.0,
    };
    for cached in [false, true] {
        let make_qpu = || {
            let q = QpuServer::new(overheads, 2.0, 3);
            if cached {
                q.with_session_cache(30_000.0)
            } else {
                q.with_coherence(30)
            }
        };
        let aps = || vec![lte_ap(0), lte_ap(1)];
        let plain = Simulation::new(aps(), FronthaulConfig::default(), Server::Qpu(make_qpu()))
            .run(80_000.0);
        let guarded = Simulation::new(
            aps(),
            FronthaulConfig::default(),
            Server::Resilient(Box::new(ResilientServer::new(
                vec![make_qpu()],
                classical(),
                FaultPlan::quiet(9),
                Guardrails::on(),
            ))),
        )
        .run(80_000.0);
        assert_eq!(
            plain, guarded,
            "guarded ≠ plain at zero faults (cached = {cached})"
        );
    }
}
