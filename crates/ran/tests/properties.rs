//! Property and determinism tests for the resilience and scheduling
//! subsystems.
//!
//! Contracts pinned for the resilience layer (PR 6):
//! 1. **Conservation** — across random fault-rate and priority mixes,
//!    the ledger balances: `submitted == completed + shed + failed`.
//!    No job is ever silently lost.
//! 2. **Determinism** — a fixed `FaultPlan` seed makes an entire
//!    degraded simulation reproducible: two runs yield an *identical*
//!    `SimReport`, frame for frame.
//! 3. **Zero-fault bit-identity** — with a quiet plan, the guarded
//!    serving path is bit-identical to today's plain `QpuServer`
//!    dispatch: the guardrails price exactly zero in fair weather.
//!
//! Contracts pinned for the scheduling layer (PR 7):
//! 4. **Batch-deadline safety** — the closing rule fires only once a
//!    batch's projected slack is exhausted, and no rule- or full-closed
//!    batch is ever dispatched after its earliest member deadline has
//!    already passed.
//! 5. **Load-generation determinism** — a fixed seed makes synthetic
//!    traffic bit-identical; a different seed makes it different.
//! 6. **Fifo bit-identity** — brokered batch-of-1 Fifo scheduling
//!    replays unbrokered `ResilientServer::submit` exactly, *including
//!    its fault schedule*, across random fault seeds and rates.
//! 7. **In-flight conservation** — the ledger's `batched` gauge keeps
//!    the conservation identity through admit → dispatch/shed, and a
//!    drained pipeline collapses it to the terminal identity.
//!
//! Contract pinned for the observability layer (PR 9):
//! 8. **Telemetry transparency** — a telemetry-enabled simulation is
//!    bit-identical (`SimReport` equality) to a disabled one at
//!    matched seeds, across random fault seeds, both job directions,
//!    and both the resilient and brokered serving arms: recording
//!    reads no wall clock, draws no randomness, and never feeds back
//!    into serving.

use proptest::prelude::*;
use quamax_ran::{
    AccessPoint, BatchScheduler, Broker, CloseTrigger, CpuPolicy, CpuPool, Deadline, FaultPlan,
    FaultRates, FronthaulConfig, Guardrails, Job, JobDirection, JobState, LoadGen, Policy,
    Priority, QpuOverheads, QpuServer, ResilientServer, SchedConfig, ServeError, Server,
    Simulation, UserJob,
};
use quamax_wireless::Modulation;

fn qpu() -> QpuServer {
    QpuServer::new(QpuOverheads::integrated(), 2.0, 5)
}

fn classical() -> CpuPool {
    CpuPool::new(
        8,
        CpuPolicy::ZeroForcing {
            vectors_per_channel: 1,
        },
    )
}

fn lte_ap(id: usize) -> AccessPoint {
    AccessPoint {
        id,
        users: 16,
        modulation: Modulation::Bpsk,
        direction: JobDirection::Uplink,
        subcarriers: 50,
        frame_interval_us: 1_000.0,
        deadline: Deadline::Lte,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: whatever the fault mix, the priority mix, and the
    /// guardrail configuration, every submitted job ends in exactly one
    /// of {completed, shed, failed}.
    #[test]
    fn ledger_conserves_every_job(
        seed in 0u64..1_000,
        storm in 0.0f64..0.15,
        drift in 0.0f64..0.15,
        program in 0.0f64..0.15,
        stall in 0.0f64..0.15,
        crash in 0.0f64..0.15,
        priorities in proptest::collection::vec(0u8..3, 60),
        guarded in proptest::bool::ANY,
    ) {
        let rates = FaultRates {
            chain_break_storm: storm,
            ice_drift: drift,
            programming_failure: program,
            worker_stall: stall,
            worker_crash: crash,
        };
        let guardrails = if guarded { Guardrails::on() } else { Guardrails::off() };
        let mut srv = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(seed, rates),
            guardrails,
        );
        for (k, &p) in priorities.iter().enumerate() {
            let job = Job {
                source: k % 3,
                direction: JobDirection::Uplink,
                channel_hash: None,
                problems: 1 + k % 50,
                logical_vars: 16,
                users: 16,
                deadline_us: 3_000.0,
                priority: match p {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                },
            };
            // Bursty arrivals (4 jobs per instant) so backpressure can
            // actually engage and shed.
            let _ = srv.submit(250.0 * (k / 4) as f64, &job);
        }
        let ledger = srv.ledger();
        prop_assert_eq!(ledger.submitted, priorities.len() as u64);
        prop_assert!(
            ledger.conserved(),
            "ledger leaked a job: {:?}",
            ledger
        );
        // Unguarded configs never shed and never escalate.
        if !guarded {
            prop_assert_eq!(ledger.shed, 0);
        }
    }
}

/// Same `FaultPlan` seed ⇒ byte-identical `SimReport`, including every
/// frame's outcome, attempts, and latency. This is what makes degraded
/// runs debuggable: any failure observed in a sweep can be replayed.
#[test]
fn fixed_seed_fault_injection_is_deterministic() {
    let run = || {
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(2_026, FaultRates::uniform(0.06)),
            Guardrails::on(),
        );
        Simulation::new(
            vec![lte_ap(0), lte_ap(1)],
            FronthaulConfig::default(),
            Server::Resilient(Box::new(server)),
        )
        .run(150_000.0)
    };
    let a = run();
    let b = run();
    assert!(!a.frames.is_empty());
    assert_eq!(a, b, "same seed must replay the same degraded run");
    // And a different seed gives a genuinely different run.
    let other = {
        let server = ResilientServer::new(
            vec![qpu(), qpu()],
            classical(),
            FaultPlan::new(2_027, FaultRates::uniform(0.06)),
            Guardrails::on(),
        );
        Simulation::new(
            vec![lte_ap(0), lte_ap(1)],
            FronthaulConfig::default(),
            Server::Resilient(Box::new(server)),
        )
        .run(150_000.0)
    };
    assert_ne!(a, other, "different seeds must explore different faults");
}

/// At fault rate zero the guarded path reproduces today's simulation
/// bit for bit — with and without a session cache on the QPU.
#[test]
fn zero_faults_guarded_is_bit_identical_to_plain_qpu() {
    let overheads = QpuOverheads {
        preprocessing_us: 0.0,
        programming_us: 80.0,
        readout_per_anneal_us: 0.0,
    };
    for cached in [false, true] {
        let make_qpu = || {
            let q = QpuServer::new(overheads, 2.0, 3);
            if cached {
                q.with_session_cache(30_000.0)
            } else {
                q.with_coherence(30)
            }
        };
        let aps = || vec![lte_ap(0), lte_ap(1)];
        let plain = Simulation::new(aps(), FronthaulConfig::default(), Server::Qpu(make_qpu()))
            .run(80_000.0);
        let guarded = Simulation::new(
            aps(),
            FronthaulConfig::default(),
            Server::Resilient(Box::new(ResilientServer::new(
                vec![make_qpu()],
                classical(),
                FaultPlan::quiet(9),
                Guardrails::on(),
            ))),
        )
        .run(80_000.0);
        assert_eq!(
            plain, guarded,
            "guarded ≠ plain at zero faults (cached = {cached})"
        );
    }
}

/// A cache-equipped pool worker for the scheduling tests (coherence
/// matching the metro load generator's 10 ms channel blocks).
fn qpu_cached() -> QpuServer {
    QpuServer::new(QpuOverheads::integrated(), 2.0, 3).with_session_cache(10_000.0)
}

/// Float tolerance for close-rule record checks, µs.
const TOL_US: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch-deadline safety, over random synthetic loads: a
    /// `Slack`-triggered dispatch happens only once the batch's
    /// projected completion has reached its earliest member deadline
    /// (the rule never cuts batching short while slack remains), and
    /// *no* rule- or full-closed batch is dispatched after that
    /// deadline has already passed — when slack was available at
    /// close, the projection met it. Drain-triggered dispatches are
    /// end-of-run leftovers and exempt from the second clause.
    #[test]
    fn rule_closed_batches_never_project_past_a_meetable_deadline(
        seed in 0u64..10_000,
        rate in 0.0005f64..0.004,
    ) {
        let mut server = ResilientServer::new(
            vec![qpu_cached(), qpu_cached()],
            classical(),
            FaultPlan::quiet(seed),
            Guardrails::on(),
        );
        let mut broker = Broker::new();
        let arrivals = LoadGen::metro(seed, 3, rate).generate(20_000.0);
        let report = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 24))
            .run(&mut server, &mut broker, arrivals);

        for d in &report.dispatches {
            // The record is internally consistent.
            prop_assert!(
                (d.earliest_deadline_us - d.projected_done_us - d.slack_at_close_us).abs()
                    < TOL_US,
                "slack_at_close must equal deadline − projected_done: {d:?}"
            );
            if d.trigger == CloseTrigger::Slack {
                prop_assert!(
                    d.slack_at_close_us <= TOL_US,
                    "the closing rule fired while slack remained: {d:?}"
                );
            }
            if d.trigger != CloseTrigger::Drain {
                prop_assert!(
                    d.close_us <= d.earliest_deadline_us + TOL_US,
                    "a batch was dispatched after its earliest deadline passed: {d:?}"
                );
            }
        }
        // The run drains completely: broker and ledger agree that
        // nothing is left in flight.
        prop_assert!(broker.drained());
        prop_assert!(broker.census().conserved());
        prop_assert_eq!(server.ledger().in_flight(), 0);
        prop_assert!(server.ledger().conserved());
    }

    /// A fixed seed makes the synthetic load bit-identical across
    /// runs; a different seed explores genuinely different traffic.
    #[test]
    fn fixed_seed_load_generation_is_bit_identical(
        seed in 0u64..1_000_000,
        cells in 1usize..4,
        rate in 0.0005f64..0.01,
    ) {
        let a = LoadGen::metro(seed, cells, rate).generate(25_000.0);
        let b = LoadGen::metro(seed, cells, rate).generate(25_000.0);
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        let other = LoadGen::metro(seed ^ 0x5EED, cells, rate).generate(25_000.0);
        if !a.is_empty() && !other.is_empty() {
            prop_assert_ne!(&a, &other, "different seeds must differ");
        }
    }

    /// The full-duplex mix holds the same determinism contract as
    /// `metro` — bit-identical per seed, different across seeds — for
    /// any downlink ratio, and degenerates to `metro` exactly at
    /// ratio 0. Every emitted downlink job carries a session key that
    /// no uplink job of the trace shares (the direction rekey), and
    /// sizes its problems as the VPP `4·Nu` encoding.
    #[test]
    fn full_duplex_load_is_deterministic_and_never_aliases_directions(
        seed in 0u64..1_000_000,
        cells in 1usize..4,
        rate in 0.0005f64..0.01,
        fraction in 0.0f64..1.0,
    ) {
        let a = LoadGen::full_duplex(seed, cells, rate, fraction).generate(25_000.0);
        let b = LoadGen::full_duplex(seed, cells, rate, fraction).generate(25_000.0);
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        let other = LoadGen::full_duplex(seed ^ 0x5EED, cells, rate, fraction).generate(25_000.0);
        if !a.is_empty() && !other.is_empty() {
            prop_assert_ne!(&a, &other, "different seeds must differ");
        }
        let metro = LoadGen::metro(seed, cells, rate).generate(25_000.0);
        if fraction == 0.0 {
            prop_assert_eq!(&a, &metro, "ratio 0 must be metro bit for bit");
        }
        let up: std::collections::HashSet<u64> = a
            .iter()
            .filter(|j| j.direction == JobDirection::Uplink)
            .map(|j| j.channel_hash)
            .collect();
        for j in a.iter().filter(|j| j.direction == JobDirection::Downlink) {
            prop_assert!(
                !up.contains(&j.channel_hash),
                "a downlink session key aliased an uplink one: {:#x}",
                j.channel_hash
            );
            prop_assert_eq!(j.logical_vars, 4 * j.users);
        }
    }

    /// The flash-crowd preset is bit-identical per seed and different
    /// across seeds, like every other generator.
    #[test]
    fn flash_crowd_load_is_deterministic(
        seed in 0u64..1_000_000,
        cells in 1usize..4,
        rate in 0.0005f64..0.01,
    ) {
        let a = LoadGen::flash_crowd(seed, cells, rate).generate(25_000.0);
        let b = LoadGen::flash_crowd(seed, cells, rate).generate(25_000.0);
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        let other = LoadGen::flash_crowd(seed ^ 0x5EED, cells, rate).generate(25_000.0);
        if !a.is_empty() && !other.is_empty() {
            prop_assert_ne!(&a, &other, "different seeds must differ");
        }
    }

    /// Brokered batch-of-1 Fifo scheduling replays the unbrokered
    /// `ResilientServer::submit` path bit for bit — same completion
    /// times, same attempts, same rungs, same ledger — across random
    /// fault seeds and rates. The broker prices zero when it is not
    /// batching.
    #[test]
    fn brokered_fifo_replays_direct_submission_under_faults(
        seed in 0u64..10_000,
        rate in 0.0f64..0.12,
        n in 10usize..60,
    ) {
        let make_server = || {
            ResilientServer::new(
                vec![qpu_cached(), qpu_cached()],
                classical(),
                FaultPlan::new(seed, FaultRates::uniform(rate)),
                Guardrails::on(),
            )
        };
        // Bursty arrivals (3 per instant) across 3 cells so shedding,
        // retries, and escalation all engage.
        let arrivals: Vec<UserJob> = (0..n)
            .map(|k| UserJob {
                arrival_us: 400.0 * (k / 3) as f64,
                cell: k % 3,
                direction: JobDirection::Uplink,
                channel_hash: 0xABCD ^ (k % 3) as u64,
                problems: 1 + k % 8,
                logical_vars: 16,
                users: 16,
                deadline_us: 3_000.0,
                priority: match k % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                },
            })
            .collect();

        // Direct path: one `submit` per job, in arrival order.
        let mut direct_server = make_server();
        let direct: Vec<Result<_, _>> = arrivals
            .iter()
            .map(|j| {
                let job = Job {
                    source: j.cell,
                    direction: j.direction,
                    channel_hash: Some(j.channel_hash),
                    problems: j.problems,
                    logical_vars: j.logical_vars,
                    users: j.users,
                    deadline_us: j.deadline_us,
                    priority: j.priority,
                };
                direct_server.submit(j.arrival_us, &job)
            })
            .collect();

        // Brokered path: the same jobs through admission + Fifo
        // dispatch.
        let mut brokered_server = make_server();
        let mut broker = Broker::new();
        let report = BatchScheduler::new(SchedConfig::new(Policy::Fifo, 24))
            .run(&mut brokered_server, &mut broker, arrivals);

        prop_assert_eq!(
            direct_server.ledger(),
            brokered_server.ledger(),
            "Fifo brokering must leave the identical ledger"
        );
        prop_assert_eq!(report.outcomes.len(), direct.len());
        for (o, d) in report.outcomes.iter().zip(&direct) {
            match d {
                Ok(served) => {
                    prop_assert_eq!(o.state, JobState::Completed);
                    prop_assert_eq!(o.done_us, served.done_us);
                    prop_assert_eq!(o.attempts, served.attempts);
                    prop_assert_eq!(o.rung, Some(served.rung));
                }
                Err(ServeError::Shed { .. }) => {
                    prop_assert_eq!(o.state, JobState::Shed);
                }
                Err(_) => {
                    prop_assert_eq!(o.state, JobState::Failed);
                }
            }
        }
    }
}

/// The in-flight gauge: admitted-but-undispatched jobs keep the
/// conservation identity (`submitted == completed + shed + failed +
/// batched`), and draining the pipeline — every admit resolved by a
/// dispatch or a shed — collapses it back to the terminal identity.
#[test]
fn ledger_conserves_through_admit_and_collapses_when_drained() {
    let mut srv = ResilientServer::new(
        vec![qpu_cached()],
        classical(),
        FaultPlan::quiet(41),
        Guardrails::on(),
    );
    let job = Job {
        source: 0,
        direction: JobDirection::Uplink,
        channel_hash: Some(0xFEED),
        problems: 2,
        logical_vars: 16,
        users: 16,
        deadline_us: 3_000.0,
        priority: Priority::Normal,
    };
    for _ in 0..3 {
        srv.admit(0.0, &job).expect("an idle pool admits");
    }
    let mid = srv.ledger();
    assert_eq!(mid.in_flight(), 3, "three jobs admitted, none resolved");
    assert!(mid.conserved(), "in-flight jobs keep the identity: {mid:?}");

    // Resolve all three: one cut under (hypothetical) backpressure,
    // two dispatched as a coalesced batch.
    srv.resolve_shed(1);
    srv.dispatch_batch(0.0, &job, 2 * job.problems, 2, None)
        .expect("a quiet pool serves the batch");
    let done = srv.ledger();
    assert_eq!(done.in_flight(), 0, "drained: {done:?}");
    assert!(done.conserved());
    assert_eq!(done.submitted, 3);
    assert_eq!(done.completed, 2);
    assert_eq!(done.shed, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Telemetry transparency: enabling the metrics registry changes
    /// nothing about a run — the `SimReport` is equal frame for frame
    /// (latency bits included via `PartialEq` on `f64`) whatever the
    /// fault seed, fault rate, direction mix, or serving arm.
    #[test]
    fn telemetry_never_perturbs_a_simulation(
        seed in 0u64..1_000,
        rate in 0.0f64..0.1,
        downlink in proptest::bool::ANY,
        brokered in proptest::bool::ANY,
    ) {
        use quamax_ran::BrokeredServer;
        use quamax_telemetry::Telemetry;

        let direction = if downlink {
            JobDirection::Downlink
        } else {
            JobDirection::Uplink
        };
        let ap = AccessPoint {
            direction,
            ..lte_ap(0)
        };
        let pool = || ResilientServer::new(
            vec![
                qpu().with_session_cache(30_000.0),
                qpu().with_session_cache(30_000.0),
            ],
            classical(),
            FaultPlan::new(seed, FaultRates::uniform(rate)),
            Guardrails::on(),
        );
        let server = || if brokered {
            Server::Brokered(Box::new(BrokeredServer {
                server: pool(),
                config: SchedConfig::new(Policy::DeadlineBatch, 8),
            }))
        } else {
            Server::Resilient(Box::new(pool()))
        };
        let fronthaul = FronthaulConfig {
            one_way_latency_us: 2.0,
        };
        let run = |telemetry: Telemetry| {
            Simulation::new(vec![ap.clone()], fronthaul, server())
                .with_telemetry(telemetry)
                .run(40_000.0)
        };

        let telemetry = Telemetry::enabled();
        let plain = run(Telemetry::disabled());
        let observed = run(telemetry.clone());
        prop_assert_eq!(&plain, &observed, "telemetry perturbed the run");

        // The observed run actually recorded: every frame fate shows
        // up in the outcome counters.
        let snap = telemetry.snapshot();
        prop_assert_eq!(
            snap.counter_total("quamax_sim_frames_total"),
            observed.frames.len() as u64
        );
    }
}
