//! Property-based tests for the annealer device.

use proptest::prelude::*;
use quamax_anneal::sa::{self, chain_flip_delta};
use quamax_anneal::sqa;
use quamax_anneal::{
    Annealer, AnnealerConfig, Backend, CompiledChains, IceModel, ReplicaBatch, Schedule,
    SqaReplicaBatch, SqaState, SweepState,
};
use quamax_ising::{CompiledProblem, IsingProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 8;

fn problem() -> impl Strategy<Value = IsingProblem> {
    let count = N + N * (N - 1) / 2;
    proptest::collection::vec(-2.0f64..2.0, count).prop_map(|c| {
        let mut p = IsingProblem::new(N);
        let mut it = c.into_iter();
        for i in 0..N {
            p.set_linear(i, it.next().unwrap());
        }
        for i in 0..N {
            for j in (i + 1)..N {
                p.set_coupling(i, j, it.next().unwrap());
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Samples are always valid ±1 configurations of the right size,
    /// and runs are deterministic in the seed.
    #[test]
    fn samples_are_valid_and_deterministic(p in problem(), seed in 0u64..1000) {
        let annealer = Annealer::new(AnnealerConfig {
            sweeps_per_us: 5.0,
            ..Default::default()
        });
        let sched = Schedule::standard(1.0);
        let a = annealer.run(&p, &sched, 8, seed);
        let b = annealer.run(&p, &sched, 8, seed);
        prop_assert_eq!(&a, &b);
        for s in &a {
            prop_assert_eq!(s.len(), N);
            prop_assert!(s.iter().all(|&x| x == 1 || x == -1));
        }
    }

    /// Chain-flip delta equals the direct energy difference for an
    /// arbitrary path through the problem graph.
    #[test]
    fn chain_delta_identity(
        p in problem(),
        k in 0u32..256,
        start in 0usize..N,
        len in 1usize..4,
    ) {
        let spins: Vec<i8> = (0..N).map(|i| if (k >> i) & 1 == 1 { 1 } else { -1 }).collect();
        // A "chain" of consecutive indices (all pairs coupled: the
        // problem is fully connected, so windows(2) couplings exist).
        let chain: Vec<usize> = (0..len).map(|o| (start + o) % N).collect();
        let before = p.energy(&spins);
        let mut flipped = spins.clone();
        for &i in &chain {
            flipped[i] = -flipped[i];
        }
        let direct = p.energy(&flipped) - before;
        let fast = chain_flip_delta(&p, &spins, &chain);
        prop_assert!((direct - fast).abs() < 1e-9, "{direct} vs {fast}");
    }

    /// Batches are bit-identical across thread counts, for both
    /// backends, with ICE noise active (the kernel's determinism
    /// contract: splitmix-per-anneal streams + layout-stable draw
    /// order — see the crate's DESIGN docs).
    #[test]
    fn thread_count_never_changes_samples(p in problem(), seed in 0u64..1000) {
        for backend in [Backend::Sa, Backend::Sqa { slices: 4 }] {
            let run_with = |threads: usize| {
                Annealer::new(AnnealerConfig {
                    backend,
                    sweeps_per_us: 4.0,
                    threads,
                    ..Default::default()
                })
                .run(&p, &Schedule::standard(1.0), 10, seed)
            };
            prop_assert_eq!(run_with(1), run_with(4), "backend {:?}", backend);
        }
    }

    /// The incremental sweep kernel stays exact over a long random
    /// walk: cached ΔE equals the naive adjacency-list ΔE before every
    /// accepted flip, including chain-collective flips.
    #[test]
    fn sweep_state_tracks_naive_deltas(p in problem(), k in 0u32..256, walk in 0usize..64) {
        let compiled = CompiledProblem::new(&p);
        let chains = vec![vec![0usize, 1, 2], vec![4, 5]];
        let cc = CompiledChains::compile(&compiled, &chains);
        let spins: Vec<i8> = (0..N).map(|i| if (k >> i) & 1 == 1 { 1 } else { -1 }).collect();
        let mut state = SweepState::new();
        state.reset(&compiled, &spins);
        for step in 0..walk {
            let naive = p.flip_delta(state.spins(), step % N);
            prop_assert!((state.flip_delta(step % N) - naive).abs() < 1e-9);
            state.flip(&compiled, step % N);
            let c = step % chains.len();
            let naive_chain = chain_flip_delta(&p, state.spins(), &chains[c]);
            prop_assert!((state.chain_flip_delta(&cc, c) - naive_chain).abs() < 1e-9);
            state.chain_flip(&compiled, &cc, c);
        }
        prop_assert!((state.energy(&compiled) - p.energy(state.spins())).abs() < 1e-9);
    }

    /// The batched SA kernel's stream-splitting contract: replica `r`
    /// of a [`ReplicaBatch`] is bit-identical (spins, fields, energy)
    /// to a serial [`SweepState`] anneal driven by the same RNG stream
    /// — at R = 1 and at R = 4, in shared mode and in per-replica mode
    /// with every replica bound to differently-perturbed coefficients,
    /// chains included.
    #[test]
    fn sa_replica_batch_matches_serial(p in problem(), seed in 0u64..1000) {
        let compiled = CompiledProblem::new(&p);
        let chain_sets = vec![vec![0usize, 1, 2], vec![4, 5]];
        let cc = CompiledChains::compile(&compiled, &chain_sets);
        let betas: Vec<f64> = (0..10).map(|k| 0.2 * 1.3f64.powi(k)).collect();
        for width in [1usize, 4] {
            // Per-replica coefficient variants sharing the structure.
            let variants: Vec<CompiledProblem> = (0..width)
                .map(|r| {
                    let mut q = compiled.clone();
                    q.perturb_linear(|f| f + 0.1 * (r as f64));
                    q.perturb_couplings(|g| g * (1.0 + 0.05 * r as f64));
                    q
                })
                .collect();
            for shared in [true, false] {
                // Serial references, one stream per replica.
                let serial: Vec<SweepState> = (0..width)
                    .map(|r| {
                        let q = if shared { &compiled } else { &variants[r] };
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
                        let mut st = SweepState::new();
                        sa::anneal_once_compiled(q, &cc, &betas, None, &mut st, &mut rng);
                        st
                    })
                    .collect();
                // Batched run over the same streams.
                let mut rngs: Vec<StdRng> = (0..width)
                    .map(|r| StdRng::seed_from_u64(seed.wrapping_add(r as u64)))
                    .collect();
                let mut batch = ReplicaBatch::new();
                if shared {
                    batch.reset_shared(&compiled, width);
                } else {
                    batch.reset_per_replica(&compiled, width);
                    for (r, q) in variants.iter().enumerate() {
                        batch.bind_replica(r, q);
                    }
                }
                for r in 0..width {
                    batch.init_replica_random(&compiled, r, &mut rngs[r]);
                }
                sa::anneal_batch_compiled(&compiled, &cc, &betas, &mut batch, &mut rngs);
                for (r, st) in serial.iter().enumerate() {
                    prop_assert_eq!(batch.replica_spins(r), st.spins().to_vec());
                    for i in 0..N {
                        prop_assert_eq!(batch.field(i, r), st.field(i));
                    }
                    let q = if shared { &compiled } else { &variants[r] };
                    prop_assert_eq!(batch.energy(r), st.energy(q));
                }
            }
        }
    }

    /// The SQA analogue of `sa_replica_batch_matches_serial`: every
    /// replica of a [`SqaReplicaBatch`] is bit-identical to its serial
    /// [`SqaState`] counterpart — all Trotter slices, slice energies,
    /// and the best-slice readout — at R = 1 and R = 4, shared and
    /// per-replica, chains included.
    #[test]
    fn sqa_replica_batch_matches_serial(p in problem(), seed in 0u64..1000) {
        let compiled = CompiledProblem::new(&p);
        let chain_sets = vec![vec![0usize, 1, 2], vec![4, 5]];
        let cc = CompiledChains::compile(&compiled, &chain_sets);
        let fractions: Vec<f64> = (0..8).map(|k| (k as f64 + 0.5) / 8.0).collect();
        let slices = 4;
        for width in [1usize, 4] {
            let variants: Vec<CompiledProblem> = (0..width)
                .map(|r| {
                    let mut q = compiled.clone();
                    q.perturb_linear(|f| f - 0.07 * (r as f64));
                    q.perturb_couplings(|g| g * (1.0 - 0.04 * r as f64));
                    q
                })
                .collect();
            for shared in [true, false] {
                let serial: Vec<SqaState> = (0..width)
                    .map(|r| {
                        let q = if shared { &compiled } else { &variants[r] };
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
                        let mut st = SqaState::new();
                        sqa::anneal_once_compiled(q, &cc, &fractions, slices, None, &mut st, &mut rng);
                        st
                    })
                    .collect();
                let mut rngs: Vec<StdRng> = (0..width)
                    .map(|r| StdRng::seed_from_u64(seed.wrapping_add(r as u64)))
                    .collect();
                let mut batch = SqaReplicaBatch::new();
                if shared {
                    batch.reset_shared(&compiled, slices, width);
                } else {
                    batch.reset_per_replica(&compiled, slices, width);
                    for (r, q) in variants.iter().enumerate() {
                        batch.bind_replica(r, q);
                    }
                }
                for r in 0..width {
                    batch.init_replica_random(&compiled, r, &mut rngs[r]);
                }
                sqa::anneal_batch_compiled(&compiled, &cc, &fractions, &mut batch, &mut rngs);
                for (r, st) in serial.iter().enumerate() {
                    let q = if shared { &compiled } else { &variants[r] };
                    for k in 0..slices {
                        prop_assert_eq!(batch.replica_slice(r, k), st.slice(k).to_vec());
                        prop_assert_eq!(batch.slice_energy(r, k), st.slice_energy(q, k));
                    }
                    prop_assert_eq!(sqa::best_slice_batch(&batch, r), sqa::best_slice(q, st));
                }
            }
        }
    }

    /// ICE perturbation preserves problem structure and moves every
    /// coefficient (when the model is non-zero).
    #[test]
    fn ice_preserves_structure(p in problem(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = IceModel::dw2q().perturb(&p, &mut rng);
        prop_assert_eq!(q.num_spins(), p.num_spins());
        prop_assert_eq!(q.num_couplings(), p.num_couplings());
        for (i, j, g) in p.couplings() {
            prop_assert!((q.coupling(i, j) - g).abs() < 0.015 + 6.0 * 0.025);
        }
    }

    /// Schedules: fractions stay in [0,1]; forward plans are monotone;
    /// reverse plans start and end annealed.
    #[test]
    fn schedule_fraction_invariants(
        ta in 1.0f64..100.0,
        sp in 0.05f64..0.95,
        tp in 0.5f64..50.0,
        sweeps in 2.0f64..40.0,
    ) {
        for sched in [
            Schedule::standard(ta),
            Schedule::with_pause(ta, sp, tp),
            Schedule::reverse(ta, sp, tp),
        ] {
            let plan = sched.sweep_fractions(sweeps);
            prop_assert!(plan.iter().all(|&f| (0.0..=1.0).contains(&f)));
            if !sched.is_reverse() {
                for w in plan.windows(2) {
                    prop_assert!(w[1] >= w[0] - 1e-12);
                }
            } else {
                prop_assert!(plan[0] >= sp);
                prop_assert!(*plan.last().unwrap() >= sp);
                let min = plan.iter().copied().fold(f64::INFINITY, f64::min);
                prop_assert!((min - sp).abs() < 0.15, "reversal point missed: {min} vs {sp}");
            }
        }
    }
}
