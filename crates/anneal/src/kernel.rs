//! The incremental-local-field sweep engine (see the DESIGN section of
//! the crate docs).
//!
//! Every Monte-Carlo backend in this crate reduces to the same three
//! primitives over a [`CompiledProblem`]:
//!
//! * **propose** a spin flip: `ΔE = −2·s_i·h_i`, O(1) from the cached
//!   local field `h_i = f_i + Σ_j g_ij·s_j`;
//! * **accept** a flip: negate `s_i` and push `±2·g_ij` into each
//!   neighbor's cached field, O(degree) — paid only for accepted moves,
//!   which is the winning trade late in a schedule where acceptance
//!   collapses;
//! * **propose/accept a chain flip**: the per-spin deltas summed from
//!   cached fields plus a `+4·g_ab·s_a·s_b` correction per *internal*
//!   edge, with the internal edge list precompiled per chain by
//!   [`CompiledChains`] instead of rediscovered by `chain.contains(j)`
//!   scans on every sweep.
//!
//! [`SweepState`] holds one classical configuration and its fields;
//! [`SqaState`] holds the `n×P` Trotter-replica generalization with one
//! field cache per slice, in a single flat buffer. Both are designed to
//! be allocated once per worker thread and reset per anneal, so the hot
//! loop performs no allocation at all.

use quamax_ising::{CompiledProblem, Spin};
use rand::Rng;

/// Adds `step·g` into `fields[j]` for each `(j, g)` of a CSR row,
/// walking the fields slice by successive splits instead of indexing
/// `fields[j as usize]` per entry — row indices are sorted strictly
/// ascending (a [`CompiledProblem`] invariant), so each split advances
/// monotonically and the compiler sees no per-element bounds check on
/// the hot add.
#[inline]
fn scatter_row(fields: &mut [f64], idx: &[u32], w: &[f64], step: f64) {
    let mut rest = fields;
    let mut base = 0usize;
    for (&j, &g) in idx.iter().zip(w) {
        let tail = &mut rest[(j as usize - base)..];
        let (cell, tail) = tail.split_first_mut().expect("neighbor index in range");
        *cell += step * g;
        rest = tail;
        base = j as usize + 1;
    }
}

/// Precompiled chain-collective move tables for one problem: member
/// lists and internal-edge lists in flat CSR-style storage.
#[derive(Clone, Debug)]
pub struct CompiledChains {
    /// Flat member indices.
    members: Vec<u32>,
    /// `member_offsets[c]..member_offsets[c+1]` delimits chain `c`.
    member_offsets: Vec<u32>,
    /// Flat internal edges `(a, b, g_ab)` with both endpoints in the
    /// owning chain.
    internal: Vec<(u32, u32, f64)>,
    /// `internal_offsets[c]..internal_offsets[c+1]` delimits chain `c`.
    internal_offsets: Vec<u32>,
}

impl Default for CompiledChains {
    /// No chains (plain single-spin dynamics).
    fn default() -> Self {
        CompiledChains {
            members: Vec::new(),
            member_offsets: vec![0],
            internal: Vec::new(),
            internal_offsets: vec![0],
        }
    }
}

impl CompiledChains {
    /// Compiles `chains` against `problem`. Internal edges are found
    /// through a membership mask in O(Σ degree), not by per-sweep
    /// membership scans.
    ///
    /// # Panics
    /// Panics when a chain member is out of range for the problem, or
    /// when a spin appears in more than one chain (the membership mask
    /// identifies internal edges by owner, so overlapping chains would
    /// silently drop edges; the naive `sa::chain_flip_delta` tolerates
    /// overlap, but no embedding produces it).
    pub fn compile(problem: &CompiledProblem, chains: &[Vec<usize>]) -> Self {
        let n = problem.num_spins();
        let mut compiled = CompiledChains {
            members: Vec::new(),
            member_offsets: vec![0],
            internal: Vec::new(),
            internal_offsets: vec![0],
        };
        // chain id + 1 per spin; 0 = unassigned.
        let mut owner = vec![0u32; n];
        for (c, chain) in chains.iter().enumerate() {
            for &i in chain {
                assert!(i < n, "chain member {i} out of range");
                assert_eq!(
                    owner[i], 0,
                    "spin {i} appears in more than one chain (chains must be disjoint)"
                );
                owner[i] = c as u32 + 1;
            }
        }
        for (c, chain) in chains.iter().enumerate() {
            for &i in chain {
                compiled.members.push(i as u32);
                let (idx, w) = problem.row(i);
                for (&j, &g) in idx.iter().zip(w) {
                    // Each internal edge recorded once (a < b).
                    if (j as usize) > i && owner[j as usize] == c as u32 + 1 {
                        compiled.internal.push((i as u32, j, g));
                    }
                }
            }
            compiled.member_offsets.push(compiled.members.len() as u32);
            compiled
                .internal_offsets
                .push(compiled.internal.len() as u32);
        }
        compiled
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// `true` when no chains were compiled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chain `c`'s member spins.
    #[inline]
    pub fn members(&self, c: usize) -> &[u32] {
        let lo = self.member_offsets[c] as usize;
        let hi = self.member_offsets[c + 1] as usize;
        &self.members[lo..hi]
    }

    /// Chain `c`'s internal edges as `(a, b, g_ab)`.
    #[inline]
    pub fn internal_edges(&self, c: usize) -> &[(u32, u32, f64)] {
        let lo = self.internal_offsets[c] as usize;
        let hi = self.internal_offsets[c + 1] as usize;
        &self.internal[lo..hi]
    }
}

/// One configuration plus its cached local fields — the persistent
/// state of a classical (SA) sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepState {
    spins: Vec<Spin>,
    fields: Vec<f64>,
}

impl SweepState {
    /// An empty state; call [`SweepState::reset`] before sweeping.
    pub fn new() -> Self {
        SweepState::default()
    }

    /// (Re)initializes the state to `spins` under `problem`, reusing
    /// buffers.
    pub fn reset(&mut self, problem: &CompiledProblem, spins: &[Spin]) {
        assert_eq!(
            spins.len(),
            problem.num_spins(),
            "configuration length mismatch"
        );
        self.spins.clear();
        self.spins.extend_from_slice(spins);
        problem.local_fields_into(&self.spins, &mut self.fields);
    }

    /// (Re)initializes to a uniform-random configuration drawn from
    /// `rng` (one `random_bool(0.5)` per spin, in index order),
    /// directly into the reused buffer — the allocation-free form of
    /// `reset` for batch anneal starts.
    pub fn reset_random<R: Rng + ?Sized>(&mut self, problem: &CompiledProblem, rng: &mut R) {
        self.spins.clear();
        self.spins
            .extend((0..problem.num_spins()).map(|_| if rng.random_bool(0.5) { 1 } else { -1 }));
        problem.local_fields_into(&self.spins, &mut self.fields);
    }

    /// The current configuration.
    pub fn spins(&self) -> &[Spin] {
        &self.spins
    }

    /// The cached local field of spin `i`.
    #[inline]
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// O(1) proposal: the energy change from flipping spin `i`.
    #[inline]
    pub fn flip_delta(&self, i: usize) -> f64 {
        -2.0 * self.spins[i] as f64 * self.fields[i]
    }

    /// Accepts a flip of spin `i`: O(degree) neighbor-field update.
    #[inline]
    pub fn flip(&mut self, problem: &CompiledProblem, i: usize) {
        let s_new = -self.spins[i];
        self.spins[i] = s_new;
        let step = 2.0 * s_new as f64;
        let (idx, w) = problem.row(i);
        scatter_row(&mut self.fields, idx, w, step);
    }

    /// O(chain + internal) proposal: the energy change from flipping
    /// every member of chain `c` simultaneously. The `+4g·s_a·s_b` term
    /// restores each internal edge the per-spin deltas double-count
    /// with the wrong sign (see `sa::chain_flip_delta`).
    #[inline]
    pub fn chain_flip_delta(&self, chains: &CompiledChains, c: usize) -> f64 {
        let mut delta = 0.0;
        for &i in chains.members(c) {
            delta += self.flip_delta(i as usize);
        }
        for &(a, b, g) in chains.internal_edges(c) {
            delta += 4.0 * g * self.spins[a as usize] as f64 * self.spins[b as usize] as f64;
        }
        delta
    }

    /// Accepts a chain flip: members flip one by one, each paying its
    /// O(degree) field update (fields stay exact throughout).
    pub fn chain_flip(&mut self, problem: &CompiledProblem, chains: &CompiledChains, c: usize) {
        for &i in chains.members(c) {
            self.flip(problem, i as usize);
        }
    }

    /// The configuration energy, reconstructed in O(n) from the cached
    /// fields: `E = Σ_i s_i·(h_i + f_i)/2` (each coupling appears in
    /// two fields, each linear term in one).
    pub fn energy(&self, problem: &CompiledProblem) -> f64 {
        self.spins
            .iter()
            .enumerate()
            .map(|(i, &s)| s as f64 * (self.fields[i] + problem.linear(i)) / 2.0)
            .sum()
    }

    /// Moves the configuration out, leaving the state reusable.
    pub fn take_spins(&mut self) -> Vec<Spin> {
        std::mem::take(&mut self.spins)
    }
}

/// The flat `n×P` Trotter-replica state of an SQA sweep: slice-major
/// spins and per-slice local-field caches in single contiguous buffers.
#[derive(Clone, Debug, Default)]
pub struct SqaState {
    n: usize,
    slices: usize,
    /// `spins[k*n + i]` = spin `i` in slice `k`.
    spins: Vec<Spin>,
    /// Parallel per-slice local fields of the *problem* term.
    fields: Vec<f64>,
}

impl SqaState {
    /// An empty state; call [`SqaState::reset`] before sweeping.
    pub fn new() -> Self {
        SqaState::default()
    }

    /// (Re)initializes all `slices` replicas, reusing buffers.
    /// `init(k, i)` provides spin `i` of slice `k`.
    pub fn reset(
        &mut self,
        problem: &CompiledProblem,
        slices: usize,
        mut init: impl FnMut(usize, usize) -> Spin,
    ) {
        let n = problem.num_spins();
        self.n = n;
        self.slices = slices;
        self.spins.clear();
        for k in 0..slices {
            for i in 0..n {
                self.spins.push(init(k, i));
            }
        }
        self.fields.clear();
        self.fields.resize(slices * n, 0.0);
        for k in 0..slices {
            let slice = &self.spins[k * n..(k + 1) * n];
            for i in 0..n {
                self.fields[k * n + i] = problem.local_field(slice, i);
            }
        }
    }

    /// (Re)initializes all `slices` replicas uniformly at random from
    /// `rng` (slice-major draw order, one `random_bool(0.5)` per
    /// (slice, spin)), directly into the reused buffer — the
    /// allocation-free form of `reset` for batch anneal starts.
    pub fn reset_random<R: Rng + ?Sized>(
        &mut self,
        problem: &CompiledProblem,
        slices: usize,
        rng: &mut R,
    ) {
        let n = problem.num_spins();
        self.n = n;
        self.slices = slices;
        self.spins.clear();
        self.spins
            .extend((0..slices * n).map(|_| if rng.random_bool(0.5) { 1 } else { -1 }));
        self.fields.clear();
        self.fields.resize(slices * n, 0.0);
        for k in 0..slices {
            let slice = &self.spins[k * n..(k + 1) * n];
            for i in 0..n {
                self.fields[k * n + i] = problem.local_field(slice, i);
            }
        }
    }

    /// Number of Trotter slices.
    pub fn num_slices(&self) -> usize {
        self.slices
    }

    /// Slice `k` as a spin configuration.
    #[inline]
    pub fn slice(&self, k: usize) -> &[Spin] {
        &self.spins[k * self.n..(k + 1) * self.n]
    }

    /// The spin at `(slice k, index i)`.
    #[inline]
    pub fn spin(&self, k: usize, i: usize) -> Spin {
        self.spins[k * self.n + i]
    }

    /// O(1) proposal: the *problem-term* energy change from flipping
    /// `(k, i)` (the inter-slice term is the caller's, since it depends
    /// on the schedule-dependent coupling γ).
    #[inline]
    pub fn flip_delta(&self, k: usize, i: usize) -> f64 {
        let at = k * self.n + i;
        -2.0 * self.spins[at] as f64 * self.fields[at]
    }

    /// Accepts a flip of `(k, i)`, updating slice `k`'s field cache.
    /// The slice-`k` field window is split off once per row, so the
    /// scatter never re-addresses `base + j` against the full buffer.
    #[inline]
    pub fn flip(&mut self, problem: &CompiledProblem, k: usize, i: usize) {
        let base = k * self.n;
        let s_new = -self.spins[base + i];
        self.spins[base + i] = s_new;
        let step = 2.0 * s_new as f64;
        let (idx, w) = problem.row(i);
        scatter_row(&mut self.fields[base..base + self.n], idx, w, step);
    }

    /// Chain-flip proposal within slice `k` (problem term only).
    #[inline]
    pub fn chain_flip_delta(&self, chains: &CompiledChains, k: usize, c: usize) -> f64 {
        let base = k * self.n;
        let mut delta = 0.0;
        for &i in chains.members(c) {
            let at = base + i as usize;
            delta += -2.0 * self.spins[at] as f64 * self.fields[at];
        }
        for &(a, b, g) in chains.internal_edges(c) {
            delta += 4.0
                * g
                * self.spins[base + a as usize] as f64
                * self.spins[base + b as usize] as f64;
        }
        delta
    }

    /// Accepts a chain flip within slice `k`.
    pub fn chain_flip(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        k: usize,
        c: usize,
    ) {
        for &i in chains.members(c) {
            self.flip(problem, k, i as usize);
        }
    }

    /// The programmed energy of slice `k`, in O(n) from cached fields.
    pub fn slice_energy(&self, problem: &CompiledProblem, k: usize) -> f64 {
        let base = k * self.n;
        (0..self.n)
            .map(|i| {
                self.spins[base + i] as f64 * (self.fields[base + i] + problem.linear(i)) / 2.0
            })
            .sum()
    }
}

/// `R` independent SA configurations in structure-of-arrays layout:
/// `spins[i*R + r]` / `fields[i*R + r]`, so the per-spin loop over
/// replicas is a contiguous strip and one CSR row walk pays for all
/// `R` replicas' field updates.
///
/// Two coefficient modes:
///
/// * **shared** ([`ReplicaBatch::reset_shared`]) — every replica runs
///   the exact problem passed to each sweep call (same `y`, zero ICE);
///   the scatter broadcasts one `g` per row entry across the strip;
/// * **per-replica** ([`ReplicaBatch::reset_per_replica`] +
///   [`ReplicaBatch::bind_replica`]) — each replica carries its own
///   `linear[i*R + r]` / `weights[e*R + r]` strips (different `y`
///   vectors, or per-anneal ICE-refrozen coefficients); only the CSR
///   *structure* of the problem argument is read.
///
/// Each replica is bit-identical to a serial [`SweepState`] driven by
/// the same RNG stream (the stream-splitting contract in the crate's
/// DESIGN docs), because per-replica draw order and floating-point
/// accumulation order are preserved exactly; grouping replicas into a
/// batch is unobservable per stream.
#[derive(Clone, Debug, Default)]
pub struct ReplicaBatch {
    width: usize,
    n: usize,
    /// `spins[i*width + r]` = spin `i` of replica `r`.
    spins: Vec<Spin>,
    /// Cached local fields, parallel to `spins`.
    fields: Vec<f64>,
    /// Per-replica linear terms `linear[i*width + r]` (broadcast from
    /// the shared problem in shared mode).
    linear: Vec<f64>,
    /// Per-replica coupling strips `weights[e*width + r]`; empty in
    /// shared mode (weights read from the problem argument instead).
    weights: Vec<f64>,
    /// Scratch: per-replica field step of the current move (0 = hold).
    steps: Vec<f64>,
    /// Scratch: per-replica move deltas (chain proposals).
    deltas: Vec<f64>,
    /// Scratch: per-replica accept mask (chain moves).
    mask: Vec<bool>,
}

impl ReplicaBatch {
    /// An empty batch; call a `reset_*` method before sweeping.
    pub fn new() -> Self {
        ReplicaBatch::default()
    }

    /// Replicas per batch.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Spins per replica.
    #[inline]
    pub fn num_spins(&self) -> usize {
        self.n
    }

    #[inline]
    fn shared(&self) -> bool {
        self.weights.is_empty()
    }

    fn reset_common(&mut self, problem: &CompiledProblem, width: usize) {
        assert!(width > 0, "batch width must be positive");
        let n = problem.num_spins();
        self.width = width;
        self.n = n;
        self.spins.clear();
        self.spins.resize(n * width, 1);
        self.fields.clear();
        self.fields.resize(n * width, 0.0);
        self.linear.clear();
        self.linear.resize(n * width, 0.0);
        self.steps.clear();
        self.steps.resize(width, 0.0);
        self.deltas.clear();
        self.deltas.resize(width, 0.0);
        self.mask.clear();
        self.mask.resize(width, false);
    }

    /// (Re)shapes the batch to `width` replicas of `problem` in
    /// *shared* coefficient mode: every replica reads the problem's own
    /// coefficients. Replicas still need [`ReplicaBatch::init_replica`]
    /// (or the random variant) before sweeping.
    pub fn reset_shared(&mut self, problem: &CompiledProblem, width: usize) {
        self.reset_common(problem, width);
        self.weights.clear();
        for i in 0..self.n {
            let f = problem.linear(i);
            self.linear[i * width..(i + 1) * width].fill(f);
        }
    }

    /// (Re)shapes the batch to `width` replicas sharing `structure`'s
    /// CSR layout in *per-replica* coefficient mode; every replica must
    /// be given its coefficients via [`ReplicaBatch::bind_replica`]
    /// before it is initialized.
    pub fn reset_per_replica(&mut self, structure: &CompiledProblem, width: usize) {
        self.reset_common(structure, width);
        self.weights.clear();
        self.weights.resize(structure.num_entries() * width, 0.0);
    }

    /// Copies `problem`'s coefficients into replica `r`'s strips
    /// (per-replica mode only). `problem` must share the batch
    /// structure's CSR layout.
    ///
    /// # Panics
    /// Panics in shared mode or when shapes disagree.
    pub fn bind_replica(&mut self, r: usize, problem: &CompiledProblem) {
        assert!(
            !self.shared(),
            "bind_replica needs a per-replica batch (reset_per_replica)"
        );
        assert_eq!(problem.num_spins(), self.n, "structure mismatch");
        assert_eq!(
            problem.num_entries() * self.width,
            self.weights.len(),
            "structure mismatch"
        );
        let w = self.width;
        for (i, &f) in problem.linear_terms().iter().enumerate() {
            self.linear[i * w + r] = f;
        }
        for (e, &g) in problem.weights_flat().iter().enumerate() {
            self.weights[e * w + r] = g;
        }
    }

    /// Initializes replica `r` to `spins` and rebuilds its cached
    /// fields from its bound coefficients. `problem` supplies the CSR
    /// structure (and, in shared mode, the coefficients).
    pub fn init_replica(&mut self, problem: &CompiledProblem, r: usize, spins: &[Spin]) {
        assert_eq!(spins.len(), self.n, "initial state length mismatch");
        let w = self.width;
        for (i, &s) in spins.iter().enumerate() {
            self.spins[i * w + r] = s;
        }
        self.rebuild_fields(problem, r);
    }

    /// Initializes replica `r` uniformly at random (one
    /// `random_bool(0.5)` per spin, in index order — the same draw
    /// order as [`SweepState::reset_random`]).
    pub fn init_replica_random<R: Rng + ?Sized>(
        &mut self,
        problem: &CompiledProblem,
        r: usize,
        rng: &mut R,
    ) {
        let w = self.width;
        for i in 0..self.n {
            self.spins[i * w + r] = if rng.random_bool(0.5) { 1 } else { -1 };
        }
        self.rebuild_fields(problem, r);
    }

    fn rebuild_fields(&mut self, problem: &CompiledProblem, r: usize) {
        let w = self.width;
        for i in 0..self.n {
            let (lo, hi) = problem.row_bounds(i);
            let idx = &problem.neighbors_flat()[lo..hi];
            let mut h = self.linear[i * w + r];
            if self.shared() {
                let gs = &problem.weights_flat()[lo..hi];
                for (&j, &g) in idx.iter().zip(gs) {
                    h += g * self.spins[j as usize * w + r] as f64;
                }
            } else {
                for (pos, &j) in idx.iter().enumerate() {
                    let g = self.weights[(lo + pos) * w + r];
                    h += g * self.spins[j as usize * w + r] as f64;
                }
            }
            self.fields[i * w + r] = h;
        }
    }

    /// The spin at `(i, replica r)`.
    #[inline]
    pub fn spin(&self, i: usize, r: usize) -> Spin {
        self.spins[i * self.width + r]
    }

    /// The cached local field at `(i, replica r)`.
    #[inline]
    pub fn field(&self, i: usize, r: usize) -> f64 {
        self.fields[i * self.width + r]
    }

    /// Replica `r`'s configuration, gathered out of the strided layout.
    pub fn replica_spins(&self, r: usize) -> Vec<Spin> {
        (0..self.n).map(|i| self.spins[i * self.width + r]).collect()
    }

    /// Replica `r`'s energy, in the same accumulation order as
    /// [`SweepState::energy`] (`Σ_i s_i·(h_i + f_i)/2`, `i` ascending).
    pub fn energy(&self, r: usize) -> f64 {
        let w = self.width;
        (0..self.n)
            .map(|i| self.spins[i * w + r] as f64 * (self.fields[i * w + r] + self.linear[i * w + r]) / 2.0)
            .sum()
    }

    /// Proposes flipping spin `i` in every replica: `accept(r, ΔE_r)`
    /// decides per replica (computing ΔE from the contiguous strip),
    /// then one CSR row walk scatters all accepted replicas' field
    /// updates at once. Per-replica ΔE and draw order match a serial
    /// [`SweepState`] exactly.
    #[inline]
    pub fn sweep_spin(
        &mut self,
        problem: &CompiledProblem,
        i: usize,
        mut accept: impl FnMut(usize, f64) -> bool,
    ) {
        let w = self.width;
        let base = i * w;
        let mut any = false;
        {
            let spins = &mut self.spins[base..base + w];
            let fields = &self.fields[base..base + w];
            let steps = &mut self.steps[..w];
            for r in 0..w {
                let s = spins[r];
                let delta = -2.0 * s as f64 * fields[r];
                if accept(r, delta) {
                    spins[r] = -s;
                    steps[r] = -2.0 * s as f64;
                    any = true;
                } else {
                    steps[r] = 0.0;
                }
            }
        }
        if any {
            self.scatter(problem, i);
        }
    }

    /// One full spin sweep: proposes every spin in index order,
    /// `accept(i, r, ΔE_ir)` deciding per replica. Dispatches to a
    /// width-monomorphized hot loop for the common batch widths (strips
    /// become fixed-size arrays — bounds checks vanish and the strip
    /// arithmetic unrolls/vectorizes); any other width takes the
    /// dynamic [`ReplicaBatch::sweep_spin`] path. Both paths evaluate
    /// identical ΔE values in identical order, so samples never depend
    /// on which one ran.
    pub fn sweep_spins(
        &mut self,
        problem: &CompiledProblem,
        mut accept: impl FnMut(usize, usize, f64) -> bool,
    ) {
        match self.width {
            1 => self.sweep_spins_w::<1>(problem, &mut accept),
            2 => self.sweep_spins_w::<2>(problem, &mut accept),
            4 => self.sweep_spins_w::<4>(problem, &mut accept),
            8 => self.sweep_spins_w::<8>(problem, &mut accept),
            16 => self.sweep_spins_w::<16>(problem, &mut accept),
            _ => {
                for i in 0..self.n {
                    self.sweep_spin(problem, i, |r, delta| accept(i, r, delta));
                }
            }
        }
    }

    fn sweep_spins_w<const W: usize>(
        &mut self,
        problem: &CompiledProblem,
        accept: &mut impl FnMut(usize, usize, f64) -> bool,
    ) {
        debug_assert_eq!(self.width, W);
        for i in 0..self.n {
            let base = i * W;
            let mut steps = [0.0f64; W];
            let mut any = false;
            {
                let spins: &mut [Spin; W] =
                    (&mut self.spins[base..base + W]).try_into().expect("strip");
                let fields: &[f64; W] =
                    (&self.fields[base..base + W]).try_into().expect("strip");
                for r in 0..W {
                    let s = spins[r];
                    let delta = -2.0 * s as f64 * fields[r];
                    if accept(i, r, delta) {
                        spins[r] = -s;
                        steps[r] = -2.0 * s as f64;
                        any = true;
                    }
                }
            }
            if any {
                self.scatter_w::<W>(problem, i, &steps);
            }
        }
    }

    /// Width-monomorphized scatter: same row walk as
    /// [`ReplicaBatch::scatter`], but the per-entry strip update is a
    /// fixed-`W` array operation the compiler fully unrolls.
    fn scatter_w<const W: usize>(
        &mut self,
        problem: &CompiledProblem,
        i: usize,
        steps: &[f64; W],
    ) {
        let (lo, hi) = problem.row_bounds(i);
        let idx = &problem.neighbors_flat()[lo..hi];
        if self.shared() {
            let gs = &problem.weights_flat()[lo..hi];
            for (&j, &g) in idx.iter().zip(gs) {
                let at = j as usize * W;
                let strip: &mut [f64; W] =
                    (&mut self.fields[at..at + W]).try_into().expect("strip");
                for r in 0..W {
                    strip[r] += steps[r] * g;
                }
            }
        } else {
            for (pos, &j) in idx.iter().enumerate() {
                let e = (lo + pos) * W;
                let gs: &[f64; W] = (&self.weights[e..e + W]).try_into().expect("strip");
                let at = j as usize * W;
                let strip: &mut [f64; W] =
                    (&mut self.fields[at..at + W]).try_into().expect("strip");
                for r in 0..W {
                    strip[r] += steps[r] * gs[r];
                }
            }
        }
    }

    /// Proposes flipping chain `c` collectively in every replica.
    /// Internal-edge weights come from `chains` (baked at chain-compile
    /// time from the base problem — exactly what the serial kernel
    /// reads, ICE or not); accepted replicas flip member by member in
    /// member order, preserving serial field-accumulation order.
    pub fn sweep_chain(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        c: usize,
        mut accept: impl FnMut(usize, f64) -> bool,
    ) {
        let w = self.width;
        self.deltas[..w].fill(0.0);
        for &i in chains.members(c) {
            let base = i as usize * w;
            for r in 0..w {
                self.deltas[r] +=
                    -2.0 * self.spins[base + r] as f64 * self.fields[base + r];
            }
        }
        for &(a, b, g) in chains.internal_edges(c) {
            let ab = a as usize * w;
            let bb = b as usize * w;
            for r in 0..w {
                self.deltas[r] +=
                    4.0 * g * self.spins[ab + r] as f64 * self.spins[bb + r] as f64;
            }
        }
        let mut any = false;
        for r in 0..w {
            self.mask[r] = accept(r, self.deltas[r]);
            any |= self.mask[r];
        }
        if !any {
            return;
        }
        for &i in chains.members(c) {
            let base = i as usize * w;
            for r in 0..w {
                if self.mask[r] {
                    let s = self.spins[base + r];
                    self.spins[base + r] = -s;
                    self.steps[r] = -2.0 * s as f64;
                } else {
                    self.steps[r] = 0.0;
                }
            }
            self.scatter(problem, i as usize);
        }
    }

    /// One CSR row walk updating all replicas: for each row entry
    /// `(j, g)`, `fields[j*R..][..R] += steps * g` — a contiguous,
    /// autovectorizable strip (rejected replicas carry step 0, which
    /// only ever normalizes a zero's sign).
    fn scatter(&mut self, problem: &CompiledProblem, i: usize) {
        let w = self.width;
        let (lo, hi) = problem.row_bounds(i);
        let idx = &problem.neighbors_flat()[lo..hi];
        let steps = &self.steps[..w];
        if self.shared() {
            let gs = &problem.weights_flat()[lo..hi];
            for (&j, &g) in idx.iter().zip(gs) {
                let at = j as usize * w;
                let strip = &mut self.fields[at..at + w];
                for (f, &s) in strip.iter_mut().zip(steps) {
                    *f += s * g;
                }
            }
        } else {
            for (pos, &j) in idx.iter().enumerate() {
                let e = (lo + pos) * w;
                let gs = &self.weights[e..e + w];
                let at = j as usize * w;
                let strip = &mut self.fields[at..at + w];
                for ((f, &s), &g) in strip.iter_mut().zip(steps).zip(gs) {
                    *f += s * g;
                }
            }
        }
    }
}

/// The SQA analogue of [`ReplicaBatch`]: `R` independent `n×P`
/// Trotter-replica states in one strided buffer, `spins[(k*n+i)*R + r]`
/// (slice-major per replica, replica-minor strips), with the same
/// shared/per-replica coefficient modes and the same bit-identity
/// contract against a serial [`SqaState`].
#[derive(Clone, Debug, Default)]
pub struct SqaReplicaBatch {
    width: usize,
    n: usize,
    slices: usize,
    /// `spins[(k*n + i)*width + r]`.
    spins: Vec<Spin>,
    /// Cached per-slice problem-term fields, parallel to `spins`.
    fields: Vec<f64>,
    /// Per-replica linear terms `linear[i*width + r]` (slices share).
    linear: Vec<f64>,
    /// Per-replica coupling strips `weights[e*width + r]`; empty in
    /// shared mode.
    weights: Vec<f64>,
    steps: Vec<f64>,
    deltas: Vec<f64>,
    mask: Vec<bool>,
}

impl SqaReplicaBatch {
    /// An empty batch; call a `reset_*` method before sweeping.
    pub fn new() -> Self {
        SqaReplicaBatch::default()
    }

    /// Replicas per batch.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Trotter slices per replica.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.slices
    }

    #[inline]
    fn shared(&self) -> bool {
        self.weights.is_empty()
    }

    fn reset_common(&mut self, problem: &CompiledProblem, slices: usize, width: usize) {
        assert!(width > 0, "batch width must be positive");
        assert!(slices >= 2, "need at least 2 Trotter slices");
        let n = problem.num_spins();
        self.width = width;
        self.n = n;
        self.slices = slices;
        self.spins.clear();
        self.spins.resize(slices * n * width, 1);
        self.fields.clear();
        self.fields.resize(slices * n * width, 0.0);
        self.linear.clear();
        self.linear.resize(n * width, 0.0);
        self.steps.clear();
        self.steps.resize(width, 0.0);
        self.deltas.clear();
        self.deltas.resize(width, 0.0);
        self.mask.clear();
        self.mask.resize(width, false);
    }

    /// Shared-coefficient reset (see [`ReplicaBatch::reset_shared`]).
    pub fn reset_shared(&mut self, problem: &CompiledProblem, slices: usize, width: usize) {
        self.reset_common(problem, slices, width);
        self.weights.clear();
        for i in 0..self.n {
            let f = problem.linear(i);
            self.linear[i * width..(i + 1) * width].fill(f);
        }
    }

    /// Per-replica-coefficient reset (see
    /// [`ReplicaBatch::reset_per_replica`]).
    pub fn reset_per_replica(&mut self, structure: &CompiledProblem, slices: usize, width: usize) {
        self.reset_common(structure, slices, width);
        self.weights.clear();
        self.weights.resize(structure.num_entries() * width, 0.0);
    }

    /// Binds replica `r`'s coefficients (see
    /// [`ReplicaBatch::bind_replica`]).
    pub fn bind_replica(&mut self, r: usize, problem: &CompiledProblem) {
        assert!(
            !self.shared(),
            "bind_replica needs a per-replica batch (reset_per_replica)"
        );
        assert_eq!(problem.num_spins(), self.n, "structure mismatch");
        assert_eq!(
            problem.num_entries() * self.width,
            self.weights.len(),
            "structure mismatch"
        );
        let w = self.width;
        for (i, &f) in problem.linear_terms().iter().enumerate() {
            self.linear[i * w + r] = f;
        }
        for (e, &g) in problem.weights_flat().iter().enumerate() {
            self.weights[e * w + r] = g;
        }
    }

    /// Initializes replica `r`'s slices from `init(k, i)` and rebuilds
    /// its field cache.
    pub fn init_replica(
        &mut self,
        problem: &CompiledProblem,
        r: usize,
        mut init: impl FnMut(usize, usize) -> Spin,
    ) {
        let w = self.width;
        for k in 0..self.slices {
            for i in 0..self.n {
                self.spins[(k * self.n + i) * w + r] = init(k, i);
            }
        }
        self.rebuild_fields(problem, r);
    }

    /// Initializes replica `r` uniformly at random, drawing slice-major
    /// like [`SqaState::reset_random`].
    pub fn init_replica_random<R: Rng + ?Sized>(
        &mut self,
        problem: &CompiledProblem,
        r: usize,
        rng: &mut R,
    ) {
        let w = self.width;
        for at in 0..self.slices * self.n {
            self.spins[at * w + r] = if rng.random_bool(0.5) { 1 } else { -1 };
        }
        self.rebuild_fields(problem, r);
    }

    fn rebuild_fields(&mut self, problem: &CompiledProblem, r: usize) {
        let w = self.width;
        for k in 0..self.slices {
            let base = k * self.n;
            for i in 0..self.n {
                let (lo, hi) = problem.row_bounds(i);
                let idx = &problem.neighbors_flat()[lo..hi];
                let mut h = self.linear[i * w + r];
                if self.shared() {
                    let gs = &problem.weights_flat()[lo..hi];
                    for (&j, &g) in idx.iter().zip(gs) {
                        h += g * self.spins[(base + j as usize) * w + r] as f64;
                    }
                } else {
                    for (pos, &j) in idx.iter().enumerate() {
                        let g = self.weights[(lo + pos) * w + r];
                        h += g * self.spins[(base + j as usize) * w + r] as f64;
                    }
                }
                self.fields[(base + i) * w + r] = h;
            }
        }
    }

    /// The spin at `(slice k, spin i, replica r)`.
    #[inline]
    pub fn spin(&self, k: usize, i: usize, r: usize) -> Spin {
        self.spins[(k * self.n + i) * self.width + r]
    }

    /// Replica `r`'s slice `k`, gathered out of the strided layout.
    pub fn replica_slice(&self, r: usize, k: usize) -> Vec<Spin> {
        let base = k * self.n;
        (0..self.n)
            .map(|i| self.spins[(base + i) * self.width + r])
            .collect()
    }

    /// Replica `r`'s programmed energy of slice `k` (same accumulation
    /// order as [`SqaState::slice_energy`]).
    pub fn slice_energy(&self, r: usize, k: usize) -> f64 {
        let w = self.width;
        let base = k * self.n;
        (0..self.n)
            .map(|i| {
                let at = (base + i) * w + r;
                self.spins[at] as f64 * (self.fields[at] + self.linear[i * w + r]) / 2.0
            })
            .sum()
    }

    /// A local `(slice k, spin i)` proposal over all replicas:
    /// `accept(r, ΔE_problem, s_i·(s_up + s_down))` decides per replica
    /// (the caller folds in `w_problem`/γ), accepted replicas flip and
    /// share one CSR row walk.
    #[inline]
    pub fn sweep_spin_slice(
        &mut self,
        problem: &CompiledProblem,
        k: usize,
        up: usize,
        down: usize,
        i: usize,
        mut accept: impl FnMut(usize, f64, f64) -> bool,
    ) {
        let w = self.width;
        let at = (k * self.n + i) * w;
        let up_at = (up * self.n + i) * w;
        let down_at = (down * self.n + i) * w;
        let mut any = false;
        for r in 0..w {
            let s = self.spins[at + r];
            let d_problem = -2.0 * s as f64 * self.fields[at + r];
            let pair = s as f64 * (self.spins[up_at + r] + self.spins[down_at + r]) as f64;
            if accept(r, d_problem, pair) {
                self.spins[at + r] = -s;
                self.steps[r] = -2.0 * s as f64;
                any = true;
            } else {
                self.steps[r] = 0.0;
            }
        }
        if any {
            self.scatter(problem, k, i);
        }
    }

    /// A global per-spin proposal (flip `i` in all slices): `accept(r,
    /// ΣΔE_problem)` decides per replica; accepted replicas flip slice
    /// by slice in `k` order, each slice sharing one row walk.
    pub fn sweep_spin_global(
        &mut self,
        problem: &CompiledProblem,
        i: usize,
        mut accept: impl FnMut(usize, f64) -> bool,
    ) {
        let w = self.width;
        self.deltas[..w].fill(0.0);
        for k in 0..self.slices {
            let at = (k * self.n + i) * w;
            for r in 0..w {
                self.deltas[r] += -2.0 * self.spins[at + r] as f64 * self.fields[at + r];
            }
        }
        let mut any = false;
        for r in 0..w {
            self.mask[r] = accept(r, self.deltas[r]);
            any |= self.mask[r];
        }
        if !any {
            return;
        }
        for k in 0..self.slices {
            let at = (k * self.n + i) * w;
            for r in 0..w {
                if self.mask[r] {
                    let s = self.spins[at + r];
                    self.spins[at + r] = -s;
                    self.steps[r] = -2.0 * s as f64;
                } else {
                    self.steps[r] = 0.0;
                }
            }
            self.scatter(problem, k, i);
        }
    }

    /// A per-slice chain proposal: `accept(r, ΔE_problem, Σ_members
    /// s·(s_up + s_down))` decides per replica; accepted replicas flip
    /// member by member in member order within slice `k`.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_chain_slice(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        k: usize,
        up: usize,
        down: usize,
        c: usize,
        mut accept: impl FnMut(usize, f64, f64) -> bool,
    ) {
        let w = self.width;
        self.deltas[..w].fill(0.0);
        self.chain_delta_into(chains, k, c);
        // Slice-coupling pair terms, accumulated per replica in member
        // order (exact small-integer sums, so grouping is exact).
        let mut any = false;
        {
            let mut pairs = std::mem::take(&mut self.steps);
            pairs[..w].fill(0.0);
            for &i in chains.members(c) {
                let at = (k * self.n + i as usize) * w;
                let up_at = (up * self.n + i as usize) * w;
                let down_at = (down * self.n + i as usize) * w;
                for r in 0..w {
                    pairs[r] += self.spins[at + r] as f64
                        * (self.spins[up_at + r] + self.spins[down_at + r]) as f64;
                }
            }
            for r in 0..w {
                self.mask[r] = accept(r, self.deltas[r], pairs[r]);
                any |= self.mask[r];
            }
            self.steps = pairs;
        }
        if !any {
            return;
        }
        self.flip_chain_masked(problem, chains, k, c);
    }

    /// A global chain proposal (flip chain `c` in all slices):
    /// `accept(r, ΣΔE_problem)`; accepted replicas flip slice by slice
    /// in `k` order, members in member order.
    pub fn sweep_chain_global(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        c: usize,
        mut accept: impl FnMut(usize, f64) -> bool,
    ) {
        let w = self.width;
        self.deltas[..w].fill(0.0);
        for k in 0..self.slices {
            self.chain_delta_into(chains, k, c);
        }
        let mut any = false;
        for r in 0..w {
            self.mask[r] = accept(r, self.deltas[r]);
            any |= self.mask[r];
        }
        if !any {
            return;
        }
        for k in 0..self.slices {
            self.flip_chain_masked(problem, chains, k, c);
        }
    }

    /// Accumulates slice `k`'s chain-`c` problem-term delta into
    /// `deltas`, in the serial order: member flip-deltas, then internal
    /// edges (weights baked into `chains`, shared by all replicas).
    fn chain_delta_into(&mut self, chains: &CompiledChains, k: usize, c: usize) {
        let w = self.width;
        let base = k * self.n;
        for &i in chains.members(c) {
            let at = (base + i as usize) * w;
            for r in 0..w {
                self.deltas[r] += -2.0 * self.spins[at + r] as f64 * self.fields[at + r];
            }
        }
        for &(a, b, g) in chains.internal_edges(c) {
            let ab = (base + a as usize) * w;
            let bb = (base + b as usize) * w;
            for r in 0..w {
                self.deltas[r] +=
                    4.0 * g * self.spins[ab + r] as f64 * self.spins[bb + r] as f64;
            }
        }
    }

    /// Flips chain `c` in slice `k` for every masked replica, member by
    /// member (serial accumulation order).
    fn flip_chain_masked(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        k: usize,
        c: usize,
    ) {
        let w = self.width;
        for &i in chains.members(c) {
            let at = (k * self.n + i as usize) * w;
            for r in 0..w {
                if self.mask[r] {
                    let s = self.spins[at + r];
                    self.spins[at + r] = -s;
                    self.steps[r] = -2.0 * s as f64;
                } else {
                    self.steps[r] = 0.0;
                }
            }
            self.scatter(problem, k, i as usize);
        }
    }

    /// One CSR row walk scattering all replicas' slice-`k` field
    /// updates for a flip of spin `i`.
    fn scatter(&mut self, problem: &CompiledProblem, k: usize, i: usize) {
        let w = self.width;
        let base = k * self.n;
        let (lo, hi) = problem.row_bounds(i);
        let idx = &problem.neighbors_flat()[lo..hi];
        let steps = &self.steps[..w];
        if self.shared() {
            let gs = &problem.weights_flat()[lo..hi];
            for (&j, &g) in idx.iter().zip(gs) {
                let at = (base + j as usize) * w;
                let strip = &mut self.fields[at..at + w];
                for (f, &s) in strip.iter_mut().zip(steps) {
                    *f += s * g;
                }
            }
        } else {
            for (pos, &j) in idx.iter().enumerate() {
                let e = (lo + pos) * w;
                let gs = &self.weights[e..e + w];
                let at = (base + j as usize) * w;
                let strip = &mut self.fields[at..at + w];
                for ((f, &s), &g) in strip.iter_mut().zip(steps).zip(gs) {
                    *f += s * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = IsingProblem::new(n);
        for i in 0..n {
            p.set_linear(i, rng.random_range(-1.0..1.0));
            for j in (i + 1)..n {
                if rng.random_bool(0.6) {
                    p.set_coupling(i, j, rng.random_range(-1.0..1.0));
                }
            }
        }
        p
    }

    fn random_spins(n: usize, rng: &mut StdRng) -> Vec<Spin> {
        (0..n)
            .map(|_| if rng.random_bool(0.5) { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn incremental_fields_track_flips_exactly() {
        let p = random_problem(12, 1);
        let c = CompiledProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = SweepState::new();
        state.reset(&c, &random_spins(12, &mut rng));
        for _ in 0..500 {
            let i = rng.random_range(0..12);
            let expect = p.flip_delta(state.spins(), i);
            assert!((state.flip_delta(i) - expect).abs() < 1e-9);
            state.flip(&c, i);
        }
        // Fields still exact after 500 updates.
        for i in 0..12 {
            assert!((state.field(i) - c.local_field(state.spins(), i)).abs() < 1e-9);
        }
        assert!((state.energy(&c) - p.energy(state.spins())).abs() < 1e-9);
    }

    #[test]
    fn chain_moves_match_naive_chain_delta() {
        let p = random_problem(10, 3);
        let c = CompiledProblem::new(&p);
        let chains = vec![vec![0usize, 1, 2], vec![5, 6], vec![9]];
        let cc = CompiledChains::compile(&c, &chains);
        assert_eq!(cc.len(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = SweepState::new();
        state.reset(&c, &random_spins(10, &mut rng));
        for step in 0..200 {
            let ci = step % chains.len();
            let expect = crate::sa::chain_flip_delta(&p, state.spins(), &chains[ci]);
            assert!((state.chain_flip_delta(&cc, ci) - expect).abs() < 1e-9);
            state.chain_flip(&c, &cc, ci);
        }
    }

    #[test]
    fn sqa_state_mirrors_per_slice_sweep_state() {
        let p = random_problem(8, 5);
        let c = CompiledProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(6);
        let starts: Vec<Vec<Spin>> = (0..4).map(|_| random_spins(8, &mut rng)).collect();
        let mut sqa = SqaState::new();
        sqa.reset(&c, 4, |k, i| starts[k][i]);
        for (k, start) in starts.iter().enumerate() {
            assert_eq!(sqa.slice(k), &start[..]);
            for i in 0..8 {
                assert!((sqa.flip_delta(k, i) - c.flip_delta(start, i)).abs() < 1e-12);
            }
        }
        // Flips in one slice leave the others' deltas untouched.
        sqa.flip(&c, 2, 3);
        assert_eq!(sqa.spin(2, 3), -starts[2][3]);
        for i in 0..8 {
            assert!((sqa.flip_delta(0, i) - c.flip_delta(&starts[0], i)).abs() < 1e-12);
        }
        assert!((sqa.slice_energy(&c, 2) - p.energy(sqa.slice(2))).abs() < 1e-9);
    }

    #[test]
    fn compiled_chains_find_internal_edges_only() {
        let mut p = IsingProblem::new(6);
        p.set_coupling(0, 1, -5.0);
        p.set_coupling(1, 2, -5.0);
        p.set_coupling(2, 3, 0.5); // crosses the chain boundary
        p.set_coupling(3, 4, -5.0);
        let c = CompiledProblem::new(&p);
        let cc = CompiledChains::compile(&c, &[vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(cc.internal_edges(0).len(), 2);
        assert_eq!(cc.internal_edges(1).len(), 1);
        assert_eq!(cc.members(1), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_chain_member_panics() {
        let p = IsingProblem::new(3);
        let c = CompiledProblem::new(&p);
        let _ = CompiledChains::compile(&c, &[vec![0, 7]]);
    }
}
