//! The incremental-local-field sweep engine (see the DESIGN section of
//! the crate docs).
//!
//! Every Monte-Carlo backend in this crate reduces to the same three
//! primitives over a [`CompiledProblem`]:
//!
//! * **propose** a spin flip: `ΔE = −2·s_i·h_i`, O(1) from the cached
//!   local field `h_i = f_i + Σ_j g_ij·s_j`;
//! * **accept** a flip: negate `s_i` and push `±2·g_ij` into each
//!   neighbor's cached field, O(degree) — paid only for accepted moves,
//!   which is the winning trade late in a schedule where acceptance
//!   collapses;
//! * **propose/accept a chain flip**: the per-spin deltas summed from
//!   cached fields plus a `+4·g_ab·s_a·s_b` correction per *internal*
//!   edge, with the internal edge list precompiled per chain by
//!   [`CompiledChains`] instead of rediscovered by `chain.contains(j)`
//!   scans on every sweep.
//!
//! [`SweepState`] holds one classical configuration and its fields;
//! [`SqaState`] holds the `n×P` Trotter-replica generalization with one
//! field cache per slice, in a single flat buffer. Both are designed to
//! be allocated once per worker thread and reset per anneal, so the hot
//! loop performs no allocation at all.

use quamax_ising::{CompiledProblem, Spin};
use rand::Rng;

/// Precompiled chain-collective move tables for one problem: member
/// lists and internal-edge lists in flat CSR-style storage.
#[derive(Clone, Debug)]
pub struct CompiledChains {
    /// Flat member indices.
    members: Vec<u32>,
    /// `member_offsets[c]..member_offsets[c+1]` delimits chain `c`.
    member_offsets: Vec<u32>,
    /// Flat internal edges `(a, b, g_ab)` with both endpoints in the
    /// owning chain.
    internal: Vec<(u32, u32, f64)>,
    /// `internal_offsets[c]..internal_offsets[c+1]` delimits chain `c`.
    internal_offsets: Vec<u32>,
}

impl Default for CompiledChains {
    /// No chains (plain single-spin dynamics).
    fn default() -> Self {
        CompiledChains {
            members: Vec::new(),
            member_offsets: vec![0],
            internal: Vec::new(),
            internal_offsets: vec![0],
        }
    }
}

impl CompiledChains {
    /// Compiles `chains` against `problem`. Internal edges are found
    /// through a membership mask in O(Σ degree), not by per-sweep
    /// membership scans.
    ///
    /// # Panics
    /// Panics when a chain member is out of range for the problem, or
    /// when a spin appears in more than one chain (the membership mask
    /// identifies internal edges by owner, so overlapping chains would
    /// silently drop edges; the naive `sa::chain_flip_delta` tolerates
    /// overlap, but no embedding produces it).
    pub fn compile(problem: &CompiledProblem, chains: &[Vec<usize>]) -> Self {
        let n = problem.num_spins();
        let mut compiled = CompiledChains {
            members: Vec::new(),
            member_offsets: vec![0],
            internal: Vec::new(),
            internal_offsets: vec![0],
        };
        // chain id + 1 per spin; 0 = unassigned.
        let mut owner = vec![0u32; n];
        for (c, chain) in chains.iter().enumerate() {
            for &i in chain {
                assert!(i < n, "chain member {i} out of range");
                assert_eq!(
                    owner[i], 0,
                    "spin {i} appears in more than one chain (chains must be disjoint)"
                );
                owner[i] = c as u32 + 1;
            }
        }
        for (c, chain) in chains.iter().enumerate() {
            for &i in chain {
                compiled.members.push(i as u32);
                let (idx, w) = problem.row(i);
                for (&j, &g) in idx.iter().zip(w) {
                    // Each internal edge recorded once (a < b).
                    if (j as usize) > i && owner[j as usize] == c as u32 + 1 {
                        compiled.internal.push((i as u32, j, g));
                    }
                }
            }
            compiled.member_offsets.push(compiled.members.len() as u32);
            compiled
                .internal_offsets
                .push(compiled.internal.len() as u32);
        }
        compiled
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// `true` when no chains were compiled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chain `c`'s member spins.
    #[inline]
    pub fn members(&self, c: usize) -> &[u32] {
        let lo = self.member_offsets[c] as usize;
        let hi = self.member_offsets[c + 1] as usize;
        &self.members[lo..hi]
    }

    /// Chain `c`'s internal edges as `(a, b, g_ab)`.
    #[inline]
    pub fn internal_edges(&self, c: usize) -> &[(u32, u32, f64)] {
        let lo = self.internal_offsets[c] as usize;
        let hi = self.internal_offsets[c + 1] as usize;
        &self.internal[lo..hi]
    }
}

/// One configuration plus its cached local fields — the persistent
/// state of a classical (SA) sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepState {
    spins: Vec<Spin>,
    fields: Vec<f64>,
}

impl SweepState {
    /// An empty state; call [`SweepState::reset`] before sweeping.
    pub fn new() -> Self {
        SweepState::default()
    }

    /// (Re)initializes the state to `spins` under `problem`, reusing
    /// buffers.
    pub fn reset(&mut self, problem: &CompiledProblem, spins: &[Spin]) {
        assert_eq!(
            spins.len(),
            problem.num_spins(),
            "configuration length mismatch"
        );
        self.spins.clear();
        self.spins.extend_from_slice(spins);
        problem.local_fields_into(&self.spins, &mut self.fields);
    }

    /// (Re)initializes to a uniform-random configuration drawn from
    /// `rng` (one `random_bool(0.5)` per spin, in index order),
    /// directly into the reused buffer — the allocation-free form of
    /// `reset` for batch anneal starts.
    pub fn reset_random<R: Rng + ?Sized>(&mut self, problem: &CompiledProblem, rng: &mut R) {
        self.spins.clear();
        self.spins
            .extend((0..problem.num_spins()).map(|_| if rng.random_bool(0.5) { 1 } else { -1 }));
        problem.local_fields_into(&self.spins, &mut self.fields);
    }

    /// The current configuration.
    pub fn spins(&self) -> &[Spin] {
        &self.spins
    }

    /// The cached local field of spin `i`.
    #[inline]
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// O(1) proposal: the energy change from flipping spin `i`.
    #[inline]
    pub fn flip_delta(&self, i: usize) -> f64 {
        -2.0 * self.spins[i] as f64 * self.fields[i]
    }

    /// Accepts a flip of spin `i`: O(degree) neighbor-field update.
    #[inline]
    pub fn flip(&mut self, problem: &CompiledProblem, i: usize) {
        let s_new = -self.spins[i];
        self.spins[i] = s_new;
        let step = 2.0 * s_new as f64;
        let (idx, w) = problem.row(i);
        for (&j, &g) in idx.iter().zip(w) {
            self.fields[j as usize] += step * g;
        }
    }

    /// O(chain + internal) proposal: the energy change from flipping
    /// every member of chain `c` simultaneously. The `+4g·s_a·s_b` term
    /// restores each internal edge the per-spin deltas double-count
    /// with the wrong sign (see `sa::chain_flip_delta`).
    #[inline]
    pub fn chain_flip_delta(&self, chains: &CompiledChains, c: usize) -> f64 {
        let mut delta = 0.0;
        for &i in chains.members(c) {
            delta += self.flip_delta(i as usize);
        }
        for &(a, b, g) in chains.internal_edges(c) {
            delta += 4.0 * g * self.spins[a as usize] as f64 * self.spins[b as usize] as f64;
        }
        delta
    }

    /// Accepts a chain flip: members flip one by one, each paying its
    /// O(degree) field update (fields stay exact throughout).
    pub fn chain_flip(&mut self, problem: &CompiledProblem, chains: &CompiledChains, c: usize) {
        for &i in chains.members(c) {
            self.flip(problem, i as usize);
        }
    }

    /// The configuration energy, reconstructed in O(n) from the cached
    /// fields: `E = Σ_i s_i·(h_i + f_i)/2` (each coupling appears in
    /// two fields, each linear term in one).
    pub fn energy(&self, problem: &CompiledProblem) -> f64 {
        self.spins
            .iter()
            .enumerate()
            .map(|(i, &s)| s as f64 * (self.fields[i] + problem.linear(i)) / 2.0)
            .sum()
    }

    /// Moves the configuration out, leaving the state reusable.
    pub fn take_spins(&mut self) -> Vec<Spin> {
        std::mem::take(&mut self.spins)
    }
}

/// The flat `n×P` Trotter-replica state of an SQA sweep: slice-major
/// spins and per-slice local-field caches in single contiguous buffers.
#[derive(Clone, Debug, Default)]
pub struct SqaState {
    n: usize,
    slices: usize,
    /// `spins[k*n + i]` = spin `i` in slice `k`.
    spins: Vec<Spin>,
    /// Parallel per-slice local fields of the *problem* term.
    fields: Vec<f64>,
}

impl SqaState {
    /// An empty state; call [`SqaState::reset`] before sweeping.
    pub fn new() -> Self {
        SqaState::default()
    }

    /// (Re)initializes all `slices` replicas, reusing buffers.
    /// `init(k, i)` provides spin `i` of slice `k`.
    pub fn reset(
        &mut self,
        problem: &CompiledProblem,
        slices: usize,
        mut init: impl FnMut(usize, usize) -> Spin,
    ) {
        let n = problem.num_spins();
        self.n = n;
        self.slices = slices;
        self.spins.clear();
        for k in 0..slices {
            for i in 0..n {
                self.spins.push(init(k, i));
            }
        }
        self.fields.clear();
        self.fields.resize(slices * n, 0.0);
        for k in 0..slices {
            let slice = &self.spins[k * n..(k + 1) * n];
            for i in 0..n {
                self.fields[k * n + i] = problem.local_field(slice, i);
            }
        }
    }

    /// (Re)initializes all `slices` replicas uniformly at random from
    /// `rng` (slice-major draw order, one `random_bool(0.5)` per
    /// (slice, spin)), directly into the reused buffer — the
    /// allocation-free form of `reset` for batch anneal starts.
    pub fn reset_random<R: Rng + ?Sized>(
        &mut self,
        problem: &CompiledProblem,
        slices: usize,
        rng: &mut R,
    ) {
        let n = problem.num_spins();
        self.n = n;
        self.slices = slices;
        self.spins.clear();
        self.spins
            .extend((0..slices * n).map(|_| if rng.random_bool(0.5) { 1 } else { -1 }));
        self.fields.clear();
        self.fields.resize(slices * n, 0.0);
        for k in 0..slices {
            let slice = &self.spins[k * n..(k + 1) * n];
            for i in 0..n {
                self.fields[k * n + i] = problem.local_field(slice, i);
            }
        }
    }

    /// Number of Trotter slices.
    pub fn num_slices(&self) -> usize {
        self.slices
    }

    /// Slice `k` as a spin configuration.
    #[inline]
    pub fn slice(&self, k: usize) -> &[Spin] {
        &self.spins[k * self.n..(k + 1) * self.n]
    }

    /// The spin at `(slice k, index i)`.
    #[inline]
    pub fn spin(&self, k: usize, i: usize) -> Spin {
        self.spins[k * self.n + i]
    }

    /// O(1) proposal: the *problem-term* energy change from flipping
    /// `(k, i)` (the inter-slice term is the caller's, since it depends
    /// on the schedule-dependent coupling γ).
    #[inline]
    pub fn flip_delta(&self, k: usize, i: usize) -> f64 {
        let at = k * self.n + i;
        -2.0 * self.spins[at] as f64 * self.fields[at]
    }

    /// Accepts a flip of `(k, i)`, updating slice `k`'s field cache.
    #[inline]
    pub fn flip(&mut self, problem: &CompiledProblem, k: usize, i: usize) {
        let base = k * self.n;
        let s_new = -self.spins[base + i];
        self.spins[base + i] = s_new;
        let step = 2.0 * s_new as f64;
        let (idx, w) = problem.row(i);
        for (&j, &g) in idx.iter().zip(w) {
            self.fields[base + j as usize] += step * g;
        }
    }

    /// Chain-flip proposal within slice `k` (problem term only).
    #[inline]
    pub fn chain_flip_delta(&self, chains: &CompiledChains, k: usize, c: usize) -> f64 {
        let base = k * self.n;
        let mut delta = 0.0;
        for &i in chains.members(c) {
            let at = base + i as usize;
            delta += -2.0 * self.spins[at] as f64 * self.fields[at];
        }
        for &(a, b, g) in chains.internal_edges(c) {
            delta += 4.0
                * g
                * self.spins[base + a as usize] as f64
                * self.spins[base + b as usize] as f64;
        }
        delta
    }

    /// Accepts a chain flip within slice `k`.
    pub fn chain_flip(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        k: usize,
        c: usize,
    ) {
        for &i in chains.members(c) {
            self.flip(problem, k, i as usize);
        }
    }

    /// The programmed energy of slice `k`, in O(n) from cached fields.
    pub fn slice_energy(&self, problem: &CompiledProblem, k: usize) -> f64 {
        let base = k * self.n;
        (0..self.n)
            .map(|i| {
                self.spins[base + i] as f64 * (self.fields[base + i] + problem.linear(i)) / 2.0
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = IsingProblem::new(n);
        for i in 0..n {
            p.set_linear(i, rng.random_range(-1.0..1.0));
            for j in (i + 1)..n {
                if rng.random_bool(0.6) {
                    p.set_coupling(i, j, rng.random_range(-1.0..1.0));
                }
            }
        }
        p
    }

    fn random_spins(n: usize, rng: &mut StdRng) -> Vec<Spin> {
        (0..n)
            .map(|_| if rng.random_bool(0.5) { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn incremental_fields_track_flips_exactly() {
        let p = random_problem(12, 1);
        let c = CompiledProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = SweepState::new();
        state.reset(&c, &random_spins(12, &mut rng));
        for _ in 0..500 {
            let i = rng.random_range(0..12);
            let expect = p.flip_delta(state.spins(), i);
            assert!((state.flip_delta(i) - expect).abs() < 1e-9);
            state.flip(&c, i);
        }
        // Fields still exact after 500 updates.
        for i in 0..12 {
            assert!((state.field(i) - c.local_field(state.spins(), i)).abs() < 1e-9);
        }
        assert!((state.energy(&c) - p.energy(state.spins())).abs() < 1e-9);
    }

    #[test]
    fn chain_moves_match_naive_chain_delta() {
        let p = random_problem(10, 3);
        let c = CompiledProblem::new(&p);
        let chains = vec![vec![0usize, 1, 2], vec![5, 6], vec![9]];
        let cc = CompiledChains::compile(&c, &chains);
        assert_eq!(cc.len(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = SweepState::new();
        state.reset(&c, &random_spins(10, &mut rng));
        for step in 0..200 {
            let ci = step % chains.len();
            let expect = crate::sa::chain_flip_delta(&p, state.spins(), &chains[ci]);
            assert!((state.chain_flip_delta(&cc, ci) - expect).abs() < 1e-9);
            state.chain_flip(&c, &cc, ci);
        }
    }

    #[test]
    fn sqa_state_mirrors_per_slice_sweep_state() {
        let p = random_problem(8, 5);
        let c = CompiledProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(6);
        let starts: Vec<Vec<Spin>> = (0..4).map(|_| random_spins(8, &mut rng)).collect();
        let mut sqa = SqaState::new();
        sqa.reset(&c, 4, |k, i| starts[k][i]);
        for (k, start) in starts.iter().enumerate() {
            assert_eq!(sqa.slice(k), &start[..]);
            for i in 0..8 {
                assert!((sqa.flip_delta(k, i) - c.flip_delta(start, i)).abs() < 1e-12);
            }
        }
        // Flips in one slice leave the others' deltas untouched.
        sqa.flip(&c, 2, 3);
        assert_eq!(sqa.spin(2, 3), -starts[2][3]);
        for i in 0..8 {
            assert!((sqa.flip_delta(0, i) - c.flip_delta(&starts[0], i)).abs() < 1e-12);
        }
        assert!((sqa.slice_energy(&c, 2) - p.energy(sqa.slice(2))).abs() < 1e-9);
    }

    #[test]
    fn compiled_chains_find_internal_edges_only() {
        let mut p = IsingProblem::new(6);
        p.set_coupling(0, 1, -5.0);
        p.set_coupling(1, 2, -5.0);
        p.set_coupling(2, 3, 0.5); // crosses the chain boundary
        p.set_coupling(3, 4, -5.0);
        let c = CompiledProblem::new(&p);
        let cc = CompiledChains::compile(&c, &[vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(cc.internal_edges(0).len(), 2);
        assert_eq!(cc.internal_edges(1).len(), 1);
        assert_eq!(cc.members(1), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_chain_member_panics() {
        let p = IsingProblem::new(3);
        let c = CompiledProblem::new(&p);
        let _ = CompiledChains::compile(&c, &[vec![0, 7]]);
    }
}
