//! Intrinsic control errors (ICE) — the analog noise floor (§4).
//!
//! The DW2Q is an analog device: programmed Ising coefficients land on
//! the chip perturbed. The paper models ICE as Gaussian noise refreshed
//! on each anneal, with moments measured during the most delicate phase
//! of the run: `δf ≈ 0.008 ± 0.02` on fields and `δg ≈ −0.015 ± 0.025`
//! on couplers. ICE is the mechanism that punishes large `|J_F|` (the
//! renormalization squeezes problem coefficients into the noise) and
//! ties solution quality to the Ising energy gap (Figs. 5 and 12).

use quamax_ising::{CompiledProblem, IsingProblem};
use quamax_linalg::rng::normal;
use rand::Rng;

/// Gaussian perturbation model for programmed coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IceModel {
    /// Mean of the field perturbation `⟨δf⟩`.
    pub field_mean: f64,
    /// Standard deviation of the field perturbation.
    pub field_std: f64,
    /// Mean of the coupler perturbation `⟨δg⟩`.
    pub coupler_mean: f64,
    /// Standard deviation of the coupler perturbation.
    pub coupler_std: f64,
}

impl IceModel {
    /// The paper's measured DW2Q moments (§4).
    pub fn dw2q() -> Self {
        IceModel {
            field_mean: 0.008,
            field_std: 0.02,
            coupler_mean: -0.015,
            coupler_std: 0.025,
        }
    }

    /// The workspace's calibrated default: the paper's moments scaled
    /// to 0.2×.
    ///
    /// Rationale (see DESIGN.md §2.1 and EXPERIMENTS.md): under this
    /// simulator's classical dynamics, the paper's absolute ICE moments
    /// extinguish the ground-state probability for N ≥ 28 problems
    /// entirely — quantum hardware evidently tolerates more control
    /// noise than schedule-matched Metropolis dynamics do. Scaling the
    /// noise floor to 0.2× lands the headline operating points on the
    /// paper's numbers (48×48 BPSK reaches BER 1e-6 in ~15 µs vs the
    /// paper's 10–20 µs) while keeping every ICE-driven mechanism
    /// (J_F squeeze, gap sensitivity) active. The `ablation_ice` bench
    /// sweeps this scale.
    pub fn calibrated() -> Self {
        IceModel::dw2q().scaled(0.2)
    }

    /// A *drift excursion*: the same model with every moment inflated
    /// by `factor` — the transient regime where the chip's analog
    /// control has wandered off its calibration point (flux drift,
    /// temperature steps) and every programmed coefficient lands worse
    /// than the steady-state floor. Rides [`IceModel::scaled`]; the
    /// fault-injection layer (`quamax_ran::fault`) uses this as the
    /// device-level realization of an ICE-drift fault.
    ///
    /// # Panics
    /// Panics unless `factor ≥ 1` — an excursion never *improves* the
    /// noise floor (use [`IceModel::scaled`] directly to sweep below).
    pub fn excursion(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "a drift excursion inflates the noise floor (factor ≥ 1)"
        );
        self.scaled(factor)
    }

    /// A model with every moment scaled by `k` (used by the ICE
    /// ablation to sweep the noise floor).
    pub fn scaled(&self, k: f64) -> Self {
        IceModel {
            field_mean: self.field_mean * k,
            field_std: self.field_std * k,
            coupler_mean: self.coupler_mean * k,
            coupler_std: self.coupler_std * k,
        }
    }

    /// An exactly-zero noise model (ideal device).
    pub fn none() -> Self {
        IceModel {
            field_mean: 0.0,
            field_std: 0.0,
            coupler_mean: 0.0,
            coupler_std: 0.0,
        }
    }

    /// `true` when this model adds no noise at all.
    pub fn is_zero(&self) -> bool {
        self.field_mean == 0.0
            && self.field_std == 0.0
            && self.coupler_mean == 0.0
            && self.coupler_std == 0.0
    }

    /// Returns a copy of `problem` with fresh ICE applied to every
    /// coefficient — one anneal's effective Hamiltonian.
    pub fn perturb<R: Rng + ?Sized>(&self, problem: &IsingProblem, rng: &mut R) -> IsingProblem {
        if self.is_zero() {
            return problem.clone();
        }
        let n = problem.num_spins();
        let mut out = IsingProblem::new(n);
        for i in 0..n {
            let f = problem.linear(i);
            // Unused (zero-field) spins still sit on real hardware
            // qubits: they receive noise too.
            out.set_linear(i, f + normal(rng, self.field_mean, self.field_std));
        }
        for (i, j, g) in problem.couplings() {
            out.set_coupling(i, j, g + normal(rng, self.coupler_mean, self.coupler_std));
        }
        out
    }

    /// Refreezes one anneal's effective Hamiltonian into `scratch`:
    /// copies `base`'s coefficients (reusing the scratch allocation —
    /// the batching hot path's no-allocation contract) and applies
    /// fresh ICE to every field and coupling.
    ///
    /// Noise draw order is fixed by the compiled layout — fields in
    /// spin order, then couplings in CSR `(i, j)` order — so a given
    /// per-anneal RNG stream always produces the same effective
    /// Hamiltonian regardless of how the problem was built or which
    /// thread runs the anneal.
    pub fn refreeze<R: Rng + ?Sized>(
        &self,
        base: &CompiledProblem,
        scratch: &mut CompiledProblem,
        rng: &mut R,
    ) {
        scratch.refreeze_from(base);
        if self.is_zero() {
            return;
        }
        scratch.perturb_linear(|f| f + normal(rng, self.field_mean, self.field_std));
        scratch.perturb_couplings(|g| g + normal(rng, self.coupler_mean, self.coupler_std));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_problem() -> IsingProblem {
        let mut p = IsingProblem::new(5);
        for i in 0..5 {
            p.set_linear(i, 0.1 * i as f64);
            for j in (i + 1)..5 {
                p.set_coupling(i, j, -0.2 + 0.1 * (i + j) as f64);
            }
        }
        p
    }

    #[test]
    fn paper_moments() {
        let m = IceModel::dw2q();
        assert_eq!(m.field_mean, 0.008);
        assert_eq!(m.field_std, 0.02);
        assert_eq!(m.coupler_mean, -0.015);
        assert_eq!(m.coupler_std, 0.025);
    }

    #[test]
    fn zero_model_is_identity() {
        let p = sample_problem();
        let mut rng = StdRng::seed_from_u64(1);
        let q = IceModel::none().perturb(&p, &mut rng);
        assert_eq!(p, q);
    }

    #[test]
    fn perturbation_preserves_structure() {
        let p = sample_problem();
        let mut rng = StdRng::seed_from_u64(2);
        let q = IceModel::dw2q().perturb(&p, &mut rng);
        assert_eq!(q.num_spins(), p.num_spins());
        assert_eq!(q.num_couplings(), p.num_couplings());
        // Coefficients moved, but not far (5σ bound).
        for (i, j, g) in p.couplings() {
            let d = q.coupling(i, j) - g;
            assert!(d.abs() < 0.015 + 5.0 * 0.025, "δg={d}");
            assert!(d != 0.0, "coupling ({i},{j}) untouched");
        }
    }

    #[test]
    fn empirical_moments_match_model() {
        let p = sample_problem();
        let m = IceModel::dw2q();
        let mut rng = StdRng::seed_from_u64(3);
        let mut deltas = Vec::new();
        for _ in 0..2000 {
            let q = m.perturb(&p, &mut rng);
            for (i, j, g) in p.couplings() {
                deltas.push(q.coupling(i, j) - g);
            }
        }
        let n = deltas.len() as f64;
        let mean = deltas.iter().sum::<f64>() / n;
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        assert!((mean - m.coupler_mean).abs() < 0.002, "mean={mean}");
        assert!(
            (var.sqrt() - m.coupler_std).abs() < 0.002,
            "std={}",
            var.sqrt()
        );
    }

    #[test]
    fn fresh_noise_each_call() {
        let p = sample_problem();
        let m = IceModel::dw2q();
        let mut rng = StdRng::seed_from_u64(4);
        let a = m.perturb(&p, &mut rng);
        let b = m.perturb(&p, &mut rng);
        assert_ne!(a, b, "successive anneals must see fresh ICE");
    }

    #[test]
    fn refreeze_perturbs_every_coefficient_symmetrically() {
        use quamax_ising::CompiledProblem;
        let p = sample_problem();
        let base = CompiledProblem::new(&p);
        let mut scratch = base.clone();
        let mut rng = StdRng::seed_from_u64(7);
        IceModel::dw2q().refreeze(&base, &mut scratch, &mut rng);
        assert_eq!(scratch.num_spins(), base.num_spins());
        assert_eq!(scratch.num_couplings(), base.num_couplings());
        for i in 0..base.num_spins() {
            assert_ne!(scratch.linear(i), base.linear(i), "field {i} untouched");
            let (idx, w) = scratch.row(i);
            let (_, w0) = base.row(i);
            for (k, (&j, &g)) in idx.iter().zip(w).enumerate() {
                assert_ne!(g, w0[k], "coupling ({i},{j}) untouched");
                // Symmetric: the reverse entry carries the same value.
                let (jidx, jw) = scratch.row(j as usize);
                let back = jidx.iter().position(|&b| b as usize == i).unwrap();
                assert_eq!(g, jw[back], "asymmetric ICE at ({i},{j})");
            }
        }
        // A zero model refreezes back to the base coefficients exactly.
        IceModel::none().refreeze(&base, &mut scratch, &mut rng);
        assert_eq!(scratch, base);
    }

    #[test]
    fn refreeze_draws_depend_only_on_stream() {
        use quamax_ising::CompiledProblem;
        // Two builds of the same problem in different insertion orders
        // refreeze identically under the same RNG stream: draw order is
        // a function of the compiled layout, not construction history.
        let mut a = IsingProblem::new(4);
        a.set_coupling(0, 3, 1.0);
        a.set_coupling(0, 1, -1.0);
        a.set_linear(2, 0.5);
        let mut b = IsingProblem::new(4);
        b.set_linear(2, 0.5);
        b.set_coupling(0, 1, -1.0);
        b.set_coupling(3, 0, 1.0);
        let (ca, cb) = (CompiledProblem::new(&a), CompiledProblem::new(&b));
        let mut out_a = ca.clone();
        let mut out_b = cb.clone();
        let m = IceModel::dw2q();
        m.refreeze(&ca, &mut out_a, &mut StdRng::seed_from_u64(9));
        m.refreeze(&cb, &mut out_b, &mut StdRng::seed_from_u64(9));
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn scaled_model() {
        let m = IceModel::dw2q().scaled(2.0);
        assert_eq!(m.coupler_std, 0.05);
        let z = IceModel::dw2q().scaled(0.0);
        assert!(z.is_zero());
    }

    #[test]
    fn excursion_inflates_every_moment() {
        let base = IceModel::calibrated();
        let bad = base.excursion(5.0);
        assert_eq!(bad, base.scaled(5.0));
        assert!(bad.field_std > base.field_std);
        assert!(bad.coupler_std > base.coupler_std);
        // factor 1 is the identity: no excursion.
        assert_eq!(base.excursion(1.0), base);
    }

    #[test]
    #[should_panic(expected = "factor ≥ 1")]
    fn excursion_below_one_panics() {
        let _ = IceModel::calibrated().excursion(0.5);
    }
}
