//! A device-level simulator of the D-Wave 2000Q quantum annealer.
//!
//! No quantum hardware is available to this reproduction, so the
//! annealer itself is a substrate we build (DESIGN.md §2.1). The
//! simulator preserves every interface and noise process the paper's
//! evaluation manipulates:
//!
//! * the **annealing schedule** `s(t)`: a linear ramp over the anneal
//!   time `Ta ∈ [1, 300] µs`, with an optional mid-anneal *pause* of
//!   duration `Tp` at normalized position `s_p` (§4);
//! * **intrinsic control errors (ICE)**: per-anneal Gaussian
//!   perturbation of every programmed coefficient, with the moments the
//!   paper measured on hardware (⟨δf⟩ ≈ 0.008 ± 0.02,
//!   ⟨δg⟩ ≈ −0.015 ± 0.025);
//! * **batched anneals**: a run programs the problem once and collects
//!   `Na` independent samples, exactly like a DW2Q job submission;
//! * two interchangeable dynamics **backends**:
//!   [`Backend::Sa`] — Metropolis simulated annealing along the
//!   schedule's temperature profile (the canonical classical stand-in
//!   for QA, per §2.2), and [`Backend::Sqa`] — path-integral Monte
//!   Carlo (Trotterized transverse-field Ising) driven by the
//!   `A(s)/B(s)` curves, the standard classical emulation of quantum
//!   annealing dynamics.
//!
//! Wall-clock accounting translates `Ta` into Monte-Carlo sweeps via
//! [`AnnealerConfig::sweeps_per_us`] so every time axis in the
//! reproduced figures stays in the paper's microsecond units. Absolute
//! success probabilities are calibration artifacts of that constant;
//! the *shapes* (J_F optima, pause benefit, SNR/gap interactions) are
//! produced by the same mechanisms as on hardware.
//!
//! # DESIGN — the sweep kernel
//!
//! Every figure is built from millions of Metropolis proposals
//! (`Na` anneals × sweeps × spins), so the Monte-Carlo inner loop is
//! the throughput bottleneck of the whole reproduction. The kernel is
//! organized around a *compiled problem view* and *persistent sweep
//! state*:
//!
//! * **[`quamax_ising::CompiledProblem`]** — a CSR (flat
//!   `offsets`/`neighbors`/`weights` arrays + cached linear terms)
//!   snapshot of the programmed problem, built once per
//!   [`Annealer::run_compiled`] batch and shared read-only across
//!   worker threads. Rows are sorted, so the layout is a pure function
//!   of the problem, not of construction order.
//! * **[`kernel::SweepState`]** — a configuration plus its cached local
//!   fields `h_i = f_i + Σ_j g_ij·s_j`. A Metropolis proposal is O(1)
//!   (`ΔE = −2·s_i·h_i`); only an *accepted* flip pays the O(degree)
//!   neighbor-field update. Late in the schedule, where acceptance
//!   collapses, a sweep costs ~one multiply per spin instead of one
//!   adjacency-list walk per spin. The running energy is recoverable
//!   from the fields in O(n) (`E = Σ_i s_i·(h_i + f_i)/2`), so nothing
//!   recomputes couplings at readout either.
//! * **[`kernel::CompiledChains`]** — per-chain member lists and
//!   internal-edge lists, precompiled once via a membership mask, so
//!   chain-collective proposals stop re-scanning `chain.contains(j)`
//!   inside the sweep loop.
//! * **[`kernel::SqaState`]** — the Trotter replicas flattened into one
//!   `n×P` spin buffer with a per-slice local-field cache, giving SQA
//!   the same O(1)-proposal structure per (spin, slice) and per-slice
//!   contiguity.
//! * **Per-thread reuse** — each worker owns one scratch coefficient
//!   copy (for the per-anneal ICE refreeze, two `memcpy`-like passes
//!   over `linear`/`weights`; the CSR structure is shared) and one
//!   sweep state; the anneal hot loop performs no allocation.
//!
//! ## Determinism contract
//!
//! `Annealer::run*` output is bit-identical for a given `(problem,
//! schedule, num_anneals, seed)` **regardless of thread count**, kept
//! by three rules:
//!
//! 1. **SplitMix-per-anneal RNG streams** — anneal `k` always seeds its
//!    own `StdRng` with `splitmix(seed, k)`; which thread runs `k` is
//!    irrelevant.
//! 2. **Draw-order stability** — within an anneal, every random draw
//!    happens in a layout-determined order: ICE fields in spin order
//!    then couplings in CSR `(i, j)` order; sweep proposals in spin
//!    (and slice) index order; chain proposals in chain index order.
//!    Acceptance tests short-circuit (`delta <= 0` skips the uniform
//!    draw), which is deterministic because ΔE itself is.
//! 3. **No cross-anneal state** — scratch buffers are reset per anneal
//!    (fields recomputed from the refrozen coefficients), so reuse
//!    never leaks one anneal's state into the next.
//!
//! * **Compile-once batch entry** — [`Annealer::run_compiled`] accepts
//!   a caller-held `CompiledProblem`/`CompiledChains` pair, and the
//!   CSR view supports in-place coefficient refresh
//!   (`CompiledProblem::set_linear_term` / `set_entry_weight`), so a
//!   front-end that holds the problem *structure* fixed — the decode
//!   session pattern, where only the received-vector-dependent fields
//!   move between batches — re-targets the frozen view per batch
//!   instead of re-freezing. With `threads: 1` the batch runs inline
//!   on the caller thread (no scoped spawn), which is what a sharded
//!   multi-session front-end wants: parallelism at the batch
//!   dimension, not nested inside each anneal batch.
//!
//! The naive adjacency-list kernels (`sa::sweep`,
//! `IsingProblem::flip_delta`, `sa::chain_flip_delta`) remain as the
//! reference implementations; property tests cross-check the compiled
//! kernel against them, and `quamax-bench`'s microbenches measure the
//! gap (recorded in `BENCH_kernel.json` at the repo root).
//!
//! # DESIGN — batched replica sweeps
//!
//! One anneal's sweep is memory-bound: every proposal touches one CSR
//! row, and accepted flips stream the row again to scatter field
//! updates. The batched kernel ([`kernel::ReplicaBatch`] /
//! [`kernel::SqaReplicaBatch`]) amortizes that traversal over `R`
//! *independent* replicas by interleaving their state
//! structure-of-arrays:
//!
//! ```text
//!            spin 0                spin 1                spin i
//!   spins  [ r0 r1 r2 … r(R-1) | r0 r1 r2 … r(R-1) | … ]   i*R + r
//!   fields [ r0 r1 r2 … r(R-1) | r0 r1 r2 … r(R-1) | … ]   i*R + r
//! ```
//!
//! Proposing spin `i` reads the contiguous strips `spins[i*R..][..R]` /
//! `fields[i*R..][..R]` — a bounds-check-elided, autovectorizable
//! accept loop — and the winners share **one** CSR row walk: for each
//! row entry `(j, g)`, the strip `fields[j*R..][..R] += steps·g`, where
//! `steps[r]` is `−2·s_i` for accepting replicas and `0.0` for the
//! rest (a branchless broadcast; adding `0.0·g` can at most normalize a
//! zero's sign, which no Metropolis comparison can observe). Two
//! coefficient modes cover the front-ends: *shared* (all replicas run
//! one zero-ICE problem — couplings broadcast from the problem's own
//! CSR arrays) and *per-replica* (strided `linear[i*R+r]` /
//! `weights[e*R+r]` strips — per-anneal ICE refreezes, or a decode
//! batch packing different received vectors over one structure).
//!
//! ## RNG stream-splitting contract
//!
//! Batching is *unobservable* in the outputs. Replica `r` of a batch
//! consumes its own `StdRng` stream — the same `splitmix(seed, k)`
//! stream its scalar anneal would use — and only through the per-stream
//! draw order of the determinism contract above (refreeze → init →
//! proposals in sweep order). The batched kernel evaluates the same
//! ΔE values in the same float accumulation order (chain flips go
//! member-by-member; SQA global moves slice-by-slice), so every replica
//! is **bit-identical** to its serial [`kernel::SweepState`] /
//! [`kernel::SqaState`] counterpart — property-tested in
//! `tests/properties.rs`, and relied on by [`Annealer::run_jobs`] to
//! pack arbitrary job mixes into windows without changing any sample.
//!
//! ## Batch width vs. thread parallelism
//!
//! The two axes compose: [`Annealer::run_jobs`] shards flattened
//! (job, anneal) slots across threads, then each worker sweeps its
//! shard in windows of [`AnnealerConfig::replica_width`] replicas.
//! Width exploits *data-level* parallelism (one core's vector lanes and
//! cache lines carry R replicas through one row walk); threads exploit
//! *core-level* parallelism. Prefer widening until the batch working
//! set (~`R·n` spins + `R·n` fields, plus `R·nnz` weights in
//! per-replica mode) outgrows L2 — width 8 is the default sweet spot on
//! full-chip problems — and spend the remaining parallelism on threads.
//! A front-end that already shards sessions across cores (the decode
//! path) should keep `threads: 1` per device call and let width do the
//! intra-core work.

pub mod device;
pub mod ice;
pub mod kernel;
pub mod sa;
pub mod schedule;
pub mod sqa;
pub mod stats;

pub use device::{
    AnnealDegradation, AnnealJob, Annealer, AnnealerConfig, Backend, DEFAULT_REPLICA_WIDTH,
};
pub use ice::IceModel;
pub use kernel::{CompiledChains, ReplicaBatch, SqaReplicaBatch, SqaState, SweepState};
pub use schedule::Schedule;
pub use stats::{SolutionDistribution, SolutionEntry};
