//! A device-level simulator of the D-Wave 2000Q quantum annealer.
//!
//! No quantum hardware is available to this reproduction, so the
//! annealer itself is a substrate we build (DESIGN.md §2.1). The
//! simulator preserves every interface and noise process the paper's
//! evaluation manipulates:
//!
//! * the **annealing schedule** `s(t)`: a linear ramp over the anneal
//!   time `Ta ∈ [1, 300] µs`, with an optional mid-anneal *pause* of
//!   duration `Tp` at normalized position `s_p` (§4);
//! * **intrinsic control errors (ICE)**: per-anneal Gaussian
//!   perturbation of every programmed coefficient, with the moments the
//!   paper measured on hardware (⟨δf⟩ ≈ 0.008 ± 0.02,
//!   ⟨δg⟩ ≈ −0.015 ± 0.025);
//! * **batched anneals**: a run programs the problem once and collects
//!   `Na` independent samples, exactly like a DW2Q job submission;
//! * two interchangeable dynamics **backends**:
//!   [`Backend::Sa`] — Metropolis simulated annealing along the
//!   schedule's temperature profile (the canonical classical stand-in
//!   for QA, per §2.2), and [`Backend::Sqa`] — path-integral Monte
//!   Carlo (Trotterized transverse-field Ising) driven by the
//!   `A(s)/B(s)` curves, the standard classical emulation of quantum
//!   annealing dynamics.
//!
//! Wall-clock accounting translates `Ta` into Monte-Carlo sweeps via
//! [`AnnealerConfig::sweeps_per_us`] so every time axis in the
//! reproduced figures stays in the paper's microsecond units. Absolute
//! success probabilities are calibration artifacts of that constant;
//! the *shapes* (J_F optima, pause benefit, SNR/gap interactions) are
//! produced by the same mechanisms as on hardware.

pub mod device;
pub mod ice;
pub mod sa;
pub mod schedule;
pub mod sqa;
pub mod stats;

pub use device::{Annealer, AnnealerConfig, Backend};
pub use ice::IceModel;
pub use schedule::Schedule;
pub use stats::{SolutionDistribution, SolutionEntry};
