//! Path-integral (simulated quantum annealing) backend.
//!
//! The Suzuki–Trotter decomposition maps a transverse-field Ising model
//! at inverse temperature `β` onto a classical system of `P` coupled
//! replicas ("slices"): each slice carries the problem couplings at
//! weight `β·B(s)/(2P)` and every spin is bound to its images in the
//! neighbouring slices (periodically) with a ferromagnetic coupling of
//! weight `γ(s) = −½·ln tanh(β·Γ(s)/P)`, where `Γ(s) = A(s)/2` is the
//! transverse field. Early in the schedule `γ` is weak — replicas
//! explore independently, the image of quantum fluctuations — and as
//! `A(s) → 0`, `γ → ∞` locks them into a single classical state.
//!
//! This is the standard classical emulation of quantum-annealing
//! dynamics (Martoňák–Santoro–Tosatti); the ablation benches use it to
//! check which reproduced effects depend on the choice of dynamics.
//! Each sweep proposes local (spin, slice) flips plus one *global* move
//! per spin (flipping all its replicas at once), which is essential for
//! efficient sampling near the end of the schedule.

use crate::kernel::{CompiledChains, SqaReplicaBatch, SqaState};
use crate::schedule::curves;
use quamax_ising::{CompiledProblem, IsingProblem, Spin};
use rand::Rng;

/// Runs one SQA trajectory over the per-sweep annealing fractions,
/// returning the best slice (lowest programmed energy) at the end.
///
/// # Panics
/// Panics for an empty plan or fewer than 2 slices.
pub fn anneal_once<R: Rng + ?Sized>(
    problem: &IsingProblem,
    fractions: &[f64],
    slices: usize,
    rng: &mut R,
) -> Vec<Spin> {
    anneal_once_chained(problem, fractions, slices, &[], rng)
}

/// Like [`anneal_once`], with chain-collective proposals per slice
/// (the embedded-problem counterpart of `sa::anneal_once_chained`).
pub fn anneal_once_chained<R: Rng + ?Sized>(
    problem: &IsingProblem,
    fractions: &[f64],
    slices: usize,
    chains: &[Vec<usize>],
    rng: &mut R,
) -> Vec<Spin> {
    anneal_once_from(problem, fractions, slices, chains, None, rng)
}

/// Like [`anneal_once_chained`], optionally starting every Trotter
/// slice from a candidate configuration (reverse annealing: the device
/// begins fully annealed at the programmed state).
pub fn anneal_once_from<R: Rng + ?Sized>(
    problem: &IsingProblem,
    fractions: &[f64],
    slices: usize,
    chains: &[Vec<usize>],
    init: Option<&[Spin]>,
    rng: &mut R,
) -> Vec<Spin> {
    let compiled = CompiledProblem::new(problem);
    let compiled_chains = CompiledChains::compile(&compiled, chains);
    let mut state = SqaState::new();
    anneal_once_compiled(
        &compiled,
        &compiled_chains,
        fractions,
        slices,
        init,
        &mut state,
        rng,
    );
    best_slice(&compiled, &state)
}

/// The compiled-kernel SQA trajectory over a prebuilt problem view and
/// a reusable flat `n×P` replica state (the batching entry point — see
/// `sa::anneal_once_compiled`). The final replicas are left in `state`;
/// [`best_slice`] reads out the answer.
///
/// # Panics
/// Panics for an empty plan, fewer than 2 slices, or a wrong-length
/// initial state.
#[allow(clippy::too_many_arguments)]
pub fn anneal_once_compiled<R: Rng + ?Sized>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    fractions: &[f64],
    slices: usize,
    init: Option<&[Spin]>,
    state: &mut SqaState,
    rng: &mut R,
) {
    assert!(!fractions.is_empty(), "empty sweep plan");
    assert!(slices >= 2, "need at least 2 Trotter slices");
    let n = problem.num_spins();
    let p = slices;
    match init {
        Some(s) => {
            assert_eq!(s.len(), n, "initial state length mismatch");
            state.reset(problem, p, |_, i| s[i]);
        }
        // Random init keeps the historical Vec<Vec<_>> draw order:
        // slice-major, spin-minor.
        None => state.reset_random(problem, p, rng),
    }

    for &s in fractions {
        let (w_problem, gamma) = couplings_at(s, p);
        sweep_compiled(problem, chains, state, w_problem, gamma, rng);
    }
}

/// The per-slice problem weight and inter-slice binding `(w, γ)` at
/// schedule fraction `s` with `slices` Trotter slices.
pub fn couplings_at(s: f64, slices: usize) -> (f64, f64) {
    let beta = 1.0 / curves::KT_GHZ; // physical β in h·GHz⁻¹ units
    let w_problem = beta * curves::b(s) / (2.0 * slices as f64);
    let gamma_field = (curves::a(s) / 2.0).max(1e-12);
    let x = (beta * gamma_field / slices as f64).tanh();
    // γ → ∞ as A → 0; cap to keep arithmetic finite (beyond ~30 the
    // acceptance of a slice-breaking move is 0 anyway).
    let gamma = (-0.5 * x.ln()).min(30.0);
    (w_problem, gamma)
}

/// Metropolis acceptance on `exp(ΔF)`, skipping the `exp`/RNG cost for
/// certainly-rejected moves (see `sa::CERTAIN_REJECT_EXPONENT`).
#[inline]
fn accept<R: Rng + ?Sized>(d_f: f64, rng: &mut R) -> bool {
    d_f >= 0.0 || (d_f > -crate::sa::CERTAIN_REJECT_EXPONENT && rng.random::<f64>() < d_f.exp())
}

/// One full SQA sweep at fixed couplings `(w_problem, γ)`: local moves
/// over every (slice, spin), global per-spin moves, then per-slice and
/// global chain-collective moves. This is the hot loop the
/// `bench_kernel` harness measures.
pub fn sweep_compiled<R: Rng + ?Sized>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    state: &mut SqaState,
    w_problem: f64,
    gamma: f64,
    rng: &mut R,
) {
    let p = state.num_slices();
    let n = problem.num_spins();
    // Local moves: every (slice, spin).
    for k in 0..p {
        let (up, down) = (
            if k + 1 == p { 0 } else { k + 1 },
            if k == 0 { p - 1 } else { k - 1 },
        );
        for i in 0..n {
            let d_problem = state.flip_delta(k, i);
            let si = state.spin(k, i) as f64;
            let neighbors = (state.spin(up, i) + state.spin(down, i)) as f64;
            // ΔF = −w·ΔE_problem − 2γ·s_i·(s_up + s_down); accept on
            // exp(ΔF).
            let d_f = -w_problem * d_problem - 2.0 * gamma * si * neighbors;
            if accept(d_f, rng) {
                state.flip(problem, k, i);
            }
        }
    }
    // Global moves: flip spin i in all slices (slice couplings
    // unchanged, so only the problem term matters).
    for i in 0..n {
        let mut d_total = 0.0;
        for k in 0..p {
            d_total += state.flip_delta(k, i);
        }
        if accept(-w_problem * d_total, rng) {
            for k in 0..p {
                state.flip(problem, k, i);
            }
        }
    }
    // Chain-collective moves, per slice: flip a whole embedding
    // chain within slice k (slice couplings of every member change).
    for c in 0..chains.len() {
        for k in 0..p {
            let (up, down) = (
                if k + 1 == p { 0 } else { k + 1 },
                if k == 0 { p - 1 } else { k - 1 },
            );
            let d_problem = state.chain_flip_delta(chains, k, c);
            let mut slice_term = 0.0;
            for &i in chains.members(c) {
                slice_term += state.spin(k, i as usize) as f64
                    * (state.spin(up, i as usize) + state.spin(down, i as usize)) as f64;
            }
            let d_f = -w_problem * d_problem - 2.0 * gamma * slice_term;
            if accept(d_f, rng) {
                state.chain_flip(problem, chains, k, c);
            }
        }
    }
    // Global chain moves: flip a chain in *all* slices at once.
    // Inter-slice couplings cancel, so this stays available even
    // after γ locks the replicas — it is the collective transition
    // that orders embedded problems late in the schedule (the SQA
    // analogue of `sa::anneal_once_chained`'s cluster move).
    for c in 0..chains.len() {
        let mut d_total = 0.0;
        for k in 0..p {
            d_total += state.chain_flip_delta(chains, k, c);
        }
        if accept(-w_problem * d_total, rng) {
            for k in 0..p {
                state.chain_flip(problem, chains, k, c);
            }
        }
    }
}

/// The batched SQA trajectory: every replica of `batch` runs the same
/// fraction plan, each consuming its own RNG stream, so replica `r` is
/// bit-identical to [`anneal_once_compiled`] driven by `rngs[r]` alone
/// (see `sa::anneal_batch_compiled` for the stream-splitting contract).
/// The caller initializes the batch first; [`best_slice_batch`] reads
/// out one replica's answer.
///
/// # Panics
/// Panics when `fractions` is empty or `rngs.len() != batch.width()`.
pub fn anneal_batch_compiled<R: Rng>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    fractions: &[f64],
    batch: &mut SqaReplicaBatch,
    rngs: &mut [R],
) {
    assert!(!fractions.is_empty(), "empty sweep plan");
    assert_eq!(rngs.len(), batch.width(), "one RNG stream per replica");
    let p = batch.num_slices();
    for &s in fractions {
        let (w_problem, gamma) = couplings_at(s, p);
        sweep_batch(problem, chains, batch, w_problem, gamma, rngs);
    }
}

/// One batched SQA sweep: the four phases of [`sweep_compiled`] (local,
/// global per-spin, per-slice chain, global chain), each proposal
/// deciding all replicas off one contiguous strip and sharing one CSR
/// row walk per accepted-spin scatter.
pub fn sweep_batch<R: Rng>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    batch: &mut SqaReplicaBatch,
    w_problem: f64,
    gamma: f64,
    rngs: &mut [R],
) {
    let p = batch.num_slices();
    let n = problem.num_spins();
    // Local moves: every (slice, spin).
    for k in 0..p {
        let (up, down) = (
            if k + 1 == p { 0 } else { k + 1 },
            if k == 0 { p - 1 } else { k - 1 },
        );
        for i in 0..n {
            batch.sweep_spin_slice(problem, k, up, down, i, |r, d_problem, pair| {
                let d_f = -w_problem * d_problem - 2.0 * gamma * pair;
                accept(d_f, &mut rngs[r])
            });
        }
    }
    // Global moves: flip spin i in all slices.
    for i in 0..n {
        batch.sweep_spin_global(problem, i, |r, d_total| {
            accept(-w_problem * d_total, &mut rngs[r])
        });
    }
    // Chain-collective moves, per slice.
    for c in 0..chains.len() {
        for k in 0..p {
            let (up, down) = (
                if k + 1 == p { 0 } else { k + 1 },
                if k == 0 { p - 1 } else { k - 1 },
            );
            batch.sweep_chain_slice(problem, chains, k, up, down, c, |r, d_problem, pair| {
                let d_f = -w_problem * d_problem - 2.0 * gamma * pair;
                accept(d_f, &mut rngs[r])
            });
        }
    }
    // Global chain moves.
    for c in 0..chains.len() {
        batch.sweep_chain_global(problem, chains, c, |r, d_total| {
            accept(-w_problem * d_total, &mut rngs[r])
        });
    }
}

/// Per-replica analogue of [`best_slice`]: reads out replica `r`'s
/// lowest-programmed-energy Trotter slice. Ties resolve to the first
/// minimal slice, matching `min_by`'s first-minimum semantics.
pub fn best_slice_batch(batch: &SqaReplicaBatch, r: usize) -> Vec<Spin> {
    let mut best = 0usize;
    let mut best_energy = batch.slice_energy(r, 0);
    for k in 1..batch.num_slices() {
        let e = batch.slice_energy(r, k);
        if e < best_energy {
            best = k;
            best_energy = e;
        }
    }
    batch.replica_slice(r, best)
}

/// Reads out the lowest-programmed-energy Trotter slice (each slice's
/// energy comes from its cached local fields in O(n)).
pub fn best_slice(problem: &CompiledProblem, state: &SqaState) -> Vec<Spin> {
    let best = (0..state.num_slices())
        .min_by(|&a, &b| {
            state
                .slice_energy(problem, a)
                .partial_cmp(&state.slice_energy(problem, b))
                .expect("finite energies")
        })
        .expect("at least one slice");
    state.slice(best).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::exact_ground_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frustrated_problem() -> IsingProblem {
        // A small frustrated system with a unique ground state.
        let mut p = IsingProblem::new(6);
        p.set_linear(0, 0.4);
        p.set_linear(3, -0.3);
        p.set_coupling(0, 1, 1.0);
        p.set_coupling(1, 2, 1.0);
        p.set_coupling(0, 2, 1.0);
        p.set_coupling(2, 3, -0.8);
        p.set_coupling(3, 4, 0.6);
        p.set_coupling(4, 5, -1.0);
        p.set_coupling(0, 5, 0.5);
        p
    }

    fn ramp(n_sweeps: usize) -> Vec<f64> {
        (0..n_sweeps)
            .map(|k| (k as f64 + 0.5) / n_sweeps as f64)
            .collect()
    }

    #[test]
    fn finds_ground_state_of_frustrated_problem() {
        let p = frustrated_problem();
        let gs = exact_ground_state(&p);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..50 {
            let s = anneal_once(&p, &ramp(300), 8, &mut rng);
            if (p.energy(&s) - gs.energy).abs() < 1e-9 {
                hits += 1;
            }
        }
        // Random guessing over 2^6 configurations would land ~1/64 ≈ 1.6%
        // of the time (≈ 1 hit in 50); require a ≥ 12× improvement.
        assert!(
            hits >= 10,
            "only {hits}/50 SQA anneals found the ground state"
        );
    }

    #[test]
    fn more_sweeps_help() {
        // Mean final energy, not ground-state hit rate: on a 6-spin
        // problem the best-of-P readout makes the hit rate nearly flat
        // in schedule length (short schedules read out P almost-
        // independent guesses), while the sampled energy distribution
        // robustly sharpens toward the ground state as the schedule
        // lengthens.
        let p = frustrated_problem();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mean_energy = [0.0f64; 2];
        let trials = 200;
        for (idx, sweeps) in [3usize, 300].iter().enumerate() {
            for _ in 0..trials {
                let s = anneal_once(&p, &ramp(*sweeps), 6, &mut rng);
                mean_energy[idx] += p.energy(&s) / trials as f64;
            }
        }
        assert!(
            mean_energy[1] < mean_energy[0] - 0.02,
            "longer schedule should anneal deeper: {mean_energy:?}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let p = frustrated_problem();
        let a = anneal_once(&p, &ramp(30), 4, &mut StdRng::seed_from_u64(3));
        let b = anneal_once(&p, &ramp(30), 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_a_valid_configuration() {
        let p = frustrated_problem();
        let mut rng = StdRng::seed_from_u64(4);
        let s = anneal_once(&p, &ramp(10), 4, &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&x| x == 1 || x == -1));
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn one_slice_panics() {
        let p = frustrated_problem();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = anneal_once(&p, &ramp(10), 1, &mut rng);
    }
}
