//! Annealing schedules: the `s(t)` ramp, the `A(s)/B(s)` energy
//! curves, and their mapping to Monte-Carlo sweep plans.
//!
//! On hardware, the *annealing fraction* `s` ramps linearly from 0 to 1
//! over the anneal time `Ta`; an optional pause holds `s` fixed at
//! `s_p` for `Tp` (§2.2, §4). Two signals depend on `s`: the transverse
//! (quantum fluctuation) scale `A(s)`, maximal at `s = 0` and ~zero at
//! `s = 1`, and the problem energy scale `B(s)`, growing from ~0 to its
//! maximum. We use smooth closed-form stand-ins for the published DW2Q
//! curves:
//!
//! * `A(s) = A₀·(1−s)³` — fast early decay of quantum fluctuations;
//! * `B(s) = B₀·s·(0.2 + 0.8·s)` — near-quadratic growth,
//!   `B(1) = B₀ = 12 GHz` (h·GHz units).
//!
//! For the SA backend the schedule becomes a temperature ladder: the
//! physical energy scale at fraction `s` is `B(s)/B(1)` of the final
//! one, and the device bath sits at `T ≈ 13 mK` (≈ 0.27 GHz·h), so the
//! effective inverse temperature in programmed-coefficient units is
//! `β(s) = β_cold·B(s)/B(1)` with `β_cold = B₀/(2·k_B·T) ≈ 22`. A pause
//! inserts extra sweeps at the fixed `β(s_p)` — which is precisely why
//! pausing helps when `s_p` lands near the ordering region (Fig. 7).

/// Hardware-inspired constants for the schedule curves.
pub mod curves {
    /// Transverse-field scale at `s = 0`, h·GHz.
    pub const A0_GHZ: f64 = 6.0;
    /// Problem energy scale at `s = 1`, h·GHz.
    pub const B0_GHZ: f64 = 12.0;
    /// Effective device temperature in h·GHz (13 mK · k_B / h).
    pub const KT_GHZ: f64 = 0.27;

    /// Transverse signal `A(s)` in h·GHz.
    pub fn a(s: f64) -> f64 {
        A0_GHZ * (1.0 - s).powi(3)
    }

    /// Problem signal `B(s)` in h·GHz.
    pub fn b(s: f64) -> f64 {
        B0_GHZ * s * (0.2 + 0.8 * s)
    }

    /// Effective inverse temperature at fraction `s`, in units of the
    /// programmed (dimensionless) coefficients.
    pub fn beta(s: f64) -> f64 {
        b(s) / (2.0 * KT_GHZ)
    }
}

/// An annealing schedule: forward ramp with optional mid-anneal pause,
/// or a *reverse* anneal (§8's "new QA techniques such as reverse
/// annealing"): start fully annealed at `s = 1` from a candidate
/// state, ramp *down* to a reversal point, hold, and ramp back up —
/// a local refinement around the candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Schedule {
    /// Anneal (ramp) time `Ta` in microseconds. Hardware range 1–300 µs.
    /// For reverse schedules this is the total down+up ramp time.
    pub anneal_time_us: f64,
    /// Optional pause `(s_p, Tp µs)`: hold the schedule at fraction
    /// `s_p` for `Tp` microseconds. For reverse schedules, `s_p` is the
    /// reversal point and the hold there is mandatory.
    pub pause: Option<(f64, f64)>,
    /// `true` for a reverse anneal (1 → s_p → 1 instead of 0 → 1).
    pub reverse: bool,
}

impl Schedule {
    /// A plain ramp of `ta_us` microseconds.
    ///
    /// # Panics
    /// Panics outside the hardware's 1–300 µs range.
    pub fn standard(ta_us: f64) -> Self {
        assert!(
            (1.0..=300.0).contains(&ta_us),
            "anneal time must lie in the hardware range 1–300 µs, got {ta_us}"
        );
        Schedule {
            anneal_time_us: ta_us,
            pause: None,
            reverse: false,
        }
    }

    /// A ramp with a pause of `tp_us` at fraction `sp` (paper sweeps
    /// `sp ∈ 0.15–0.55`, `Tp ∈ {1, 10, 100} µs`).
    ///
    /// # Panics
    /// Panics for `sp` outside `(0, 1)` or non-positive `tp_us`.
    pub fn with_pause(ta_us: f64, sp: f64, tp_us: f64) -> Self {
        let mut s = Schedule::standard(ta_us);
        assert!(
            sp > 0.0 && sp < 1.0,
            "pause position must lie in (0,1), got {sp}"
        );
        assert!(tp_us > 0.0, "pause duration must be positive, got {tp_us}");
        s.pause = Some((sp, tp_us));
        s
    }

    /// A reverse anneal: down-ramp from `s = 1` to `s_target` over
    /// `ta_us/2`, hold for `hold_us`, up-ramp back to 1. Requires a
    /// candidate initial state at run time (the device API's
    /// `run_reverse`).
    ///
    /// # Panics
    /// Panics for `s_target` outside `(0, 1)` or non-positive `hold_us`.
    pub fn reverse(ta_us: f64, s_target: f64, hold_us: f64) -> Self {
        let mut s = Schedule::with_pause(ta_us, s_target, hold_us);
        s.reverse = true;
        s
    }

    /// Total wall-clock duration of one anneal: `Ta + Tp`.
    pub fn total_time_us(&self) -> f64 {
        self.anneal_time_us + self.pause.map_or(0.0, |(_, tp)| tp)
    }

    /// The annealing fraction at wall-clock time `t_us ∈ [0, total]`.
    pub fn fraction_at(&self, t_us: f64) -> f64 {
        let t = t_us.clamp(0.0, self.total_time_us());
        if self.reverse {
            let (s_target, hold) = self.pause.expect("reverse schedules always hold");
            let half = self.anneal_time_us / 2.0;
            return if t < half {
                // Down-ramp 1 → s_target.
                1.0 - (1.0 - s_target) * (t / half)
            } else if t < half + hold {
                s_target
            } else {
                s_target + (1.0 - s_target) * ((t - half - hold) / half)
            };
        }
        match self.pause {
            None => t / self.anneal_time_us,
            Some((sp, tp)) => {
                let t_pause_start = sp * self.anneal_time_us;
                if t < t_pause_start {
                    t / self.anneal_time_us
                } else if t < t_pause_start + tp {
                    sp
                } else {
                    (t - tp) / self.anneal_time_us
                }
            }
        }
    }

    /// The per-sweep plan: the sequence of annealing fractions visited
    /// by consecutive Monte-Carlo sweeps at `sweeps_per_us` density.
    /// Always yields at least two sweeps (start and end of the ramp).
    pub fn sweep_fractions(&self, sweeps_per_us: f64) -> Vec<f64> {
        assert!(sweeps_per_us > 0.0, "sweep density must be positive");
        let total = self.total_time_us();
        let n = ((total * sweeps_per_us).round() as usize).max(2);
        (0..n)
            .map(|k| {
                // Sample sweep k at the midpoint of its time slot so a
                // 1-sweep-long pause still lands on s_p.
                let t = (k as f64 + 0.5) * total / n as f64;
                self.fraction_at(t)
            })
            .collect()
    }

    /// `true` when this schedule needs a candidate initial state.
    pub fn is_reverse(&self) -> bool {
        self.reverse
    }

    /// The reverse-anneal counterpart of this (forward) schedule: the
    /// same ramp time `Ta`, reversal point `s_target`, holding for the
    /// forward pause duration (or `Ta/2` when unpaused). This is the
    /// warm-start schedule an iterative detector derives from its
    /// forward operating point — the refinement anneal costs wall-clock
    /// time of the same order as the forward cycle it follows, and the
    /// deadline accounting reads the derived schedule's
    /// [`Schedule::total_time_us`] directly.
    ///
    /// A schedule that is already reverse is returned unchanged (its
    /// own reversal point wins).
    ///
    /// # Panics
    /// Panics for `s_target` outside `(0, 1)`.
    pub fn reverse_matched(&self, s_target: f64) -> Schedule {
        if self.reverse {
            return *self;
        }
        let hold = self.pause.map_or(self.anneal_time_us / 2.0, |(_, tp)| tp);
        Schedule::reverse(self.anneal_time_us, s_target, hold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_endpoints() {
        assert!((curves::a(0.0) - curves::A0_GHZ).abs() < 1e-12);
        assert!(curves::a(1.0).abs() < 1e-12);
        assert!(curves::b(0.0).abs() < 1e-12);
        assert!((curves::b(1.0) - curves::B0_GHZ).abs() < 1e-12);
    }

    #[test]
    fn curves_are_monotone() {
        for k in 0..100 {
            let s0 = k as f64 / 100.0;
            let s1 = (k + 1) as f64 / 100.0;
            assert!(curves::a(s1) <= curves::a(s0), "A must decay");
            assert!(curves::b(s1) >= curves::b(s0), "B must grow");
            assert!(curves::beta(s1) >= curves::beta(s0), "β must grow");
        }
    }

    #[test]
    fn final_beta_is_cold() {
        // B0/(2·kT) = 12/0.54 ≈ 22: deep in the ordered regime for
        // programmed coefficients of order 1.
        let b = curves::beta(1.0);
        assert!((b - 12.0 / 0.54).abs() < 1e-9, "β(1)={b}");
    }

    #[test]
    fn plain_ramp_fraction() {
        let s = Schedule::standard(10.0);
        assert_eq!(s.total_time_us(), 10.0);
        assert!((s.fraction_at(0.0) - 0.0).abs() < 1e-12);
        assert!((s.fraction_at(5.0) - 0.5).abs() < 1e-12);
        assert!((s.fraction_at(10.0) - 1.0).abs() < 1e-12);
        // Clamped outside.
        assert!((s.fraction_at(99.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pause_holds_fraction() {
        let s = Schedule::with_pause(10.0, 0.3, 5.0);
        assert_eq!(s.total_time_us(), 15.0);
        // Before the pause: plain ramp.
        assert!((s.fraction_at(2.0) - 0.2).abs() < 1e-12);
        // During the pause (starts at t=3): held at 0.3.
        assert!((s.fraction_at(3.5) - 0.3).abs() < 1e-12);
        assert!((s.fraction_at(7.9) - 0.3).abs() < 1e-12);
        // After: resumes where it left off.
        assert!((s.fraction_at(8.5) - 0.35).abs() < 1e-12);
        assert!((s.fraction_at(15.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_plan_counts_and_monotonicity() {
        let s = Schedule::standard(5.0);
        let plan = s.sweep_fractions(20.0);
        assert_eq!(plan.len(), 100);
        for w in plan.windows(2) {
            assert!(w[1] >= w[0], "ramp plan must be non-decreasing");
        }
        assert!(plan[0] < 0.02);
        assert!(*plan.last().unwrap() > 0.98);
    }

    #[test]
    fn paused_plan_spends_sweeps_at_sp() {
        let s = Schedule::with_pause(1.0, 0.4, 9.0);
        let plan = s.sweep_fractions(10.0);
        assert_eq!(plan.len(), 100);
        let at_pause = plan.iter().filter(|&&f| (f - 0.4).abs() < 1e-9).count();
        // 9 of 10 µs are pause: ~90% of sweeps at s_p.
        assert!(at_pause >= 85, "only {at_pause} sweeps at the pause point");
    }

    #[test]
    fn very_short_anneal_still_has_a_plan() {
        let s = Schedule::standard(1.0);
        let plan = s.sweep_fractions(1.0);
        assert!(plan.len() >= 2);
    }

    #[test]
    fn reverse_schedule_shape() {
        let s = Schedule::reverse(2.0, 0.4, 3.0);
        assert!(s.is_reverse());
        assert_eq!(s.total_time_us(), 5.0);
        // Starts annealed…
        assert!((s.fraction_at(0.0) - 1.0).abs() < 1e-12);
        // …halfway down the down-ramp…
        assert!((s.fraction_at(0.5) - 0.7).abs() < 1e-12);
        // …holds at the reversal point…
        assert!((s.fraction_at(1.0) - 0.4).abs() < 1e-12);
        assert!((s.fraction_at(3.9) - 0.4).abs() < 1e-12);
        // …and returns to 1.
        assert!((s.fraction_at(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_sweep_plan_is_v_shaped() {
        let s = Schedule::reverse(2.0, 0.3, 2.0);
        let plan = s.sweep_fractions(10.0);
        let min = plan.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((min - 0.3).abs() < 1e-9);
        assert!(plan[0] > 0.9, "must start near s=1");
        assert!(*plan.last().unwrap() > 0.9, "must end near s=1");
    }

    #[test]
    fn reverse_matched_derives_a_reverse_schedule() {
        // Paused forward point: the hold carries over.
        let fwd = Schedule::with_pause(1.0, 0.35, 1.0);
        let rev = fwd.reverse_matched(0.6);
        assert!(rev.is_reverse());
        assert_eq!(rev.anneal_time_us, 1.0);
        assert_eq!(rev.pause, Some((0.6, 1.0)));
        assert_eq!(rev.total_time_us(), fwd.total_time_us());
        // Unpaused forward point: hold of Ta/2.
        let plain = Schedule::standard(2.0).reverse_matched(0.5);
        assert_eq!(plain.pause, Some((0.5, 1.0)));
        // Already reverse: unchanged.
        let already = Schedule::reverse(2.0, 0.4, 3.0);
        assert_eq!(already.reverse_matched(0.9), already);
    }

    #[test]
    #[should_panic(expected = "1–300")]
    fn out_of_range_anneal_time_panics() {
        let _ = Schedule::standard(0.5);
    }

    #[test]
    #[should_panic(expected = "pause position")]
    fn bad_pause_position_panics() {
        let _ = Schedule::with_pause(1.0, 1.5, 1.0);
    }
}
