//! The annealer device front-end: programs a problem, runs a batch of
//! anneals, returns the sampled configurations.
//!
//! Mirrors the DW2Q job model (§4): the user submits one problem with
//! one parameter setting and gets back `Na` spin configurations, one
//! per anneal cycle. Each anneal draws fresh ICE noise, runs the chosen
//! dynamics backend along the schedule, and reads out. Anneals are
//! independent, so the batch is sharded across CPU threads; sample `k`
//! always uses the RNG stream `splitmix(seed, k)`, making results
//! bit-identical regardless of thread count.

use crate::ice::IceModel;
use crate::kernel::{CompiledChains, ReplicaBatch, SqaReplicaBatch};
use crate::schedule::{curves, Schedule};
use crate::{sa, sqa};
use quamax_ising::{CompiledProblem, IsingProblem, Spin};
use quamax_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default replica-batch width when `AnnealerConfig::replica_width` is
/// left at 0: wide enough that the shared CSR walk amortizes across a
/// full vector register of accept strips, narrow enough that a batch's
/// spin/field working set stays cache-resident on full-chip problems.
pub const DEFAULT_REPLICA_WIDTH: usize = 8;

/// Dynamics backend choice (DESIGN.md §2.1 and §4 ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Metropolis simulated annealing along the schedule's temperature
    /// ladder (default).
    Sa,
    /// Path-integral Monte Carlo with the given number of Trotter
    /// slices (simulated quantum annealing).
    Sqa {
        /// Trotter slices (≥ 2; 8 is a common operating point).
        slices: usize,
    },
}

/// Device configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealerConfig {
    /// Dynamics backend.
    pub backend: Backend,
    /// Monte-Carlo sweeps simulated per microsecond of schedule time.
    /// This is the calibration constant tying simulated dynamics to the
    /// paper's µs axes (see crate docs); EXPERIMENTS.md records the
    /// value used for every figure.
    pub sweeps_per_us: f64,
    /// Intrinsic control error model (per-anneal coefficient noise).
    pub ice: IceModel,
    /// Worker threads for batching (0 = all available cores).
    pub threads: usize,
    /// Replica-batch width: how many anneals each worker sweeps
    /// simultaneously through the batched kernel
    /// (0 = [`DEFAULT_REPLICA_WIDTH`]). Width never changes results —
    /// every replica follows its own RNG stream — only throughput.
    pub replica_width: usize,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        AnnealerConfig {
            backend: Backend::Sa,
            sweeps_per_us: 20.0,
            ice: IceModel::calibrated(),
            threads: 0,
            replica_width: 0,
        }
    }
}

/// A transient device-health degradation applied to one batch of
/// anneals — the device-layer realization of the fault classes the
/// C-RAN serving layer injects (`quamax_ran::fault`).
///
/// Two physical mechanisms are modeled:
///
/// * **ICE drift excursion** — the analog control has wandered off its
///   calibration point, so every anneal in the batch sees the noise
///   floor inflated by `ice_scale` (applied via
///   [`IceModel::excursion`], riding `IceModel::scaled`);
/// * **chain-break storm** — embedding chains decohere en masse: after
///   readout, each chain-member qubit's spin is independently flipped
///   with probability `chain_flip_probability`, producing the broken-
///   chain readouts that majority-vote unembedding then has to repair.
///
/// Flips are drawn from a dedicated SplitMix stream keyed by
/// `(seed, anneal index, qubit)`, so a degraded run is bit-identical
/// across thread counts, like every other device path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealDegradation {
    /// ICE moment inflation factor (≥ 1; 1 = nominal floor).
    pub ice_scale: f64,
    /// Per-qubit post-readout flip probability on chain members
    /// (in `[0, 1]`; 0 = no storm).
    pub chain_flip_probability: f64,
}

impl AnnealDegradation {
    /// A healthy device: nominal ICE, no storm.
    pub fn none() -> Self {
        AnnealDegradation {
            ice_scale: 1.0,
            chain_flip_probability: 0.0,
        }
    }

    /// An ICE drift excursion inflating the noise floor by `factor`.
    pub fn ice_excursion(factor: f64) -> Self {
        AnnealDegradation {
            ice_scale: factor,
            ..AnnealDegradation::none()
        }
    }

    /// A chain-break storm flipping chain qubits with probability `p`.
    pub fn chain_break_storm(p: f64) -> Self {
        AnnealDegradation {
            chain_flip_probability: p,
            ..AnnealDegradation::none()
        }
    }

    /// `true` when this degradation changes nothing.
    pub fn is_none(&self) -> bool {
        self.ice_scale == 1.0 && self.chain_flip_probability == 0.0
    }
}

/// A simulated quantum annealer.
///
/// ```
/// use quamax_anneal::{Annealer, AnnealerConfig, IceModel, Schedule};
/// use quamax_ising::IsingProblem;
///
/// let mut p = IsingProblem::new(3);
/// p.set_coupling(0, 1, -1.0);
/// p.set_coupling(1, 2, -1.0);
/// let annealer = Annealer::new(AnnealerConfig {
///     ice: IceModel::none(),
///     ..Default::default()
/// });
/// let samples = annealer.run(&p, &Schedule::standard(5.0), 20, 7);
/// assert_eq!(samples.len(), 20);
/// // The ferromagnetic chain's ground states are all-up/all-down.
/// let hits = samples.iter().filter(|s| p.energy(s) == -2.0).count();
/// assert!(hits > 10);
/// ```
#[derive(Clone, Debug)]
pub struct Annealer {
    config: AnnealerConfig,
    telemetry: Telemetry,
}

impl Annealer {
    /// A device with the given configuration.
    pub fn new(config: AnnealerConfig) -> Self {
        assert!(config.sweeps_per_us > 0.0, "sweep density must be positive");
        if let Backend::Sqa { slices } = config.backend {
            assert!(slices >= 2, "SQA needs at least 2 Trotter slices");
        }
        Annealer {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The same device reporting batching metrics
    /// (`quamax_anneal_replica_batch_width`,
    /// `quamax_anneal_batched_sweeps_total`) to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Annealer {
        self.telemetry = telemetry;
        self
    }

    /// A DW2Q-like device: SA dynamics, paper ICE moments, default
    /// calibration.
    pub fn dw2q(config: AnnealerConfig) -> Self {
        Annealer::new(config)
    }

    /// This device's configuration.
    pub fn config(&self) -> &AnnealerConfig {
        &self.config
    }

    /// The same device with its ICE model replaced — the hook a fault
    /// injector uses to run one job under a drift excursion
    /// ([`IceModel::excursion`]) without touching the shared device.
    pub fn with_ice(&self, ice: IceModel) -> Annealer {
        Annealer::new(AnnealerConfig { ice, ..self.config }).with_telemetry(self.telemetry.clone())
    }

    /// Like [`Annealer::run_chained`], under a transient
    /// [`AnnealDegradation`]: the batch anneals with the ICE floor
    /// inflated by `degradation.ice_scale`, and afterwards each
    /// chain-member qubit is flipped with
    /// `degradation.chain_flip_probability` (a chain-break storm).
    /// With `AnnealDegradation::none()` this is bit-identical to
    /// [`Annealer::run_chained`]. Deterministic in
    /// `(problem, chains, schedule, num_anneals, seed, degradation)`.
    pub fn run_chained_degraded(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
        degradation: &AnnealDegradation,
    ) -> Vec<Vec<Spin>> {
        assert!(
            degradation.ice_scale >= 1.0,
            "ice_scale < 1 is not a degradation"
        );
        assert!(
            (0.0..=1.0).contains(&degradation.chain_flip_probability),
            "flip probability must be in [0, 1]"
        );
        let device = if degradation.ice_scale > 1.0 {
            self.with_ice(self.config.ice.excursion(degradation.ice_scale))
        } else {
            self.clone()
        };
        let mut samples = device.run_chained(problem, chains, schedule, num_anneals, seed);
        let p = degradation.chain_flip_probability;
        if p > 0.0 {
            // Post-readout storm: a dedicated stream per (anneal, qubit)
            // — independent of the anneal dynamics' own streams, so the
            // storm neither perturbs nor is perturbed by them.
            const STORM_SALT: u64 = 0x0570_712C_4A15;
            for (k, sample) in samples.iter_mut().enumerate() {
                for chain in chains {
                    for &qubit in chain {
                        let draw = splitmix(seed ^ STORM_SALT, (k as u64) << 32 | qubit as u64);
                        // Top 53 bits → uniform in [0, 1).
                        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                        if unit < p {
                            sample[qubit] = -sample[qubit];
                        }
                    }
                }
            }
        }
        samples
    }

    /// Runs `num_anneals` anneal cycles of `problem` under `schedule`,
    /// returning one spin configuration per anneal.
    ///
    /// `problem` is the *programmed* (already embedded and normalized)
    /// Ising problem; ICE is applied inside, freshly per anneal.
    /// Deterministic in `(problem, schedule, num_anneals, seed)`.
    pub fn run(
        &self,
        problem: &IsingProblem,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        self.run_chained(problem, &[], schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run`], additionally informing the dynamics of
    /// the embedding's qubit chains so sweeps include chain-collective
    /// proposals (see `sa::anneal_once_chained` — the classical
    /// counterpart of hardware's collective chain dynamics).
    pub fn run_chained(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_compiled(&compiled, &compiled_chains, schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run_chained`], over a problem view the caller
    /// has already compiled — the zero-recompile path for callers that
    /// program one embedded problem and run it many times (the decoder,
    /// parameter searches, the bench harness).
    pub fn run_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(
            !schedule.is_reverse(),
            "reverse schedules need a candidate state: use run_reverse"
        );
        self.run_inner(problem, chains, None, schedule, num_anneals, seed)
    }

    /// Reverse annealing (§8): every anneal starts from `candidate`
    /// (a physical configuration, e.g. a classically-decoded solution
    /// expanded onto the chains), ramps back to the schedule's reversal
    /// point, and re-anneals — a local quantum refinement.
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_reverse_compiled(
            &compiled,
            &compiled_chains,
            candidate,
            schedule,
            num_anneals,
            seed,
        )
    }

    /// Reverse annealing over a caller-compiled problem view (see
    /// [`Annealer::run_compiled`]).
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(schedule.is_reverse(), "run_reverse needs Schedule::reverse");
        assert_eq!(
            candidate.len(),
            problem.num_spins(),
            "candidate length mismatch"
        );
        self.run_inner(
            problem,
            chains,
            Some(candidate),
            schedule,
            num_anneals,
            seed,
        )
    }

    fn run_inner(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        init: Option<&[Spin]>,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let job = AnnealJob {
            problem,
            init,
            num_anneals,
            seed,
        };
        self.run_jobs(problem, chains, schedule, &[job])
            .pop()
            .expect("one job in, one sample batch out")
    }

    /// Runs a set of independent anneal jobs through the batched
    /// replica kernel, returning one `Vec<Vec<Spin>>` per job (sample
    /// `k` of job `j` is bit-identical to the corresponding scalar
    /// `run_*` call — stream `splitmix(jobs[j].seed, k)` — regardless
    /// of batch width, thread count, or how jobs are packed together).
    ///
    /// Every job's problem must share `structure`'s CSR layout (the
    /// decode/precode sessions pass per-item reprogrammed clones of one
    /// compiled base); `chains` likewise compile against that shared
    /// structure. Slots are sharded contiguously across worker threads
    /// and each worker sweeps greedy windows of up to
    /// `replica_width` replicas at a time: a window entirely inside one
    /// zero-ICE job shares that job's coefficients, any other window
    /// binds per-replica coefficient strips (per-item `y` vectors,
    /// per-anneal ICE refreezes).
    ///
    /// # Panics
    /// Panics when a job's problem or candidate shape disagrees with
    /// `structure`.
    pub fn run_jobs(
        &self,
        structure: &CompiledProblem,
        chains: &CompiledChains,
        schedule: &Schedule,
        jobs: &[AnnealJob],
    ) -> Vec<Vec<Vec<Spin>>> {
        for job in jobs {
            assert_eq!(
                job.problem.num_spins(),
                structure.num_spins(),
                "job problem does not share the batch structure"
            );
            assert_eq!(
                job.problem.num_entries(),
                structure.num_entries(),
                "job problem does not share the batch structure"
            );
            if let Some(init) = job.init {
                assert_eq!(init.len(), structure.num_spins(), "candidate length mismatch");
            }
        }
        let total: usize = jobs.iter().map(|j| j.num_anneals).sum();
        if total == 0 {
            return jobs.iter().map(|_| Vec::new()).collect();
        }

        let fractions = schedule.sweep_fractions(self.config.sweeps_per_us);
        // Pre-compute the SA temperature ladder once per run.
        let betas: Vec<f64> = fractions
            .iter()
            .map(|&s| curves::beta(s).max(1e-3))
            .collect();

        // Flatten to (job, anneal-index) slots; slot order defines the
        // output order and is what gets sharded and windowed.
        let mut slots: Vec<(u32, u32)> = Vec::with_capacity(total);
        for (j, job) in jobs.iter().enumerate() {
            for k in 0..job.num_anneals {
                slots.push((j as u32, k as u32));
            }
        }

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        };
        let threads = threads.min(total);
        let width = if self.config.replica_width == 0 {
            DEFAULT_REPLICA_WIDTH
        } else {
            self.config.replica_width
        };

        let mut samples: Vec<Vec<Spin>> = vec![Vec::new(); total];
        let config = self.config;
        let telemetry = &self.telemetry;
        if threads == 1 {
            // Batch front-ends running many single-threaded device
            // calls concurrently skip the scoped spawn entirely.
            // Identical output by the determinism contract.
            let mut worker = BatchWorker::new();
            worker.run_range(
                structure,
                chains,
                jobs,
                &slots,
                &mut samples,
                &betas,
                &fractions,
                &config,
                width,
                telemetry,
            );
        } else {
            let chunk = total.div_ceil(threads);
            std::thread::scope(|scope| {
                for (slot_chunk, out_chunk) in slots.chunks(chunk).zip(samples.chunks_mut(chunk)) {
                    let betas = &betas;
                    let fractions = &fractions;
                    let config = &config;
                    scope.spawn(move || {
                        // Per-thread scratch, allocated once: the ICE
                        // refreeze coefficient copy, the replica batch
                        // buffers, and the per-replica RNG streams.
                        let mut worker = BatchWorker::new();
                        worker.run_range(
                            structure, chains, jobs, slot_chunk, out_chunk, betas, fractions,
                            config, width, telemetry,
                        );
                    });
                }
            });
        }

        // Unflatten back into per-job sample batches.
        let mut out = Vec::with_capacity(jobs.len());
        let mut rest = samples.into_iter();
        for job in jobs {
            out.push(rest.by_ref().take(job.num_anneals).collect());
        }
        out
    }
}

/// One independent anneal request inside an [`Annealer::run_jobs`]
/// batch: a programmed problem (sharing the batch's CSR structure), an
/// optional reverse-anneal candidate, a sample count, and the job's own
/// RNG seed (sample `k` uses stream `splitmix(seed, k)`, exactly as the
/// scalar entry points).
#[derive(Clone, Copy, Debug)]
pub struct AnnealJob<'a> {
    /// The programmed (embedded, normalized) problem.
    pub problem: &'a CompiledProblem,
    /// Reverse-anneal candidate; `None` starts uniformly random.
    pub init: Option<&'a [Spin]>,
    /// Anneal cycles to run.
    pub num_anneals: usize,
    /// The job's RNG seed.
    pub seed: u64,
}

/// One worker thread's reusable buffers: scratch coefficients for the
/// per-anneal ICE refreeze, the SoA replica batches, and the
/// per-replica RNG streams of the current window.
struct BatchWorker {
    /// Built lazily on the first refreeze — a zero-ICE run never pays
    /// for the coefficient copy.
    scratch: Option<CompiledProblem>,
    sa_batch: ReplicaBatch,
    sqa_batch: SqaReplicaBatch,
    rngs: Vec<StdRng>,
}

impl BatchWorker {
    fn new() -> Self {
        BatchWorker {
            scratch: None,
            sa_batch: ReplicaBatch::new(),
            sqa_batch: SqaReplicaBatch::new(),
            rngs: Vec::new(),
        }
    }

    /// Anneals `slots` (one output slot each) in greedy windows of up
    /// to `width` replicas.
    #[allow(clippy::too_many_arguments)]
    fn run_range(
        &mut self,
        structure: &CompiledProblem,
        chains: &CompiledChains,
        jobs: &[AnnealJob],
        slots: &[(u32, u32)],
        out: &mut [Vec<Spin>],
        betas: &[f64],
        fractions: &[f64],
        config: &AnnealerConfig,
        width: usize,
        telemetry: &Telemetry,
    ) {
        debug_assert_eq!(slots.len(), out.len());
        let mut at = 0;
        while at < slots.len() {
            let w = width.min(slots.len() - at);
            self.run_window(
                structure,
                chains,
                jobs,
                &slots[at..at + w],
                &mut out[at..at + w],
                betas,
                fractions,
                config,
            );
            telemetry.observe("quamax_anneal_replica_batch_width", &[], w as f64);
            let sweeps = match config.backend {
                Backend::Sa => betas.len(),
                Backend::Sqa { .. } => fractions.len(),
            };
            telemetry.counter_add(
                "quamax_anneal_batched_sweeps_total",
                &[],
                (w * sweeps) as u64,
            );
            at += w;
        }
    }

    /// Anneals one replica window. Per replica, the RNG stream's draw
    /// order is refreeze → init → sweep proposals — identical to the
    /// scalar path, so every sample is bit-identical to its scalar
    /// counterpart no matter how slots are windowed.
    #[allow(clippy::too_many_arguments)]
    fn run_window(
        &mut self,
        structure: &CompiledProblem,
        chains: &CompiledChains,
        jobs: &[AnnealJob],
        slots: &[(u32, u32)],
        out: &mut [Vec<Spin>],
        betas: &[f64],
        fractions: &[f64],
        config: &AnnealerConfig,
    ) {
        let w = slots.len();
        let BatchWorker {
            scratch,
            sa_batch,
            sqa_batch,
            rngs,
        } = self;
        rngs.clear();
        for &(j, k) in slots {
            rngs.push(StdRng::seed_from_u64(splitmix(
                jobs[j as usize].seed,
                k as u64,
            )));
        }
        // A window entirely inside one zero-ICE job can read that job's
        // coefficients directly; anything else (ICE refreezes, windows
        // packing several jobs) binds per-replica coefficient strips.
        let single_job = slots.iter().all(|&(j, _)| j == slots[0].0);
        let shared = single_job && config.ice.is_zero();
        match config.backend {
            Backend::Sa => {
                let problem = if shared {
                    let problem = jobs[slots[0].0 as usize].problem;
                    sa_batch.reset_shared(problem, w);
                    for (r, &(j, _)) in slots.iter().enumerate() {
                        match jobs[j as usize].init {
                            Some(s) => sa_batch.init_replica(problem, r, s),
                            None => sa_batch.init_replica_random(problem, r, &mut rngs[r]),
                        }
                    }
                    problem
                } else {
                    sa_batch.reset_per_replica(structure, w);
                    for (r, &(j, _)) in slots.iter().enumerate() {
                        let job = &jobs[j as usize];
                        let effective: &CompiledProblem = if config.ice.is_zero() {
                            job.problem
                        } else {
                            let scratch = scratch.get_or_insert_with(|| job.problem.clone());
                            config.ice.refreeze(job.problem, scratch, &mut rngs[r]);
                            scratch
                        };
                        sa_batch.bind_replica(r, effective);
                        match job.init {
                            Some(s) => sa_batch.init_replica(structure, r, s),
                            None => sa_batch.init_replica_random(structure, r, &mut rngs[r]),
                        }
                    }
                    structure
                };
                sa::anneal_batch_compiled(problem, chains, betas, sa_batch, rngs);
                for (r, slot) in out.iter_mut().enumerate() {
                    *slot = sa_batch.replica_spins(r);
                }
            }
            Backend::Sqa { slices } => {
                let problem = if shared {
                    let problem = jobs[slots[0].0 as usize].problem;
                    sqa_batch.reset_shared(problem, slices, w);
                    for (r, &(j, _)) in slots.iter().enumerate() {
                        match jobs[j as usize].init {
                            Some(s) => sqa_batch.init_replica(problem, r, |_, i| s[i]),
                            None => sqa_batch.init_replica_random(problem, r, &mut rngs[r]),
                        }
                    }
                    problem
                } else {
                    sqa_batch.reset_per_replica(structure, slices, w);
                    for (r, &(j, _)) in slots.iter().enumerate() {
                        let job = &jobs[j as usize];
                        let effective: &CompiledProblem = if config.ice.is_zero() {
                            job.problem
                        } else {
                            let scratch = scratch.get_or_insert_with(|| job.problem.clone());
                            config.ice.refreeze(job.problem, scratch, &mut rngs[r]);
                            scratch
                        };
                        sqa_batch.bind_replica(r, effective);
                        match job.init {
                            Some(s) => sqa_batch.init_replica(structure, r, |_, i| s[i]),
                            None => sqa_batch.init_replica_random(structure, r, &mut rngs[r]),
                        }
                    }
                    structure
                };
                sqa::anneal_batch_compiled(problem, chains, fractions, sqa_batch, rngs);
                for (r, slot) in out.iter_mut().enumerate() {
                    *slot = sqa::best_slice_batch(sqa_batch, r);
                }
            }
        }
    }
}

/// SplitMix64 of `(seed, k)` — the per-anneal RNG stream seed.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::exact_ground_state;

    fn toy_problem() -> IsingProblem {
        let mut p = IsingProblem::new(8);
        for i in 0..8 {
            p.set_linear(i, 0.05 * (i as f64 - 4.0));
            for j in (i + 1)..8 {
                p.set_coupling(i, j, if (i + j) % 3 == 0 { 0.4 } else { -0.3 });
            }
        }
        p
    }

    #[test]
    fn returns_requested_sample_count() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 37, 1);
        assert_eq!(samples.len(), 37);
        for s in &samples {
            assert_eq!(s.len(), 8);
            assert!(s.iter().all(|&x| x == 1 || x == -1));
        }
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let one = Annealer::new(AnnealerConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        let four = Annealer::new(AnnealerConfig {
            threads: 4,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        assert_eq!(one, four);
    }

    #[test]
    fn different_seeds_differ() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let a = annealer.run(&p, &sched, 16, 1);
        let b = annealer.run(&p, &sched, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn finds_ground_state_without_ice() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            sweeps_per_us: 50.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(10.0), 200, 3);
        let hits = samples
            .iter()
            .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
            .count();
        assert!(hits > 100, "only {hits}/200 found the ground state");
    }

    #[test]
    fn longer_anneals_do_not_hurt() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let p0 = |ta: f64, na: usize| {
            let samples = annealer.run(&p, &Schedule::standard(ta), na, 11);
            samples
                .iter()
                .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
                .count() as f64
                / na as f64
        };
        let short = p0(1.0, 400);
        let long = p0(100.0, 400);
        assert!(
            long >= short - 0.05,
            "success should not collapse with time: {short} → {long}"
        );
    }

    #[test]
    fn sqa_backend_runs() {
        let p = toy_problem();
        let annealer = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 4 },
            sweeps_per_us: 10.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(1.0), 8, 5);
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn zero_anneals_is_empty() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 0, 1);
        assert!(samples.is_empty());
    }

    #[test]
    fn no_degradation_is_bit_identical_to_run_chained() {
        let p = toy_problem();
        let chains: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]];
        let sched = Schedule::standard(1.0);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let plain = annealer.run_chained(&p, &chains, &sched, 12, 9);
        let degraded =
            annealer.run_chained_degraded(&p, &chains, &sched, 12, 9, &AnnealDegradation::none());
        assert_eq!(plain, degraded);
    }

    #[test]
    fn chain_break_storm_breaks_chains() {
        // A strongly ferromagnetic 2-qubit-chain problem: without a
        // storm every chain reads out intact; with one, flips land on
        // chain members and chains disagree.
        let mut p = IsingProblem::new(8);
        for c in 0..4 {
            p.set_coupling(2 * c, 2 * c + 1, -4.0);
        }
        let chains: Vec<Vec<usize>> = (0..4).map(|c| vec![2 * c, 2 * c + 1]).collect();
        let sched = Schedule::standard(2.0);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            ..Default::default()
        });
        let broken = |samples: &[Vec<Spin>]| {
            samples
                .iter()
                .flat_map(|s| chains.iter().map(move |ch| s[ch[0]] != s[ch[1]]))
                .filter(|&b| b)
                .count()
        };
        let calm = annealer.run_chained(&p, &chains, &sched, 50, 21);
        assert_eq!(broken(&calm), 0, "J=-4 chains must hold without a storm");
        let storm = annealer.run_chained_degraded(
            &p,
            &chains,
            &sched,
            50,
            21,
            &AnnealDegradation::chain_break_storm(0.3),
        );
        assert!(broken(&storm) > 10, "storm broke {} chains", broken(&storm));
        // Deterministic: the same seed reproduces the same storm.
        let again = annealer.run_chained_degraded(
            &p,
            &chains,
            &sched,
            50,
            21,
            &AnnealDegradation::chain_break_storm(0.3),
        );
        assert_eq!(storm, again);
    }

    #[test]
    fn ice_excursion_degrades_solution_quality() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::dw2q().scaled(0.2),
            sweeps_per_us: 50.0,
            ..Default::default()
        });
        let hit_rate = |deg: &AnnealDegradation| {
            let samples =
                annealer.run_chained_degraded(&p, &[], &Schedule::standard(10.0), 300, 3, deg);
            samples
                .iter()
                .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
                .count() as f64
                / 300.0
        };
        let nominal = hit_rate(&AnnealDegradation::none());
        let excursion = hit_rate(&AnnealDegradation::ice_excursion(25.0));
        assert!(
            excursion < nominal - 0.1,
            "a 25× drift excursion should hurt: {nominal} → {excursion}"
        );
    }

    #[test]
    fn run_jobs_matches_per_job_runs() {
        // Packing heterogeneous jobs into one batched call must be
        // unobservable: every sample equals its standalone run_compiled
        // counterpart, with ICE active (per-replica windows) and with a
        // second problem whose coefficients differ over one structure.
        let p = toy_problem();
        let base = CompiledProblem::new(&p);
        let mut other = base.clone();
        other.perturb_linear(|f| f + 0.2);
        other.perturb_couplings(|g| g * 0.9);
        let chains = CompiledChains::compile(&base, &[vec![0, 1], vec![2, 3]]);
        let sched = Schedule::standard(1.0);
        for backend in [Backend::Sa, Backend::Sqa { slices: 4 }] {
            let annealer = Annealer::new(AnnealerConfig {
                backend,
                ..Default::default()
            });
            let jobs = [
                AnnealJob {
                    problem: &base,
                    init: None,
                    num_anneals: 5,
                    seed: 41,
                },
                AnnealJob {
                    problem: &other,
                    init: None,
                    num_anneals: 9,
                    seed: 42,
                },
            ];
            let packed = annealer.run_jobs(&base, &chains, &sched, &jobs);
            let alone: Vec<_> = jobs
                .iter()
                .map(|j| annealer.run_compiled(j.problem, &chains, &sched, j.num_anneals, j.seed))
                .collect();
            assert_eq!(packed, alone, "backend {backend:?}");
        }
    }

    #[test]
    fn replica_width_never_changes_samples() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let run_with = |width: usize| {
            Annealer::new(AnnealerConfig {
                replica_width: width,
                ..Default::default()
            })
            .run_chained(&p, &[vec![0, 1], vec![4, 5, 6]], &sched, 13, 7)
        };
        let reference = run_with(1);
        for width in [2, 3, 8, 16] {
            assert_eq!(run_with(width), reference, "width {width}");
        }
    }

    #[test]
    fn batched_sweep_counter_is_thread_and_width_invariant() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let num_anneals = 13;
        let sweeps = sched.sweep_fractions(AnnealerConfig::default().sweeps_per_us).len();
        let mut totals = Vec::new();
        for (threads, width) in [(1, 1), (1, 8), (4, 5), (3, 16)] {
            let telemetry = Telemetry::enabled();
            Annealer::new(AnnealerConfig {
                threads,
                replica_width: width,
                ..Default::default()
            })
            .with_telemetry(telemetry.clone())
            .run(&p, &sched, num_anneals, 7);
            let snap = telemetry.snapshot();
            totals.push(snap.counter_total("quamax_anneal_batched_sweeps_total"));
            // Every window observation is accounted for: widths sum to
            // the anneal count.
            let widths = snap
                .histogram("quamax_anneal_replica_batch_width", &[])
                .expect("width histogram recorded");
            assert_eq!(widths.sum as usize, num_anneals);
        }
        // Σ width·sweeps = total replica sweeps, however sharded.
        assert!(totals.iter().all(|&t| t == (num_anneals * sweeps) as u64));
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn bad_sqa_config_panics() {
        let _ = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 1 },
            ..Default::default()
        });
    }
}
