//! The annealer device front-end: programs a problem, runs a batch of
//! anneals, returns the sampled configurations.
//!
//! Mirrors the DW2Q job model (§4): the user submits one problem with
//! one parameter setting and gets back `Na` spin configurations, one
//! per anneal cycle. Each anneal draws fresh ICE noise, runs the chosen
//! dynamics backend along the schedule, and reads out. Anneals are
//! independent, so the batch is sharded across CPU threads; sample `k`
//! always uses the RNG stream `splitmix(seed, k)`, making results
//! bit-identical regardless of thread count.

use crate::ice::IceModel;
use crate::kernel::{CompiledChains, SqaState, SweepState};
use crate::schedule::{curves, Schedule};
use crate::{sa, sqa};
use quamax_ising::{CompiledProblem, IsingProblem, Spin};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dynamics backend choice (DESIGN.md §2.1 and §4 ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Metropolis simulated annealing along the schedule's temperature
    /// ladder (default).
    Sa,
    /// Path-integral Monte Carlo with the given number of Trotter
    /// slices (simulated quantum annealing).
    Sqa {
        /// Trotter slices (≥ 2; 8 is a common operating point).
        slices: usize,
    },
}

/// Device configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealerConfig {
    /// Dynamics backend.
    pub backend: Backend,
    /// Monte-Carlo sweeps simulated per microsecond of schedule time.
    /// This is the calibration constant tying simulated dynamics to the
    /// paper's µs axes (see crate docs); EXPERIMENTS.md records the
    /// value used for every figure.
    pub sweeps_per_us: f64,
    /// Intrinsic control error model (per-anneal coefficient noise).
    pub ice: IceModel,
    /// Worker threads for batching (0 = all available cores).
    pub threads: usize,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        AnnealerConfig {
            backend: Backend::Sa,
            sweeps_per_us: 20.0,
            ice: IceModel::calibrated(),
            threads: 0,
        }
    }
}

/// A transient device-health degradation applied to one batch of
/// anneals — the device-layer realization of the fault classes the
/// C-RAN serving layer injects (`quamax_ran::fault`).
///
/// Two physical mechanisms are modeled:
///
/// * **ICE drift excursion** — the analog control has wandered off its
///   calibration point, so every anneal in the batch sees the noise
///   floor inflated by `ice_scale` (applied via
///   [`IceModel::excursion`], riding `IceModel::scaled`);
/// * **chain-break storm** — embedding chains decohere en masse: after
///   readout, each chain-member qubit's spin is independently flipped
///   with probability `chain_flip_probability`, producing the broken-
///   chain readouts that majority-vote unembedding then has to repair.
///
/// Flips are drawn from a dedicated SplitMix stream keyed by
/// `(seed, anneal index, qubit)`, so a degraded run is bit-identical
/// across thread counts, like every other device path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealDegradation {
    /// ICE moment inflation factor (≥ 1; 1 = nominal floor).
    pub ice_scale: f64,
    /// Per-qubit post-readout flip probability on chain members
    /// (in `[0, 1]`; 0 = no storm).
    pub chain_flip_probability: f64,
}

impl AnnealDegradation {
    /// A healthy device: nominal ICE, no storm.
    pub fn none() -> Self {
        AnnealDegradation {
            ice_scale: 1.0,
            chain_flip_probability: 0.0,
        }
    }

    /// An ICE drift excursion inflating the noise floor by `factor`.
    pub fn ice_excursion(factor: f64) -> Self {
        AnnealDegradation {
            ice_scale: factor,
            ..AnnealDegradation::none()
        }
    }

    /// A chain-break storm flipping chain qubits with probability `p`.
    pub fn chain_break_storm(p: f64) -> Self {
        AnnealDegradation {
            chain_flip_probability: p,
            ..AnnealDegradation::none()
        }
    }

    /// `true` when this degradation changes nothing.
    pub fn is_none(&self) -> bool {
        self.ice_scale == 1.0 && self.chain_flip_probability == 0.0
    }
}

/// A simulated quantum annealer.
///
/// ```
/// use quamax_anneal::{Annealer, AnnealerConfig, IceModel, Schedule};
/// use quamax_ising::IsingProblem;
///
/// let mut p = IsingProblem::new(3);
/// p.set_coupling(0, 1, -1.0);
/// p.set_coupling(1, 2, -1.0);
/// let annealer = Annealer::new(AnnealerConfig {
///     ice: IceModel::none(),
///     ..Default::default()
/// });
/// let samples = annealer.run(&p, &Schedule::standard(5.0), 20, 7);
/// assert_eq!(samples.len(), 20);
/// // The ferromagnetic chain's ground states are all-up/all-down.
/// let hits = samples.iter().filter(|s| p.energy(s) == -2.0).count();
/// assert!(hits > 10);
/// ```
#[derive(Clone, Debug)]
pub struct Annealer {
    config: AnnealerConfig,
}

impl Annealer {
    /// A device with the given configuration.
    pub fn new(config: AnnealerConfig) -> Self {
        assert!(config.sweeps_per_us > 0.0, "sweep density must be positive");
        if let Backend::Sqa { slices } = config.backend {
            assert!(slices >= 2, "SQA needs at least 2 Trotter slices");
        }
        Annealer { config }
    }

    /// A DW2Q-like device: SA dynamics, paper ICE moments, default
    /// calibration.
    pub fn dw2q(config: AnnealerConfig) -> Self {
        Annealer::new(config)
    }

    /// This device's configuration.
    pub fn config(&self) -> &AnnealerConfig {
        &self.config
    }

    /// The same device with its ICE model replaced — the hook a fault
    /// injector uses to run one job under a drift excursion
    /// ([`IceModel::excursion`]) without touching the shared device.
    pub fn with_ice(&self, ice: IceModel) -> Annealer {
        Annealer::new(AnnealerConfig { ice, ..self.config })
    }

    /// Like [`Annealer::run_chained`], under a transient
    /// [`AnnealDegradation`]: the batch anneals with the ICE floor
    /// inflated by `degradation.ice_scale`, and afterwards each
    /// chain-member qubit is flipped with
    /// `degradation.chain_flip_probability` (a chain-break storm).
    /// With `AnnealDegradation::none()` this is bit-identical to
    /// [`Annealer::run_chained`]. Deterministic in
    /// `(problem, chains, schedule, num_anneals, seed, degradation)`.
    pub fn run_chained_degraded(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
        degradation: &AnnealDegradation,
    ) -> Vec<Vec<Spin>> {
        assert!(
            degradation.ice_scale >= 1.0,
            "ice_scale < 1 is not a degradation"
        );
        assert!(
            (0.0..=1.0).contains(&degradation.chain_flip_probability),
            "flip probability must be in [0, 1]"
        );
        let device = if degradation.ice_scale > 1.0 {
            self.with_ice(self.config.ice.excursion(degradation.ice_scale))
        } else {
            self.clone()
        };
        let mut samples = device.run_chained(problem, chains, schedule, num_anneals, seed);
        let p = degradation.chain_flip_probability;
        if p > 0.0 {
            // Post-readout storm: a dedicated stream per (anneal, qubit)
            // — independent of the anneal dynamics' own streams, so the
            // storm neither perturbs nor is perturbed by them.
            const STORM_SALT: u64 = 0x0570_712C_4A15;
            for (k, sample) in samples.iter_mut().enumerate() {
                for chain in chains {
                    for &qubit in chain {
                        let draw = splitmix(seed ^ STORM_SALT, (k as u64) << 32 | qubit as u64);
                        // Top 53 bits → uniform in [0, 1).
                        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                        if unit < p {
                            sample[qubit] = -sample[qubit];
                        }
                    }
                }
            }
        }
        samples
    }

    /// Runs `num_anneals` anneal cycles of `problem` under `schedule`,
    /// returning one spin configuration per anneal.
    ///
    /// `problem` is the *programmed* (already embedded and normalized)
    /// Ising problem; ICE is applied inside, freshly per anneal.
    /// Deterministic in `(problem, schedule, num_anneals, seed)`.
    pub fn run(
        &self,
        problem: &IsingProblem,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        self.run_chained(problem, &[], schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run`], additionally informing the dynamics of
    /// the embedding's qubit chains so sweeps include chain-collective
    /// proposals (see `sa::anneal_once_chained` — the classical
    /// counterpart of hardware's collective chain dynamics).
    pub fn run_chained(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_compiled(&compiled, &compiled_chains, schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run_chained`], over a problem view the caller
    /// has already compiled — the zero-recompile path for callers that
    /// program one embedded problem and run it many times (the decoder,
    /// parameter searches, the bench harness).
    pub fn run_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(
            !schedule.is_reverse(),
            "reverse schedules need a candidate state: use run_reverse"
        );
        self.run_inner(problem, chains, None, schedule, num_anneals, seed)
    }

    /// Reverse annealing (§8): every anneal starts from `candidate`
    /// (a physical configuration, e.g. a classically-decoded solution
    /// expanded onto the chains), ramps back to the schedule's reversal
    /// point, and re-anneals — a local quantum refinement.
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_reverse_compiled(
            &compiled,
            &compiled_chains,
            candidate,
            schedule,
            num_anneals,
            seed,
        )
    }

    /// Reverse annealing over a caller-compiled problem view (see
    /// [`Annealer::run_compiled`]).
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(schedule.is_reverse(), "run_reverse needs Schedule::reverse");
        assert_eq!(
            candidate.len(),
            problem.num_spins(),
            "candidate length mismatch"
        );
        self.run_inner(
            problem,
            chains,
            Some(candidate),
            schedule,
            num_anneals,
            seed,
        )
    }

    fn run_inner(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        init: Option<&[Spin]>,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let fractions = schedule.sweep_fractions(self.config.sweeps_per_us);
        // Pre-compute the SA temperature ladder once per run.
        let betas: Vec<f64> = fractions
            .iter()
            .map(|&s| curves::beta(s).max(1e-3))
            .collect();

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        };
        let threads = threads.min(num_anneals.max(1));

        let mut samples: Vec<Vec<Spin>> = vec![Vec::new(); num_anneals];
        if num_anneals == 0 {
            return samples;
        }

        let config = self.config;
        if threads == 1 {
            // Batch front-ends (e.g. a decode session sharding a
            // coherence interval across cores) run many single-threaded
            // anneal batches concurrently; skipping the scoped spawn
            // keeps each of those batches free of thread overhead.
            // Identical output by the determinism contract.
            let mut worker = Worker::new();
            for (k, slot) in samples.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(splitmix(seed, k as u64));
                *slot = worker.anneal(problem, chains, init, &betas, &fractions, &config, &mut rng);
            }
            return samples;
        }
        let chunk = num_anneals.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in samples.chunks_mut(chunk).enumerate() {
                let betas = &betas;
                let fractions = &fractions;
                scope.spawn(move || {
                    // Per-thread scratch, allocated once and reused by
                    // every anneal in the chunk: the ICE-refrozen
                    // coefficient copy and the sweep state buffers.
                    let mut worker = Worker::new();
                    let base = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let k = (base + off) as u64;
                        let mut rng = StdRng::seed_from_u64(splitmix(seed, k));
                        *slot = worker
                            .anneal(problem, chains, init, betas, fractions, &config, &mut rng);
                    }
                });
            }
        });
        samples
    }
}

/// One worker thread's reusable buffers: scratch coefficients for the
/// per-anneal ICE refreeze plus the backend sweep states.
struct Worker {
    /// Built lazily on the first refreeze — a zero-ICE run never pays
    /// for the coefficient copy.
    scratch: Option<CompiledProblem>,
    sa_state: SweepState,
    sqa_state: SqaState,
}

impl Worker {
    fn new() -> Self {
        Worker {
            scratch: None,
            sa_state: SweepState::new(),
            sqa_state: SqaState::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn anneal(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        init: Option<&[Spin]>,
        betas: &[f64],
        fractions: &[f64],
        config: &AnnealerConfig,
        rng: &mut StdRng,
    ) -> Vec<Spin> {
        // Cheap per-anneal refreeze: coefficients copy into the scratch
        // view in two memcpy-like passes; the CSR structure is shared.
        let effective: &CompiledProblem = if config.ice.is_zero() {
            problem
        } else {
            let scratch = self.scratch.get_or_insert_with(|| problem.clone());
            config.ice.refreeze(problem, scratch, rng);
            scratch
        };
        match config.backend {
            Backend::Sa => {
                sa::anneal_once_compiled(effective, chains, betas, init, &mut self.sa_state, rng);
                // Copy out instead of take: the state keeps its buffers
                // warm for the next anneal in the chunk.
                self.sa_state.spins().to_vec()
            }
            Backend::Sqa { slices } => {
                sqa::anneal_once_compiled(
                    effective,
                    chains,
                    fractions,
                    slices,
                    init,
                    &mut self.sqa_state,
                    rng,
                );
                sqa::best_slice(effective, &self.sqa_state)
            }
        }
    }
}

/// SplitMix64 of `(seed, k)` — the per-anneal RNG stream seed.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::exact_ground_state;

    fn toy_problem() -> IsingProblem {
        let mut p = IsingProblem::new(8);
        for i in 0..8 {
            p.set_linear(i, 0.05 * (i as f64 - 4.0));
            for j in (i + 1)..8 {
                p.set_coupling(i, j, if (i + j) % 3 == 0 { 0.4 } else { -0.3 });
            }
        }
        p
    }

    #[test]
    fn returns_requested_sample_count() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 37, 1);
        assert_eq!(samples.len(), 37);
        for s in &samples {
            assert_eq!(s.len(), 8);
            assert!(s.iter().all(|&x| x == 1 || x == -1));
        }
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let one = Annealer::new(AnnealerConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        let four = Annealer::new(AnnealerConfig {
            threads: 4,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        assert_eq!(one, four);
    }

    #[test]
    fn different_seeds_differ() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let a = annealer.run(&p, &sched, 16, 1);
        let b = annealer.run(&p, &sched, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn finds_ground_state_without_ice() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            sweeps_per_us: 50.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(10.0), 200, 3);
        let hits = samples
            .iter()
            .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
            .count();
        assert!(hits > 100, "only {hits}/200 found the ground state");
    }

    #[test]
    fn longer_anneals_do_not_hurt() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let p0 = |ta: f64, na: usize| {
            let samples = annealer.run(&p, &Schedule::standard(ta), na, 11);
            samples
                .iter()
                .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
                .count() as f64
                / na as f64
        };
        let short = p0(1.0, 400);
        let long = p0(100.0, 400);
        assert!(
            long >= short - 0.05,
            "success should not collapse with time: {short} → {long}"
        );
    }

    #[test]
    fn sqa_backend_runs() {
        let p = toy_problem();
        let annealer = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 4 },
            sweeps_per_us: 10.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(1.0), 8, 5);
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn zero_anneals_is_empty() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 0, 1);
        assert!(samples.is_empty());
    }

    #[test]
    fn no_degradation_is_bit_identical_to_run_chained() {
        let p = toy_problem();
        let chains: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]];
        let sched = Schedule::standard(1.0);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let plain = annealer.run_chained(&p, &chains, &sched, 12, 9);
        let degraded =
            annealer.run_chained_degraded(&p, &chains, &sched, 12, 9, &AnnealDegradation::none());
        assert_eq!(plain, degraded);
    }

    #[test]
    fn chain_break_storm_breaks_chains() {
        // A strongly ferromagnetic 2-qubit-chain problem: without a
        // storm every chain reads out intact; with one, flips land on
        // chain members and chains disagree.
        let mut p = IsingProblem::new(8);
        for c in 0..4 {
            p.set_coupling(2 * c, 2 * c + 1, -4.0);
        }
        let chains: Vec<Vec<usize>> = (0..4).map(|c| vec![2 * c, 2 * c + 1]).collect();
        let sched = Schedule::standard(2.0);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            ..Default::default()
        });
        let broken = |samples: &[Vec<Spin>]| {
            samples
                .iter()
                .flat_map(|s| chains.iter().map(move |ch| s[ch[0]] != s[ch[1]]))
                .filter(|&b| b)
                .count()
        };
        let calm = annealer.run_chained(&p, &chains, &sched, 50, 21);
        assert_eq!(broken(&calm), 0, "J=-4 chains must hold without a storm");
        let storm = annealer.run_chained_degraded(
            &p,
            &chains,
            &sched,
            50,
            21,
            &AnnealDegradation::chain_break_storm(0.3),
        );
        assert!(broken(&storm) > 10, "storm broke {} chains", broken(&storm));
        // Deterministic: the same seed reproduces the same storm.
        let again = annealer.run_chained_degraded(
            &p,
            &chains,
            &sched,
            50,
            21,
            &AnnealDegradation::chain_break_storm(0.3),
        );
        assert_eq!(storm, again);
    }

    #[test]
    fn ice_excursion_degrades_solution_quality() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::dw2q().scaled(0.2),
            sweeps_per_us: 50.0,
            ..Default::default()
        });
        let hit_rate = |deg: &AnnealDegradation| {
            let samples =
                annealer.run_chained_degraded(&p, &[], &Schedule::standard(10.0), 300, 3, deg);
            samples
                .iter()
                .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
                .count() as f64
                / 300.0
        };
        let nominal = hit_rate(&AnnealDegradation::none());
        let excursion = hit_rate(&AnnealDegradation::ice_excursion(25.0));
        assert!(
            excursion < nominal - 0.1,
            "a 25× drift excursion should hurt: {nominal} → {excursion}"
        );
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn bad_sqa_config_panics() {
        let _ = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 1 },
            ..Default::default()
        });
    }
}
