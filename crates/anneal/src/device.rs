//! The annealer device front-end: programs a problem, runs a batch of
//! anneals, returns the sampled configurations.
//!
//! Mirrors the DW2Q job model (§4): the user submits one problem with
//! one parameter setting and gets back `Na` spin configurations, one
//! per anneal cycle. Each anneal draws fresh ICE noise, runs the chosen
//! dynamics backend along the schedule, and reads out. Anneals are
//! independent, so the batch is sharded across CPU threads; sample `k`
//! always uses the RNG stream `splitmix(seed, k)`, making results
//! bit-identical regardless of thread count.

use crate::ice::IceModel;
use crate::kernel::{CompiledChains, SqaState, SweepState};
use crate::schedule::{curves, Schedule};
use crate::{sa, sqa};
use quamax_ising::{CompiledProblem, IsingProblem, Spin};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dynamics backend choice (DESIGN.md §2.1 and §4 ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Metropolis simulated annealing along the schedule's temperature
    /// ladder (default).
    Sa,
    /// Path-integral Monte Carlo with the given number of Trotter
    /// slices (simulated quantum annealing).
    Sqa {
        /// Trotter slices (≥ 2; 8 is a common operating point).
        slices: usize,
    },
}

/// Device configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealerConfig {
    /// Dynamics backend.
    pub backend: Backend,
    /// Monte-Carlo sweeps simulated per microsecond of schedule time.
    /// This is the calibration constant tying simulated dynamics to the
    /// paper's µs axes (see crate docs); EXPERIMENTS.md records the
    /// value used for every figure.
    pub sweeps_per_us: f64,
    /// Intrinsic control error model (per-anneal coefficient noise).
    pub ice: IceModel,
    /// Worker threads for batching (0 = all available cores).
    pub threads: usize,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        AnnealerConfig {
            backend: Backend::Sa,
            sweeps_per_us: 20.0,
            ice: IceModel::calibrated(),
            threads: 0,
        }
    }
}

/// A simulated quantum annealer.
///
/// ```
/// use quamax_anneal::{Annealer, AnnealerConfig, IceModel, Schedule};
/// use quamax_ising::IsingProblem;
///
/// let mut p = IsingProblem::new(3);
/// p.set_coupling(0, 1, -1.0);
/// p.set_coupling(1, 2, -1.0);
/// let annealer = Annealer::new(AnnealerConfig {
///     ice: IceModel::none(),
///     ..Default::default()
/// });
/// let samples = annealer.run(&p, &Schedule::standard(5.0), 20, 7);
/// assert_eq!(samples.len(), 20);
/// // The ferromagnetic chain's ground states are all-up/all-down.
/// let hits = samples.iter().filter(|s| p.energy(s) == -2.0).count();
/// assert!(hits > 10);
/// ```
#[derive(Clone, Debug)]
pub struct Annealer {
    config: AnnealerConfig,
}

impl Annealer {
    /// A device with the given configuration.
    pub fn new(config: AnnealerConfig) -> Self {
        assert!(config.sweeps_per_us > 0.0, "sweep density must be positive");
        if let Backend::Sqa { slices } = config.backend {
            assert!(slices >= 2, "SQA needs at least 2 Trotter slices");
        }
        Annealer { config }
    }

    /// A DW2Q-like device: SA dynamics, paper ICE moments, default
    /// calibration.
    pub fn dw2q(config: AnnealerConfig) -> Self {
        Annealer::new(config)
    }

    /// This device's configuration.
    pub fn config(&self) -> &AnnealerConfig {
        &self.config
    }

    /// Runs `num_anneals` anneal cycles of `problem` under `schedule`,
    /// returning one spin configuration per anneal.
    ///
    /// `problem` is the *programmed* (already embedded and normalized)
    /// Ising problem; ICE is applied inside, freshly per anneal.
    /// Deterministic in `(problem, schedule, num_anneals, seed)`.
    pub fn run(
        &self,
        problem: &IsingProblem,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        self.run_chained(problem, &[], schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run`], additionally informing the dynamics of
    /// the embedding's qubit chains so sweeps include chain-collective
    /// proposals (see `sa::anneal_once_chained` — the classical
    /// counterpart of hardware's collective chain dynamics).
    pub fn run_chained(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_compiled(&compiled, &compiled_chains, schedule, num_anneals, seed)
    }

    /// Like [`Annealer::run_chained`], over a problem view the caller
    /// has already compiled — the zero-recompile path for callers that
    /// program one embedded problem and run it many times (the decoder,
    /// parameter searches, the bench harness).
    pub fn run_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(
            !schedule.is_reverse(),
            "reverse schedules need a candidate state: use run_reverse"
        );
        self.run_inner(problem, chains, None, schedule, num_anneals, seed)
    }

    /// Reverse annealing (§8): every anneal starts from `candidate`
    /// (a physical configuration, e.g. a classically-decoded solution
    /// expanded onto the chains), ramps back to the schedule's reversal
    /// point, and re-anneals — a local quantum refinement.
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse(
        &self,
        problem: &IsingProblem,
        chains: &[Vec<usize>],
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let compiled = CompiledProblem::new(problem);
        let compiled_chains = CompiledChains::compile(&compiled, chains);
        self.run_reverse_compiled(
            &compiled,
            &compiled_chains,
            candidate,
            schedule,
            num_anneals,
            seed,
        )
    }

    /// Reverse annealing over a caller-compiled problem view (see
    /// [`Annealer::run_compiled`]).
    ///
    /// # Panics
    /// Panics unless `schedule.is_reverse()` and the candidate length
    /// matches the problem.
    pub fn run_reverse_compiled(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        candidate: &[Spin],
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        assert!(schedule.is_reverse(), "run_reverse needs Schedule::reverse");
        assert_eq!(
            candidate.len(),
            problem.num_spins(),
            "candidate length mismatch"
        );
        self.run_inner(
            problem,
            chains,
            Some(candidate),
            schedule,
            num_anneals,
            seed,
        )
    }

    fn run_inner(
        &self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        init: Option<&[Spin]>,
        schedule: &Schedule,
        num_anneals: usize,
        seed: u64,
    ) -> Vec<Vec<Spin>> {
        let fractions = schedule.sweep_fractions(self.config.sweeps_per_us);
        // Pre-compute the SA temperature ladder once per run.
        let betas: Vec<f64> = fractions
            .iter()
            .map(|&s| curves::beta(s).max(1e-3))
            .collect();

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        };
        let threads = threads.min(num_anneals.max(1));

        let mut samples: Vec<Vec<Spin>> = vec![Vec::new(); num_anneals];
        if num_anneals == 0 {
            return samples;
        }

        let config = self.config;
        if threads == 1 {
            // Batch front-ends (e.g. a decode session sharding a
            // coherence interval across cores) run many single-threaded
            // anneal batches concurrently; skipping the scoped spawn
            // keeps each of those batches free of thread overhead.
            // Identical output by the determinism contract.
            let mut worker = Worker::new();
            for (k, slot) in samples.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(splitmix(seed, k as u64));
                *slot = worker.anneal(problem, chains, init, &betas, &fractions, &config, &mut rng);
            }
            return samples;
        }
        let chunk = num_anneals.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in samples.chunks_mut(chunk).enumerate() {
                let betas = &betas;
                let fractions = &fractions;
                scope.spawn(move || {
                    // Per-thread scratch, allocated once and reused by
                    // every anneal in the chunk: the ICE-refrozen
                    // coefficient copy and the sweep state buffers.
                    let mut worker = Worker::new();
                    let base = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let k = (base + off) as u64;
                        let mut rng = StdRng::seed_from_u64(splitmix(seed, k));
                        *slot = worker
                            .anneal(problem, chains, init, betas, fractions, &config, &mut rng);
                    }
                });
            }
        });
        samples
    }
}

/// One worker thread's reusable buffers: scratch coefficients for the
/// per-anneal ICE refreeze plus the backend sweep states.
struct Worker {
    /// Built lazily on the first refreeze — a zero-ICE run never pays
    /// for the coefficient copy.
    scratch: Option<CompiledProblem>,
    sa_state: SweepState,
    sqa_state: SqaState,
}

impl Worker {
    fn new() -> Self {
        Worker {
            scratch: None,
            sa_state: SweepState::new(),
            sqa_state: SqaState::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn anneal(
        &mut self,
        problem: &CompiledProblem,
        chains: &CompiledChains,
        init: Option<&[Spin]>,
        betas: &[f64],
        fractions: &[f64],
        config: &AnnealerConfig,
        rng: &mut StdRng,
    ) -> Vec<Spin> {
        // Cheap per-anneal refreeze: coefficients copy into the scratch
        // view in two memcpy-like passes; the CSR structure is shared.
        let effective: &CompiledProblem = if config.ice.is_zero() {
            problem
        } else {
            let scratch = self.scratch.get_or_insert_with(|| problem.clone());
            config.ice.refreeze(problem, scratch, rng);
            scratch
        };
        match config.backend {
            Backend::Sa => {
                sa::anneal_once_compiled(effective, chains, betas, init, &mut self.sa_state, rng);
                // Copy out instead of take: the state keeps its buffers
                // warm for the next anneal in the chunk.
                self.sa_state.spins().to_vec()
            }
            Backend::Sqa { slices } => {
                sqa::anneal_once_compiled(
                    effective,
                    chains,
                    fractions,
                    slices,
                    init,
                    &mut self.sqa_state,
                    rng,
                );
                sqa::best_slice(effective, &self.sqa_state)
            }
        }
    }
}

/// SplitMix64 of `(seed, k)` — the per-anneal RNG stream seed.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::exact_ground_state;

    fn toy_problem() -> IsingProblem {
        let mut p = IsingProblem::new(8);
        for i in 0..8 {
            p.set_linear(i, 0.05 * (i as f64 - 4.0));
            for j in (i + 1)..8 {
                p.set_coupling(i, j, if (i + j) % 3 == 0 { 0.4 } else { -0.3 });
            }
        }
        p
    }

    #[test]
    fn returns_requested_sample_count() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 37, 1);
        assert_eq!(samples.len(), 37);
        for s in &samples {
            assert_eq!(s.len(), 8);
            assert!(s.iter().all(|&x| x == 1 || x == -1));
        }
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let one = Annealer::new(AnnealerConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        let four = Annealer::new(AnnealerConfig {
            threads: 4,
            ..Default::default()
        })
        .run(&p, &sched, 24, 7);
        assert_eq!(one, four);
    }

    #[test]
    fn different_seeds_differ() {
        let p = toy_problem();
        let sched = Schedule::standard(1.0);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let a = annealer.run(&p, &sched, 16, 1);
        let b = annealer.run(&p, &sched, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn finds_ground_state_without_ice() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            sweeps_per_us: 50.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(10.0), 200, 3);
        let hits = samples
            .iter()
            .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
            .count();
        assert!(hits > 100, "only {hits}/200 found the ground state");
    }

    #[test]
    fn longer_anneals_do_not_hurt() {
        let p = toy_problem();
        let gs = exact_ground_state(&p);
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let p0 = |ta: f64, na: usize| {
            let samples = annealer.run(&p, &Schedule::standard(ta), na, 11);
            samples
                .iter()
                .filter(|s| (p.energy(s) - gs.energy).abs() < 1e-9)
                .count() as f64
                / na as f64
        };
        let short = p0(1.0, 400);
        let long = p0(100.0, 400);
        assert!(
            long >= short - 0.05,
            "success should not collapse with time: {short} → {long}"
        );
    }

    #[test]
    fn sqa_backend_runs() {
        let p = toy_problem();
        let annealer = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 4 },
            sweeps_per_us: 10.0,
            ..Default::default()
        });
        let samples = annealer.run(&p, &Schedule::standard(1.0), 8, 5);
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn zero_anneals_is_empty() {
        let annealer = Annealer::dw2q(AnnealerConfig::default());
        let samples = annealer.run(&toy_problem(), &Schedule::standard(1.0), 0, 1);
        assert!(samples.is_empty());
    }

    #[test]
    #[should_panic(expected = "Trotter")]
    fn bad_sqa_config_panics() {
        let _ = Annealer::new(AnnealerConfig {
            backend: Backend::Sqa { slices: 1 },
            ..Default::default()
        });
    }
}
