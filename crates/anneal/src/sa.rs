//! Metropolis simulated-annealing backend.
//!
//! One anneal = one trajectory: spins start uniformly random (the
//! classical image of the initial superposition), then sweep through
//! the schedule's temperature ladder; each sweep proposes one flip per
//! spin and accepts with the Metropolis rule `min(1, e^{−β·ΔE})`. The
//! paper's §2.2 frames SA as the canonical classical reference dynamics
//! for quantum annealers; per DESIGN.md §2.1 it is this simulator's
//! default backend.

use crate::kernel::{CompiledChains, ReplicaBatch, SweepState};
use quamax_ising::{CompiledProblem, IsingProblem, Spin};
use rand::Rng;

/// Runs one simulated-annealing trajectory over `betas` (one sweep per
/// entry), returning the final configuration.
///
/// # Panics
/// Panics when `betas` is empty (a schedule always has ≥ 2 sweeps).
pub fn anneal_once<R: Rng + ?Sized>(
    problem: &IsingProblem,
    betas: &[f64],
    rng: &mut R,
) -> Vec<Spin> {
    anneal_once_chained(problem, betas, &[], rng)
}

/// Like [`anneal_once`], with *chain-collective moves*: each sweep
/// additionally proposes flipping every given qubit chain as a unit.
///
/// On embedded problems, single-spin Metropolis cannot cross the
/// barrier of a ferromagnetically-locked chain within a realistic
/// sweep budget — on hardware that transition happens collectively
/// through quantum dynamics. Cluster proposals over the known chains
/// are the standard classical counterpart (and remain a valid
/// Metropolis kernel: the proposal set is fixed and symmetric). Chain
/// *breaking* still happens through the single-spin pass, so weak
/// `|J_F|` misbehaves exactly as on the device.
pub fn anneal_once_chained<R: Rng + ?Sized>(
    problem: &IsingProblem,
    betas: &[f64],
    chains: &[Vec<usize>],
    rng: &mut R,
) -> Vec<Spin> {
    anneal_once_from(problem, betas, chains, None, rng)
}

/// Like [`anneal_once_chained`], optionally starting from a candidate
/// configuration instead of a uniform-random one — the classical image
/// of *reverse annealing* (the device ramps back from `s = 1`, so the
/// trajectory begins at the programmed candidate).
pub fn anneal_once_from<R: Rng + ?Sized>(
    problem: &IsingProblem,
    betas: &[f64],
    chains: &[Vec<usize>],
    init: Option<&[Spin]>,
    rng: &mut R,
) -> Vec<Spin> {
    let compiled = CompiledProblem::new(problem);
    let compiled_chains = CompiledChains::compile(&compiled, chains);
    let mut state = SweepState::new();
    anneal_once_compiled(&compiled, &compiled_chains, betas, init, &mut state, rng);
    state.take_spins()
}

/// The compiled-kernel trajectory: like [`anneal_once_from`] but over a
/// prebuilt [`CompiledProblem`]/[`CompiledChains`] pair and a reusable
/// [`SweepState`], leaving the final configuration in `state`. This is
/// the batching entry point — the device compiles once per run and each
/// worker thread reuses one state across its anneals, so the hot loop
/// never allocates.
///
/// # Panics
/// Panics when `betas` is empty or an initial state has the wrong
/// length.
pub fn anneal_once_compiled<R: Rng + ?Sized>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    betas: &[f64],
    init: Option<&[Spin]>,
    state: &mut SweepState,
    rng: &mut R,
) {
    assert!(!betas.is_empty(), "empty sweep plan");
    let n = problem.num_spins();
    match init {
        Some(s) => {
            assert_eq!(s.len(), n, "initial state length mismatch");
            state.reset(problem, s);
        }
        None => state.reset_random(problem, rng),
    }
    for &beta in betas {
        sweep_compiled(problem, state, beta, rng);
        for c in 0..chains.len() {
            let delta = state.chain_flip_delta(chains, c);
            if metropolis(beta, delta, rng) {
                state.chain_flip(problem, chains, c);
            }
        }
    }
}

/// The batched trajectory: every replica of `batch` runs the same sweep
/// plan, each consuming its own RNG stream (`rngs[r]`), so replica `r`
/// is bit-identical to [`anneal_once_compiled`] driven by `rngs[r]`
/// alone. The caller initializes the batch first — bind/init draw
/// order per stream is refreeze → init → sweeps, exactly as the serial
/// device path.
///
/// # Panics
/// Panics when `betas` is empty or `rngs.len() != batch.width()`.
pub fn anneal_batch_compiled<R: Rng>(
    problem: &CompiledProblem,
    chains: &CompiledChains,
    betas: &[f64],
    batch: &mut ReplicaBatch,
    rngs: &mut [R],
) {
    assert!(!betas.is_empty(), "empty sweep plan");
    assert_eq!(rngs.len(), batch.width(), "one RNG stream per replica");
    for &beta in betas {
        sweep_batch(problem, batch, beta, rngs);
        for c in 0..chains.len() {
            batch.sweep_chain(problem, chains, c, |r, delta| {
                metropolis(beta, delta, &mut rngs[r])
            });
        }
    }
}

/// One batched Metropolis sweep: per spin, one strip of per-replica
/// accept decisions and one shared CSR row walk (see
/// [`ReplicaBatch::sweep_spin`]). Proposal order matches
/// [`sweep_compiled`] per replica.
pub fn sweep_batch<R: Rng>(
    problem: &CompiledProblem,
    batch: &mut ReplicaBatch,
    beta: f64,
    rngs: &mut [R],
) {
    let rngs = &mut rngs[..batch.width()];
    batch.sweep_spins(problem, |_, r, delta| metropolis(beta, delta, &mut rngs[r]));
}

/// The Metropolis decision shared by the scalar and batched SA kernels:
/// downhill moves accept without drawing, deep-cold uphill moves reject
/// without drawing (see [`CERTAIN_REJECT_EXPONENT`]), everything in
/// between draws one uniform — so whether a stream advances depends
/// only on `(beta, delta)`.
#[inline]
pub(crate) fn metropolis<R: Rng + ?Sized>(beta: f64, delta: f64, rng: &mut R) -> bool {
    if delta <= 0.0 {
        return true;
    }
    let exponent = beta * delta;
    exponent < CERTAIN_REJECT_EXPONENT && rng.random::<f64>() < (-exponent).exp()
}

/// Energy change from flipping every spin of `chain` simultaneously:
/// `Δ = Σ_i flip_delta(i) + 4·Σ_{internal edges (a,b)} g_ab·s_a·s_b`
/// — the correction restores the internal-edge terms the per-spin
/// deltas double-count with the wrong sign. Valid for an arbitrary
/// spin set (internal edges are found from the problem graph, not
/// assumed to be the consecutive pairs of an embedding path).
pub fn chain_flip_delta(problem: &IsingProblem, spins: &[Spin], chain: &[usize]) -> f64 {
    let mut delta: f64 = chain.iter().map(|&i| problem.flip_delta(spins, i)).sum();
    // Embedding chains are short (≤ ~17); a linear membership scan
    // beats hashing at this size.
    for &i in chain {
        for &(j, g) in problem.neighbors(i) {
            if j > i && chain.contains(&j) {
                delta += 4.0 * g * (spins[i] as f64) * (spins[j] as f64);
            }
        }
    }
    delta
}

/// One Metropolis sweep at inverse temperature `beta`: proposes a flip
/// of every spin once, in index order.
///
/// Index order (not random order) keeps the inner loop branch-friendly
/// and is statistically equivalent for these dense/short-ranged
/// problems; the proposal distribution stays symmetric.
///
/// This is the *naive* reference kernel: each proposal recomputes the
/// local field from the adjacency list. The batch path uses
/// [`sweep_compiled`]; the microbenches keep both to measure the gap.
pub fn sweep<R: Rng + ?Sized>(problem: &IsingProblem, spins: &mut [Spin], beta: f64, rng: &mut R) {
    for i in 0..spins.len() {
        let delta = problem.flip_delta(spins, i);
        if delta <= 0.0 || rng.random::<f64>() < (-beta * delta).exp() {
            spins[i] = -spins[i];
        }
    }
}

/// Exponent beyond which a Metropolis acceptance is *certainly*
/// rejected at f64-uniform resolution: `exp(−40) ≈ 4·10⁻¹⁸` is below
/// the `2⁻⁵³` granularity of the uniform draw, so skipping the draw
/// changes each proposal's acceptance probability by less than
/// `2⁻⁵³` while sparing the hot loop an `exp` and an RNG advance —
/// most cold-sweep proposals take this path. (Determinism is
/// unaffected: whether a draw is skipped depends only on ΔE.)
pub(crate) const CERTAIN_REJECT_EXPONENT: f64 = 40.0;

/// One Metropolis sweep over the compiled kernel: proposals read the
/// cached local field (O(1)); only accepted flips pay the O(degree)
/// neighbor update, and deep-cold rejections skip the `exp`/RNG cost
/// entirely (see [`CERTAIN_REJECT_EXPONENT`]). Same proposal order as
/// [`sweep`].
pub fn sweep_compiled<R: Rng + ?Sized>(
    problem: &CompiledProblem,
    state: &mut SweepState,
    beta: f64,
    rng: &mut R,
) {
    for i in 0..problem.num_spins() {
        let delta = state.flip_delta(i);
        if metropolis(beta, delta, rng) {
            state.flip(problem, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamax_ising::exact_ground_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ferro_chain(n: usize) -> IsingProblem {
        let mut p = IsingProblem::new(n);
        for i in 0..n - 1 {
            p.set_coupling(i, i + 1, -1.0);
        }
        p
    }

    #[test]
    fn cold_sweeps_reach_local_minimum() {
        // At β → ∞ Metropolis is greedy descent; a ferromagnetic chain
        // must end with no frustrated bond after enough sweeps.
        let p = ferro_chain(16);
        let mut rng = StdRng::seed_from_u64(1);
        let betas = vec![1e9; 64];
        let s = anneal_once(&p, &betas, &mut rng);
        // Greedy descent on a chain can leave a domain wall, but the
        // energy must be at most one bond above the ground state.
        let gs = exact_ground_state(&ferro_chain(16));
        assert!(p.energy(&s) <= gs.energy + 2.0 + 1e-9);
    }

    #[test]
    fn annealed_chain_finds_ground_state_often() {
        let p = ferro_chain(12);
        let gs = exact_ground_state(&p);
        let mut rng = StdRng::seed_from_u64(2);
        // Geometric ladder from hot to cold.
        let betas: Vec<f64> = (0..60).map(|k| 0.05 * 1.15f64.powi(k)).collect();
        let mut hits = 0;
        for _ in 0..100 {
            let s = anneal_once(&p, &betas, &mut rng);
            if (p.energy(&s) - gs.energy).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(
            hits > 60,
            "only {hits}/100 anneals reached the ground state"
        );
    }

    #[test]
    fn hot_sweeps_decorrelate() {
        // At β = 0 every proposal is accepted: two consecutive sweeps
        // flip every spin twice... actually acceptance is certain, so
        // one sweep flips all spins deterministically. Check instead
        // that at tiny β the final state is near-uniform: average
        // magnetization over many anneals ≈ 0.
        let p = ferro_chain(10);
        let mut rng = StdRng::seed_from_u64(3);
        let betas = vec![1e-6; 3];
        let mut mag = 0i64;
        for _ in 0..2000 {
            let s = anneal_once(&p, &betas, &mut rng);
            mag += s.iter().map(|&x| x as i64).sum::<i64>();
        }
        let avg = mag as f64 / (2000.0 * 10.0);
        assert!(avg.abs() < 0.05, "avg magnetization {avg}");
    }

    #[test]
    fn sweep_respects_detailed_balance_on_two_spins() {
        // Empirical check: long single-temperature simulation of a
        // 2-spin ferromagnet samples the Boltzmann distribution.
        let mut p = IsingProblem::new(2);
        p.set_coupling(0, 1, -1.0);
        let beta = 0.8;
        let mut rng = StdRng::seed_from_u64(4);
        let mut spins = vec![1i8, 1];
        let mut aligned = 0usize;
        let iters = 200_000;
        for _ in 0..iters {
            sweep(&p, &mut spins, beta, &mut rng);
            if spins[0] == spins[1] {
                aligned += 1;
            }
        }
        // P(aligned) = 2e^{β}/ (2e^{β} + 2e^{−β}) = 1/(1+e^{−2β}).
        let expect = 1.0 / (1.0 + (-2.0 * beta).exp());
        let got = aligned as f64 / iters as f64;
        assert!((got - expect).abs() < 0.01, "{got} vs {expect}");
    }

    #[test]
    fn deterministic_under_seed() {
        let p = ferro_chain(8);
        let betas: Vec<f64> = (0..20).map(|k| 0.1 * k as f64).collect();
        let a = anneal_once(&p, &betas, &mut StdRng::seed_from_u64(9));
        let b = anneal_once(&p, &betas, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn chain_flip_delta_matches_direct_difference() {
        let mut p = IsingProblem::new(6);
        p.set_linear(0, 0.7);
        p.set_linear(4, -0.9);
        // A path 0-1-2 plus outside couplings.
        p.set_coupling(0, 1, -2.0);
        p.set_coupling(1, 2, -2.0);
        p.set_coupling(2, 3, 0.8);
        p.set_coupling(0, 5, -0.4);
        p.set_coupling(3, 4, 1.1);
        let chain = vec![0usize, 1, 2];
        for k in 0..64u32 {
            let spins: Vec<Spin> = (0..6)
                .map(|i| if (k >> i) & 1 == 1 { 1 } else { -1 })
                .collect();
            let before = p.energy(&spins);
            let mut flipped = spins.clone();
            for &i in &chain {
                flipped[i] = -flipped[i];
            }
            let direct = p.energy(&flipped) - before;
            let fast = chain_flip_delta(&p, &spins, &chain);
            assert!((direct - fast).abs() < 1e-12, "k={k}: {direct} vs {fast}");
        }
    }

    #[test]
    fn chain_moves_cross_locked_barriers() {
        // Two strongly-bound 3-spin chains with a weak antiferromagnetic
        // inter-chain coupling and a small field: single-spin SA at cold
        // temperature gets stuck; chain moves fix it.
        let mut p = IsingProblem::new(6);
        for c in [0usize, 3] {
            p.set_coupling(c, c + 1, -5.0);
            p.set_coupling(c + 1, c + 2, -5.0);
        }
        p.set_coupling(2, 3, 0.5);
        p.set_linear(0, 0.3);
        let chains = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let gs = quamax_ising::exact_ground_state(&p);
        let betas: Vec<f64> = (0..30).map(|k| 0.5 * 1.2f64.powi(k)).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut plain_hits = 0;
        let mut chained_hits = 0;
        // 150 trials: the true rates are ~24% plain vs ~86% chained, so
        // the 75% threshold below sits > 3σ from the chained mean.
        let trials = 150;
        for _ in 0..trials {
            let a = anneal_once(&p, &betas, &mut rng);
            if (p.energy(&a) - gs.energy).abs() < 1e-9 {
                plain_hits += 1;
            }
            let b = anneal_once_chained(&p, &betas, &chains, &mut rng);
            if (p.energy(&b) - gs.energy).abs() < 1e-9 {
                chained_hits += 1;
            }
        }
        assert!(
            chained_hits > plain_hits,
            "chain moves should help: plain {plain_hits} vs chained {chained_hits}"
        );
        assert!(
            chained_hits * 4 >= trials * 3,
            "chained SA should nearly always solve this: {chained_hits}/{trials}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sweep plan")]
    fn empty_plan_panics() {
        let p = ferro_chain(2);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = anneal_once(&p, &[], &mut rng);
    }
}
