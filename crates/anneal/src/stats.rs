//! Solution-distribution statistics over a batch of anneals.
//!
//! A QA run returns `Na` configurations; the paper's analyses (Fig. 4,
//! Eq. 9) work with the induced *ranked solution distribution*:
//! distinct configurations sorted by Ising energy, each with its
//! frequency of occurrence. Tied distinct solutions are kept as
//! separate ranks, as the paper specifies (§5.1).

use quamax_ising::{IsingProblem, Spin};
use std::collections::HashMap;

/// One distinct solution in a ranked distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionEntry {
    /// The spin configuration.
    pub spins: Vec<Spin>,
    /// Its energy under the problem used for ranking.
    pub energy: f64,
    /// How many of the `Na` anneals returned it.
    pub count: usize,
}

/// The ranked empirical solution distribution of one QA run.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionDistribution {
    entries: Vec<SolutionEntry>,
    total: usize,
}

impl SolutionDistribution {
    /// Ranks `samples` by energy under `problem` (ascending).
    ///
    /// The ranking problem is usually the *logical* problem, applied to
    /// unembedded samples — the paper computes solution energies "by
    /// substituting into the original Ising spin glass equation".
    pub fn from_samples(problem: &IsingProblem, samples: &[Vec<Spin>]) -> Self {
        let mut counts: HashMap<&[Spin], usize> = HashMap::new();
        for s in samples {
            *counts.entry(s.as_slice()).or_insert(0) += 1;
        }
        let mut entries: Vec<SolutionEntry> = counts
            .into_iter()
            .map(|(spins, count)| SolutionEntry {
                spins: spins.to_vec(),
                energy: problem.energy(spins),
                count,
            })
            .collect();
        entries.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .expect("finite energies")
                .then_with(|| b.count.cmp(&a.count))
                .then_with(|| a.spins.cmp(&b.spins))
        });
        SolutionDistribution {
            entries,
            total: samples.len(),
        }
    }

    /// Ranked entries, ascending energy (rank 1 first).
    pub fn entries(&self) -> &[SolutionEntry] {
        &self.entries
    }

    /// Number of distinct solutions `L`.
    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total anneals `Na` behind this distribution.
    pub fn total_samples(&self) -> usize {
        self.total
    }

    /// Empirical probability `p(r)` of the rank-`r` solution
    /// (`r` is zero-based here; the paper's `r` is one-based).
    pub fn probability(&self, rank: usize) -> f64 {
        self.entries[rank].count as f64 / self.total as f64
    }

    /// The best (minimum) energy observed.
    pub fn best_energy(&self) -> Option<f64> {
        self.entries.first().map(|e| e.energy)
    }

    /// The best configuration observed — what a QuAMax run decodes to
    /// (§5.2.2: "we return the annealing solution with minimum energy
    /// among all anneals in that run" — this is the `Na → all` limit;
    /// per-run statistics use [`SolutionDistribution::probability`]).
    pub fn best_solution(&self) -> Option<&SolutionEntry> {
        self.entries.first()
    }

    /// Empirical probability that a single anneal lands within `tol`
    /// of `energy` — with `energy` = the exact ground energy this is
    /// the `P0` of the TTS metric (§5.2.1).
    pub fn probability_of_energy(&self, energy: f64, tol: f64) -> f64 {
        let hits: usize = self
            .entries
            .iter()
            .filter(|e| (e.energy - energy).abs() <= tol)
            .map(|e| e.count)
            .sum();
        hits as f64 / self.total as f64
    }

    /// Relative energy gap of each rank to the best observed energy,
    /// `ΔE(r) = (E_r − E_0)/|E_0|` — the blue annotations of Fig. 4.
    pub fn relative_gaps(&self) -> Vec<f64> {
        match self.best_energy() {
            None => Vec::new(),
            Some(e0) => {
                let denom = e0.abs().max(f64::MIN_POSITIVE);
                self.entries
                    .iter()
                    .map(|e| (e.energy - e0) / denom)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> IsingProblem {
        let mut p = IsingProblem::new(2);
        p.set_linear(0, 1.0);
        p.set_linear(1, -0.5);
        p.set_coupling(0, 1, 0.25);
        p
    }

    // Energies: [−1,−1]: −1+0.5+0.25 = −0.25; [−1,+1]: −1−0.5−0.25 = −1.75;
    // [+1,−1]: 1+0.5−0.25 = 1.25; [+1,+1]: 1−0.5+0.25 = 0.75.

    #[test]
    fn ranks_ascending_with_counts() {
        let p = problem();
        let samples = vec![
            vec![1, 1],
            vec![-1, 1],
            vec![-1, 1],
            vec![-1, -1],
            vec![1, -1],
            vec![-1, 1],
        ];
        let d = SolutionDistribution::from_samples(&p, &samples);
        assert_eq!(d.total_samples(), 6);
        assert_eq!(d.num_distinct(), 4);
        let energies: Vec<f64> = d.entries().iter().map(|e| e.energy).collect();
        assert_eq!(energies, vec![-1.75, -0.25, 0.75, 1.25]);
        assert_eq!(d.entries()[0].count, 3);
        assert!((d.probability(0) - 0.5).abs() < 1e-12);
        assert_eq!(d.best_energy(), Some(-1.75));
        assert_eq!(d.best_solution().unwrap().spins, vec![-1, 1]);
    }

    #[test]
    fn probability_of_energy_counts_hits() {
        let p = problem();
        let samples = vec![vec![-1, 1], vec![-1, 1], vec![1, 1], vec![1, -1]];
        let d = SolutionDistribution::from_samples(&p, &samples);
        assert!((d.probability_of_energy(-1.75, 1e-9) - 0.5).abs() < 1e-12);
        assert_eq!(d.probability_of_energy(-99.0, 1e-9), 0.0);
    }

    #[test]
    fn relative_gaps_are_nonnegative_and_start_at_zero() {
        let p = problem();
        let samples = vec![vec![-1, 1], vec![1, 1], vec![1, -1]];
        let d = SolutionDistribution::from_samples(&p, &samples);
        let gaps = d.relative_gaps();
        assert_eq!(gaps.len(), 3);
        assert_eq!(gaps[0], 0.0);
        assert!(gaps.iter().all(|&g| g >= 0.0));
        // (−0.25 … nothing here) second entry: (0.75 − (−1.75))/1.75.
        assert!((gaps[1] - 2.5 / 1.75).abs() < 1e-12);
    }

    #[test]
    fn distinct_solutions_with_equal_energy_stay_separate_ranks() {
        // Field-free two-spin ferromagnet: [−1,−1] and [1,1] tie.
        let mut p = IsingProblem::new(2);
        p.set_coupling(0, 1, -1.0);
        let samples = vec![vec![-1, -1], vec![1, 1], vec![1, 1]];
        let d = SolutionDistribution::from_samples(&p, &samples);
        assert_eq!(d.num_distinct(), 2);
        assert_eq!(d.entries()[0].energy, d.entries()[1].energy);
        // Higher count ranks first among ties.
        assert_eq!(d.entries()[0].count, 2);
    }

    #[test]
    fn empty_run() {
        let d = SolutionDistribution::from_samples(&problem(), &[]);
        assert_eq!(d.num_distinct(), 0);
        assert_eq!(d.best_energy(), None);
        assert!(d.relative_gaps().is_empty());
    }

    #[test]
    fn deterministic_ordering_for_ties() {
        let mut p = IsingProblem::new(2);
        p.set_coupling(0, 1, -1.0);
        let samples_a = vec![vec![-1, -1], vec![1, 1]];
        let samples_b = vec![vec![1, 1], vec![-1, -1]];
        let da = SolutionDistribution::from_samples(&p, &samples_a);
        let db = SolutionDistribution::from_samples(&p, &samples_b);
        assert_eq!(da, db, "sample order must not affect the ranking");
    }
}
