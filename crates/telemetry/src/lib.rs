//! Metrics registry, latency histograms, and a simulated-time span API
//! for the QuAMax pipeline.
//!
//! Every subsystem of the reproduction — decode sessions, the QPU
//! overhead stack, the resilient serving pool, the batch scheduler —
//! models time as explicit simulated microseconds (`*_us`). This crate
//! gives them one shared observability substrate that preserves the
//! property the whole repo is built on: **seeded runs replay bit for
//! bit**, with telemetry on or off.
//!
//! # DESIGN §Observability
//!
//! **Handle model.** [`Telemetry`] is a cheap `Clone` handle over
//! `Option<Arc<Mutex<Registry>>>`. [`Telemetry::disabled`] is the
//! `None` arm: every recording call is a single branch on the `Option`
//! and returns — no allocation, no locking, no formatting. Call sites
//! that must build label strings guard on [`Telemetry::is_enabled`]
//! first, so the disabled path never even formats a label. The handle
//! is `Send + Sync` (the registry sits behind a `Mutex`), which lets
//! `DecodeSession::decode_batch`'s scoped worker threads record into
//! the same registry as the host thread.
//!
//! **No wall-clock, no RNG — the invariant.** This crate imports
//! neither `std::time` nor any random-number source. Spans are keyed
//! on *simulated* time: the caller passes explicit `start_us`/`end_us`
//! taken from the event loop's own clock ([`Telemetry::span_us`]).
//! Recording is strictly read-only with respect to the instrumented
//! computation — no telemetry call feeds a value back into scheduling,
//! retry funding, or an RNG stream. Together these guarantee that a
//! telemetry-enabled run is bit-identical to a disabled one (the PR-6/7
//! `SimReport` equality and Fifo-replays-`submit` contracts survive),
//! and that two identical seeded runs produce byte-identical snapshots.
//!
//! **Metric naming scheme.** `quamax_<subsystem>_<metric>[_<unit>]`,
//! all lowercase snake case: subsystem ∈ {`core`, `qpu`, `serve`,
//! `sched`, `broker`, `cache`, `sim`}; counters end in `_total`;
//! time-valued histograms end in `_us`. Examples:
//! `quamax_qpu_anneal_us`, `quamax_serve_retries_total`,
//! `quamax_sched_batch_occupancy`.
//!
//! **Label cardinality rules.** Labels must come from *bounded* sets
//! known at topology-build time: `direction` ∈ {uplink, downlink},
//! `priority` ∈ {high, normal, low}, `stage`/`trigger`/`class`/`rung`
//! from fixed enums, `cell`/`worker` from the (small) configured
//! topology. Never label by job id, channel hash, timestamp, or any
//! per-event value — those belong in histogram observations, not in
//! series keys. Series are keyed in a `BTreeMap`, so snapshots
//! enumerate in a deterministic (name, labels) order regardless of
//! insertion order.
//!
//! **Histograms.** [`Histogram`] keeps two views of the same data:
//! base-2 log buckets (upper bounds 1, 2, 4, … µs with a saturating
//! `+Inf` overflow bucket) for Prometheus-style exposition, and the
//! exact sample set for quantile extraction. [`Histogram::quantile`]
//! uses the same nearest-rank rule as
//! `quamax_ran::ScheduleReport::latency_quantile_us`
//! (`sort_by(total_cmp)`, index `round((len-1)·q)`, `0.0` when empty),
//! so benches that move their p50/p99/p999 onto the shared histogram
//! report *identical* numbers to the old ad-hoc paths. Snapshot-side
//! aggregates (`sum`) are computed over the *sorted* samples so that
//! multi-threaded recording order cannot perturb floating-point
//! summation.
//!
//! **Exporter formats.** [`TelemetrySnapshot::to_json`] renders the
//! registry to a `serde_json::Value` (written alongside the
//! `BENCH_*.json` artifacts); [`TelemetrySnapshot::to_prometheus`]
//! renders the standard text exposition format (`# TYPE` comments,
//! `_bucket{le="…"}` cumulative buckets, `_sum`/`_count`). Both are
//! deterministic functions of the snapshot.
//!
//! **Snapshot-time publication.** Subsystems that already keep their
//! own always-on counters (`SessionCache` stats, the serving `Ledger`,
//! the broker `Census`, breaker trip counts, fault-class counters)
//! are *published* into the registry at snapshot time via
//! `publish_telemetry(&self, &Telemetry)` methods rather than
//! instrumented event by event — the Prometheus collect-callback
//! pattern. Their original accessors are untouched; the registry view
//! is additive. [`Telemetry::counter_store`] (absolute, last write
//! wins) exists for exactly this use.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: upper bounds `2^0 … 2^38` µs plus the
/// saturating `+Inf` overflow bucket.
pub const NUM_BUCKETS: usize = 40;

/// Upper (inclusive) bound of bucket `i`: `2^i` for the finite
/// buckets, `+Inf` for the last.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if i + 1 == NUM_BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << i) as f64
    }
}

/// A log-bucketed latency histogram that also retains its exact
/// samples, so bucket exposition and exact nearest-rank quantiles come
/// from one recording call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            samples: Vec::new(),
        }
    }

    fn bucket_index(v: f64) -> usize {
        // Walk the power-of-two bounds exactly (no float log), so a
        // value *at* a bucket boundary provably lands in that bucket
        // and anything beyond the last finite bound saturates into
        // the overflow bucket. NaN and v <= 1 land in bucket 0.
        let mut i = 0;
        let mut ub = 1.0;
        while v > ub && i + 1 < NUM_BUCKETS {
            i += 1;
            ub *= 2.0;
        }
        i
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.samples.push(v);
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-bucket (non-cumulative) counts, index ↔ [`bucket_upper_bound`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact nearest-rank quantile over the retained samples — the
    /// same rule as `ScheduleReport::latency_quantile_us`: samples
    /// sorted by `total_cmp`, index `round((len-1)·q)`, `0.0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Sum of all observations, accumulated in sorted order so the
    /// result is independent of (possibly multi-threaded) recording
    /// order.
    pub fn sum(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.iter().sum()
    }

    /// Mean observation (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Smallest observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Largest observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Freezes this histogram into its snapshot form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.samples.len() as u64,
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets: {
                let mut cum = 0;
                self.buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        cum += c;
                        (bucket_upper_bound(i), cum)
                    })
                    .collect()
            },
        }
    }
}

/// One live metric in the registry.
#[derive(Clone, Debug, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type SeriesKey = (String, Vec<(String, String)>);

#[derive(Default)]
struct Registry {
    metrics: BTreeMap<SeriesKey, Metric>,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    (name.to_string(), owned)
}

impl Registry {
    fn entry(&mut self, name: &str, labels: &[(&str, &str)], default: Metric) -> &mut Metric {
        let slot = self
            .metrics
            .entry(series_key(name, labels))
            .or_insert(default);
        slot
    }
}

/// A cheap, cloneable recording handle. Disabled handles make every
/// call a no-op after one `Option` branch; see the crate docs for the
/// determinism contract.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A span's opening timestamp in simulated microseconds (sugar over
/// [`Telemetry::span_us`] for call sites that open and close a stage
/// in different scopes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanStart {
    /// Simulated-time open instant.
    pub at_us: f64,
}

impl Telemetry {
    /// A disabled handle: all recording calls are no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle over a fresh registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// Whether recording calls reach a registry. Call sites that must
    /// format label values should guard on this first so the disabled
    /// path allocates nothing.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().expect("telemetry registry poisoned")))
    }

    /// Adds `delta` to a monotonic counter series.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with(|r| match r.entry(name, labels, Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            m => panic!("{name} is a {}, not a counter", m.kind()),
        });
    }

    /// Increments a counter series by one.
    pub fn counter_inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Stores an *absolute* counter value (last write wins) — the
    /// snapshot-time publication entry for subsystems that keep their
    /// own always-on counters (cache stats, ledgers, fault censuses).
    pub fn counter_store(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.with(|r| match r.entry(name, labels, Metric::Counter(0)) {
            Metric::Counter(c) => *c = value,
            m => panic!("{name} is a {}, not a counter", m.kind()),
        });
    }

    /// Sets a gauge series to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with(|r| match r.entry(name, labels, Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = value,
            m => panic!("{name} is a {}, not a gauge", m.kind()),
        });
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with(
            |r| match r.entry(name, labels, Metric::Histogram(Histogram::new())) {
                Metric::Histogram(h) => h.observe(value),
                m => panic!("{name} is a {}, not a histogram", m.kind()),
            },
        );
    }

    /// Records a completed span as a duration observation
    /// (`end_us - start_us`, clamped at zero) into the histogram
    /// series `name`. Both instants are *simulated* time supplied by
    /// the caller — this crate never reads a clock.
    pub fn span_us(&self, name: &str, labels: &[(&str, &str)], start_us: f64, end_us: f64) {
        self.observe(name, labels, (end_us - start_us).max(0.0));
    }

    /// Opens a span at simulated instant `at_us`.
    pub fn span_begin(&self, at_us: f64) -> SpanStart {
        SpanStart { at_us }
    }

    /// Closes a span opened by [`Telemetry::span_begin`].
    pub fn span_end(&self, span: SpanStart, name: &str, labels: &[(&str, &str)], end_us: f64) {
        self.span_us(name, labels, span.at_us, end_us);
    }

    /// All live histogram series named `name`, merged across label
    /// sets — the per-stage aggregate view (`None` if no such series
    /// exists or the handle is disabled).
    pub fn merged_histogram(&self, name: &str) -> Option<Histogram> {
        self.with(|r| {
            let mut merged: Option<Histogram> = None;
            for ((n, _), m) in &r.metrics {
                if n == name {
                    if let Metric::Histogram(h) = m {
                        merged.get_or_insert_with(Histogram::new).merge(h);
                    }
                }
            }
            merged
        })
        .flatten()
    }

    /// Clears every series (the handle stays enabled).
    pub fn reset(&self) {
        self.with(|r| r.metrics.clear());
    }

    /// Freezes the registry into an immutable, deterministically
    /// ordered snapshot. A disabled handle snapshots empty.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.with(|r| TelemetrySnapshot {
            series: r
                .metrics
                .iter()
                .map(|((name, labels), m)| SeriesSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Gauge(g) => MetricValue::Gauge(*g),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        })
        .unwrap_or_default()
    }
}

/// A frozen histogram: counts, deterministic sum, extrema, exact
/// p50/p99/p999, and cumulative log buckets.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum over sorted samples (recording-order independent).
    pub sum: f64,
    /// Smallest observation (`0.0` when empty).
    pub min: f64,
    /// Largest observation (`0.0` when empty).
    pub max: f64,
    /// Exact nearest-rank median.
    pub p50: f64,
    /// Exact nearest-rank 99th percentile.
    pub p99: f64,
    /// Exact nearest-rank 99.9th percentile.
    pub p999: f64,
    /// `(upper_bound, cumulative_count)` per bucket; the last bound is
    /// `+Inf`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One frozen series: name, sorted labels, and its value.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name (`quamax_<subsystem>_<metric>[_<unit>]`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic (or snapshot-published absolute) count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Frozen histogram.
    Histogram(HistogramSnapshot),
}

/// A deterministic, immutable view of the whole registry, ordered by
/// `(name, labels)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Every live series.
    pub series: Vec<SeriesSnapshot>,
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    let mut want: Vec<(&str, &str)> = want.to_vec();
    want.sort();
    have.len() == want.len()
        && have
            .iter()
            .zip(&want)
            .all(|((hk, hv), &(wk, wv))| hk == wk && hv == wv)
}

impl TelemetrySnapshot {
    /// The series with exactly these name + labels, if present.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        self.series
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
    }

    /// True when at least one series carries this name (any labels).
    pub fn has_series(&self, name: &str) -> bool {
        self.series.iter().any(|s| s.name == name)
    }

    /// Counter value at exactly these labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match s.value {
                MetricValue::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// Gauge value at exactly these labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// Histogram at exactly these labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot as a JSON document:
    /// `{"series": [{"name", "labels", "type", …value fields}]}`.
    pub fn to_json(&self) -> serde_json::Value {
        let series: Vec<serde_json::Value> = self
            .series
            .iter()
            .map(|s| {
                let labels = serde_json::Value::Object(
                    s.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
                        .collect(),
                );
                let mut fields = vec![
                    ("name".to_string(), serde_json::Value::from(s.name.as_str())),
                    ("labels".to_string(), labels),
                ];
                match &s.value {
                    MetricValue::Counter(c) => {
                        fields.push(("type".to_string(), serde_json::Value::from("counter")));
                        fields.push(("value".to_string(), serde_json::Value::from(*c)));
                    }
                    MetricValue::Gauge(g) => {
                        fields.push(("type".to_string(), serde_json::Value::from("gauge")));
                        fields.push(("value".to_string(), serde_json::Value::from(*g)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("type".to_string(), serde_json::Value::from("histogram")));
                        fields.push(("count".to_string(), serde_json::Value::from(h.count)));
                        fields.push(("sum".to_string(), serde_json::Value::from(h.sum)));
                        fields.push(("min".to_string(), serde_json::Value::from(h.min)));
                        fields.push(("max".to_string(), serde_json::Value::from(h.max)));
                        fields.push(("p50".to_string(), serde_json::Value::from(h.p50)));
                        fields.push(("p99".to_string(), serde_json::Value::from(h.p99)));
                        fields.push(("p999".to_string(), serde_json::Value::from(h.p999)));
                        fields.push((
                            "buckets".to_string(),
                            serde_json::Value::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(ub, c)| {
                                        serde_json::Value::Array(vec![
                                            serde_json::Value::from(ub),
                                            serde_json::Value::from(c),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                }
                serde_json::Value::Object(fields)
            })
            .collect();
        serde_json::Value::Object(vec![(
            "series".to_string(),
            serde_json::Value::Array(series),
        )])
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` per metric name, `_bucket{le="…"}`/`_sum`/`_count`
    /// for histograms).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.series {
            if last_name != Some(s.name.as_str()) {
                let kind = match s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", s.name, prom_labels(&s.labels, &[]), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", s.name, prom_labels(&s.labels, &[]), g);
                }
                MetricValue::Histogram(h) => {
                    for &(ub, cum) in &h.buckets {
                        let le = if ub.is_finite() {
                            format!("{ub}")
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            prom_labels(&s.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        prom_labels(&s.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        prom_labels(&s.labels, &[]),
                        h.count
                    );
                }
            }
        }
        out
    }
}

fn prom_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .chain(
            extra
                .iter()
                .map(|&(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))),
        )
        .collect();
    format!("{{{}}}", rendered.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_inc("quamax_test_total", &[]);
        t.observe("quamax_test_us", &[], 5.0);
        t.gauge_set("quamax_test_depth", &[], 1.0);
        assert!(t.snapshot().series.is_empty());
        assert!(t.merged_histogram("quamax_test_us").is_none());
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.buckets.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.observe(17.5);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 17.5);
        }
        assert_eq!(h.min(), 17.5);
        assert_eq!(h.max(), 17.5);
        assert_eq!(h.mean(), 17.5);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // A value exactly at 2^i must land in bucket i (le = 2^i),
        // and the next representable value above must spill into i+1.
        for i in 0..8usize {
            let b = (1u64 << i) as f64;
            let mut h = Histogram::new();
            h.observe(b);
            assert_eq!(h.bucket_counts()[i], 1, "2^{i} belongs to bucket {i}");
            let mut h2 = Histogram::new();
            h2.observe(b * 1.0000001);
            assert_eq!(h2.bucket_counts()[i + 1], 1, "just above 2^{i} spills");
        }
        // Zero, negatives, and NaN all land in the first bucket
        // without panicking.
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.bucket_counts()[0], 3);
    }

    #[test]
    fn overflow_bucket_saturates() {
        let mut h = Histogram::new();
        h.observe(1e300);
        h.observe(f64::INFINITY);
        h.observe(bucket_upper_bound(NUM_BUCKETS - 2) * 2.0);
        assert_eq!(h.bucket_counts()[NUM_BUCKETS - 1], 3);
        let s = h.snapshot();
        assert_eq!(s.buckets.last().unwrap().1, 3);
        assert!(s.buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn quantile_matches_schedule_report_rule() {
        // The exact nearest-rank rule the serving benches used:
        // sorted[round((len-1) * q)].
        let mut h = Histogram::new();
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        for x in xs {
            h.observe(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 0.999, 1.0] {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            assert_eq!(h.quantile(q), sorted[idx]);
        }
    }

    #[test]
    fn sum_is_recording_order_independent() {
        // Same multiset, opposite insertion orders — snapshots must be
        // byte-identical (the threaded decode_batch case).
        let xs = [0.1, 0.2, 0.3, 1e9, 7e-3, 0.2];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for x in xs {
            a.observe(x);
        }
        for x in xs.iter().rev() {
            b.observe(*x);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_is_deterministic_across_identical_runs() {
        let run = || {
            let t = Telemetry::enabled();
            for i in 0..50u64 {
                // A fixed, seedless recording schedule: same series,
                // same values, but *registered* in varying order.
                let cell = format!("{}", i % 3);
                t.counter_inc("quamax_serve_retries_total", &[("cell", &cell)]);
                t.observe(
                    "quamax_qpu_anneal_us",
                    &[("cell", &cell)],
                    (i * 7 % 13) as f64,
                );
                t.gauge_set("quamax_broker_queue_depth", &[("cell", &cell)], i as f64);
            }
            t.snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string_pretty(&a.to_json()).unwrap(),
            serde_json::to_string_pretty(&b.to_json()).unwrap()
        );
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn snapshot_orders_series_deterministically() {
        // Insertion order z-then-a; snapshot must come out sorted.
        let t = Telemetry::enabled();
        t.counter_inc("quamax_z_total", &[]);
        t.counter_inc("quamax_a_total", &[("cell", "1")]);
        t.counter_inc("quamax_a_total", &[("cell", "0")]);
        let s = t.snapshot();
        let names: Vec<(&str, String)> = s
            .series
            .iter()
            .map(|x| (x.name.as_str(), format!("{:?}", x.labels)))
            .collect();
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.counter_total("quamax_a_total"), 2);
        assert_eq!(s.counter("quamax_a_total", &[("cell", "1")]), Some(1));
    }

    #[test]
    fn span_api_records_simulated_durations() {
        let t = Telemetry::enabled();
        t.span_us("quamax_qpu_program_us", &[], 100.0, 140.0);
        let sp = t.span_begin(200.0);
        t.span_end(sp, "quamax_qpu_program_us", &[], 260.0);
        // A span that closes "before" it opens clamps to zero rather
        // than recording a negative duration.
        t.span_us("quamax_qpu_program_us", &[], 10.0, 5.0);
        let h = t.merged_histogram("quamax_qpu_program_us").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 60.0);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn merged_histogram_spans_label_sets() {
        let t = Telemetry::enabled();
        t.observe("quamax_qpu_anneal_us", &[("cell", "0")], 1.0);
        t.observe("quamax_qpu_anneal_us", &[("cell", "1")], 3.0);
        let m = t.merged_histogram("quamax_qpu_anneal_us").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.quantile(1.0), 3.0);
    }

    #[test]
    fn counter_store_publishes_absolute_values() {
        let t = Telemetry::enabled();
        t.counter_store("quamax_cache_hits_total", &[], 5);
        t.counter_store("quamax_cache_hits_total", &[], 9);
        assert_eq!(
            t.snapshot().counter("quamax_cache_hits_total", &[]),
            Some(9)
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let t = Telemetry::enabled();
        t.counter_inc("quamax_serve_retries_total", &[("outcome", "funded")]);
        t.observe("quamax_qpu_anneal_us", &[], 3.0);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE quamax_qpu_anneal_us histogram"));
        assert!(text.contains("quamax_qpu_anneal_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("quamax_qpu_anneal_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("quamax_qpu_anneal_us_sum 3"));
        assert!(text.contains("quamax_qpu_anneal_us_count 1"));
        assert!(text.contains("# TYPE quamax_serve_retries_total counter"));
        assert!(text.contains("quamax_serve_retries_total{outcome=\"funded\"} 1"));
    }

    #[test]
    fn json_export_carries_required_fields() {
        let t = Telemetry::enabled();
        t.observe("quamax_qpu_anneal_us", &[("cell", "0")], 3.0);
        t.counter_inc("quamax_serve_retries_total", &[]);
        let js = serde_json::to_string_pretty(&t.snapshot().to_json()).unwrap();
        assert!(js.contains("\"name\": \"quamax_qpu_anneal_us\""));
        assert!(js.contains("\"type\": \"histogram\""));
        assert!(js.contains("\"p99\""));
        assert!(js.contains("\"cell\": \"0\""));
        assert!(js.contains("\"type\": \"counter\""));
    }

    #[test]
    fn cross_thread_recording_merges_deterministically() {
        // Two threads each record a fixed disjoint schedule; the final
        // snapshot must not depend on interleaving.
        let run = || {
            let t = Telemetry::enabled();
            std::thread::scope(|s| {
                for half in 0..2u64 {
                    let t = t.clone();
                    s.spawn(move || {
                        for i in 0..100u64 {
                            t.observe("quamax_qpu_anneal_us", &[], (half * 100 + i) as f64);
                            t.counter_inc("quamax_core_unembed_total", &[]);
                        }
                    });
                }
            });
            t.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn type_confusion_panics() {
        let t = Telemetry::enabled();
        t.counter_inc("quamax_x_total", &[]);
        t.observe("quamax_x_total", &[], 1.0);
    }
}
