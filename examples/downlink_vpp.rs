//! Downlink vector-perturbation precoding through the registry API.
//!
//! The uplink story inverts: the data center now *transmits*. Zero-
//! forcing pre-inverts the channel (`x = Pu`), but on an
//! ill-conditioned `H` that inversion amplifies transmit power — the
//! downlink twin of ZF's noise amplification. VPP (Hochwald et al.)
//! searches a perturbation `v ∈ ℤ²` per user, sending `x = P(u + τv)`
//! so receivers recover `u` with a cheap modulo fold; minimizing
//! `‖P(u + τv)‖²` over the integer lattice is NP-hard — and maps onto
//! the same annealer QuAMax uses for detection (`quamax_core::precode`
//! mirrors `detect`: compile once per coherence interval, precode per
//! symbol vector, reverse-anneal to refine from a classical seed).
//!
//! Run: `cargo run --release --example downlink_vpp`

use quamax::anneal::IceModel;
use quamax::prelude::*;
use quamax::wireless::rayleigh_channel;

fn main() {
    let users = 4usize;
    let modulation = Modulation::Qpsk;
    let mut rng = Rng::seed_from_u64(2_019);

    // One coherence interval: a 4x4 Rayleigh channel. Square draws are
    // routinely ill-conditioned — exactly where perturbation pays.
    let input = PrecodeInput {
        h: rayleigh_channel(users, users, &mut rng),
        modulation,
    };

    // The registry, mirroring DetectorKind: classical baselines and
    // the annealed backend behind one trait.
    let annealer = Annealer::new(AnnealerConfig {
        ice: IceModel::none(),
        sweeps_per_us: 50.0,
        ..Default::default()
    });
    let vpp = PrecoderKind::vpp(
        annealer,
        DecoderConfig {
            schedule: Schedule::standard(10.0),
            ..Default::default()
        },
        20,
        1, // t = 1: one magnitude bit + sign per real dimension
    );
    let kinds = [
        PrecoderKind::zf(),
        PrecoderKind::thp(),
        vpp.clone(),
        // Residual-gated router: annealed VPP answers, ZF only if the
        // perturbed power somehow exceeds the per-antenna budget.
        PrecoderKind::hybrid(vpp, PrecoderKind::zf(), PrecodePolicy::new(50.0)),
    ];

    // The same symbol stream through every backend: precoding power is
    // the figure of merit — it scales the transmitter's effective
    // noise, so lower power is lower BER at the receivers.
    let symbols: Vec<CVector> = (0..6)
        .map(|_| {
            let bits: Vec<u8> = (0..input.num_bits())
                .map(|_| rand::Rng::random_range(&mut rng, 0..2))
                .collect();
            modulation.map_gray_vector(&bits)
        })
        .collect();

    println!("downlink {users}x{users} QPSK, one coherence interval, 6 symbol vectors:\n");
    println!("{:<10} {:>14} {:>22}", "backend", "mean power", "vs ZF");
    let mut zf_power = None;
    for kind in &kinds {
        let mut session = kind.compile(&input).expect("well-conditioned draw");
        let mean: f64 = symbols
            .iter()
            .enumerate()
            .map(|(k, u)| session.precode(u, k as u64).expect("precodes").power)
            .sum::<f64>()
            / symbols.len() as f64;
        let vs = match zf_power {
            None => {
                zf_power = Some(mean);
                "1.000x (baseline)".to_string()
            }
            Some(zf) => format!("{:.3}x", mean / zf),
        };
        println!("{:<10} {:>14.3} {:>22}", kind.name(), mean, vs);
    }

    println!(
        "\nEvery backend sends a vector the receivers fold mod τ = {} back\n\
         to the constellation; only the transmit power differs. The\n\
         annealed search never does worse than ZF (v = 0 is always a\n\
         candidate), and on ill-conditioned intervals the integer\n\
         perturbation collapses the inversion blow-up — the downlink\n\
         counterpart of Fig. 10's detection gains, riding the same\n\
         compile-once session, batch, and reverse-anneal machinery.",
        tau_for(modulation),
    );
}
