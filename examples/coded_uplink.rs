//! Coded uplink: forward error correction above QuAMax detection.
//!
//! The paper's §5.3.3 design point: set a decode deadline, accept a
//! residual BER from the annealer, and let FEC drive it down. This
//! example transmits a convolutionally-coded, block-interleaved frame
//! (rate-1/2 K=7 — the 802.11 code) across many channel uses, decodes
//! each use with a *deliberately small* anneal budget, and shows the
//! Viterbi decoder mopping up the annealer's residual errors. The
//! interleaver matters: detection failures are bursty (one bad channel
//! use corrupts a whole symbol vector), and convolutional codes only
//! correct scattered errors.
//!
//! Run: `cargo run --release --example coded_uplink`

use quamax::prelude::*;
use quamax_core::scenario::Instance;
use quamax_wireless::coding::BlockInterleaver;
use quamax_wireless::{count_bit_errors, rayleigh_channel, ConvolutionalCode};
use rand::Rng as _;

fn main() {
    let mut rng = Rng::seed_from_u64(80211);
    let users = 16usize;
    let modulation = Modulation::Qpsk;
    let snr = Snr::from_db(11.0); // noisy enough for residual errors
    let code = ConvolutionalCode;
    let per_use = users * modulation.bits_per_symbol(); // 32 bits/use

    // A 461-bit payload → 934 coded bits → pad to 960 = 32 uses × 30
    // rows… choose geometry so the interleaver block is a whole number
    // of channel uses: 30 uses × 32 bits = 960.
    let payload: Vec<u8> = (0..466).map(|_| rng.random_range(0..=1) as u8).collect();
    let mut coded = code.encode(&payload); // 944 bits
    coded.resize(960, 0);
    let interleaver = BlockInterleaver::new(per_use, coded.len() / per_use);
    let tx_stream = interleaver.interleave(&coded);

    // Small anneal budget = deliberately imperfect detection.
    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());
    let anneals = 5;

    let mut rx_stream = Vec::with_capacity(tx_stream.len());
    let mut raw_errors = 0usize;
    for chunk in tx_stream.chunks(per_use) {
        let h = rayleigh_channel(users, users, &mut rng);
        let inst = Instance::transmit(h, chunk.to_vec(), modulation, Some(snr), &mut rng);
        let run = decoder
            .decode(&inst.detection_input(), anneals, &mut rng)
            .unwrap();
        let bits = run.best_bits();
        raw_errors += count_bit_errors(&bits, chunk);
        rx_stream.extend(bits);
    }

    let deinterleaved = interleaver.deinterleave(&rx_stream);
    let decoded = code.decode(&deinterleaved[..code.coded_len(payload.len())]);
    let residual = count_bit_errors(&decoded, &payload);

    println!(
        "{} channel uses of {users}x{users} {} at {snr}, {anneals} anneals each:",
        tx_stream.len() / per_use,
        modulation.name()
    );
    println!(
        "  detector (uncoded) bit errors   : {raw_errors}/{} (BER {:.2e})",
        tx_stream.len(),
        raw_errors as f64 / tx_stream.len() as f64
    );
    println!(
        "  after deinterleave + Viterbi    : {residual}/{} (BER {:.2e})",
        payload.len(),
        residual as f64 / payload.len() as f64
    );
    println!(
        "\nFEC + interleaving turn the annealer's bursty residual errors into\n\
         clean frames — the layering the paper's deadline-then-discard design\n\
         assumes (§5.3.3)."
    );
    assert_eq!(residual, 0, "the coded frame should decode cleanly");
}
