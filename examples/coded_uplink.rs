//! Coded uplink: iterative detection–decoding above *soft-output*
//! QuAMax detection.
//!
//! The paper's §5.3.3 design point — set a decode deadline, accept a
//! residual BER from the annealer, let FEC drive it down — plus the
//! loop the ROADMAP asked for: the SISO decoder's extrinsic output
//! travels back to the detector as priors, and QuAMax *reverse-
//! anneals* from the decoder's current decision (the Fig. 15
//! warm-start structure). This example transmits convolutionally-coded,
//! block-interleaved frames (rate-1/2 K=7 — the 802.11 code) with a
//! *deliberately small* anneal budget and prints coded BER per IDD
//! iteration: whatever separates the columns is what feeding the
//! decoder back into the annealer buys.
//!
//! Run: `cargo run --release --example coded_uplink`

use quamax::prelude::*;

fn main() {
    let users = 16usize;
    let modulation = Modulation::Qpsk;
    // 466-bit payloads → 944 coded bits → padded to 30 uses × 32 bits.
    let frame = CodedFrame::new(users, modulation, 466);
    let frames_per_point = 4usize;
    let max_iters = 3usize;

    // Small anneal budget at a starved sweep density = a hard decode
    // deadline: detection is deliberately imperfect, FEC's problem now.
    let anneals = 3;
    let kind = DetectorKind::quamax(
        Annealer::dw2q(AnnealerConfig {
            sweeps_per_us: 10.0,
            ..Default::default()
        }),
        DecoderConfig::default(),
        anneals,
    );
    let idd = IddSpec::new(max_iters);

    println!(
        "{} coded frames per SNR, {} uses of {users}x{users} {} each, {anneals} anneals per use, up to {max_iters} IDD iterations:\n",
        frames_per_point,
        frame.uses(),
        modulation.name()
    );
    println!(
        "{:>6} {:>14} {:>13} {:>13} {:>13} {:>11}",
        "SNR", "detector BER", "iter 1 BER", "iter 2 BER", "iter 3 BER", "mean iters"
    );

    let mut rng = Rng::seed_from_u64(80211);
    let mut worst_first = 0usize;
    let mut worst_final = 0usize;
    let mut clean_final_errors = usize::MAX;
    for snr_db in [2.0, 4.0, 8.0] {
        let snr = Snr::from_db(snr_db);
        let spec = SoftSpec::noise_matched(snr, modulation);
        let (mut raw, mut raw_bits, mut iters_run) = (0usize, 0usize, 0usize);
        let mut errors_at = vec![0usize; max_iters];
        for k in 0..frames_per_point {
            let payload = frame.random_payload(&mut rng);
            let out = frame
                .run_idd(&kind, spec, idd, snr, &payload, 80211 + k as u64)
                .expect("16-user QPSK embeds on the chip");
            raw += out.iterations[0].raw_errors;
            raw_bits += out.raw_bits;
            iters_run += out.iters_run();
            for (it, slot) in errors_at.iter_mut().enumerate() {
                *slot += out.payload_errors_at(it);
            }
        }
        let payload_bits = frames_per_point * frame.payload_len();
        println!(
            "{snr_db:>4}dB {:>14.2e} {:>13.2e} {:>13.2e} {:>13.2e} {:>11.2}",
            raw as f64 / raw_bits as f64,
            errors_at[0] as f64 / payload_bits as f64,
            errors_at[1] as f64 / payload_bits as f64,
            errors_at[2] as f64 / payload_bits as f64,
            iters_run as f64 / frames_per_point as f64,
        );
        if snr_db == 2.0 {
            worst_first = errors_at[0];
            worst_final = errors_at[max_iters - 1];
        }
        clean_final_errors = errors_at[max_iters - 1]; // last (cleanest) SNR
    }

    println!(
        "\nEach iteration beyond the first re-detects every channel use with the\n\
         SISO decoder's extrinsic as priors — QuAMax reverse-anneals from the\n\
         decoder's current decision instead of annealing from scratch, so the\n\
         extra ensembles concentrate exactly where the code still hesitates."
    );
    assert!(
        worst_final <= worst_first,
        "iterating must not lose to the single pass: {worst_final} vs {worst_first}"
    );
    assert_eq!(
        clean_final_errors, 0,
        "the iterated pipeline should deliver clean frames at the top SNR"
    );
}
