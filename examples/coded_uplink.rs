//! Coded uplink: forward error correction above *soft-output* QuAMax
//! detection.
//!
//! The paper's §5.3.3 design point: set a decode deadline, accept a
//! residual BER from the annealer, and let FEC drive it down. This
//! example transmits convolutionally-coded, block-interleaved frames
//! (rate-1/2 K=7 — the 802.11 code) and decodes each channel use with
//! a *deliberately small* anneal budget through the soft detection
//! pipeline: the ranked anneal ensemble is list-demapped into per-bit
//! LLRs, the LLRs ride the deinterleaver, and the Viterbi decoder runs
//! soft-input — with the hard-input path (same detections, reliability
//! thrown away) alongside for comparison. The gap between the two
//! columns is pure reliability information: the annealer tells the
//! code *which* of its answers to distrust.
//!
//! Run: `cargo run --release --example coded_uplink`

use quamax::prelude::*;

fn main() {
    let users = 16usize;
    let modulation = Modulation::Qpsk;
    // 466-bit payloads → 944 coded bits → padded to 30 uses × 32 bits.
    let frame = CodedFrame::new(users, modulation, 466);
    let frames_per_point = 4usize;

    // Small anneal budget at a starved sweep density = a hard decode
    // deadline: detection is deliberately imperfect, FEC's problem now.
    let anneals = 4;
    let kind = DetectorKind::quamax(
        Annealer::dw2q(AnnealerConfig {
            sweeps_per_us: 10.0,
            ..Default::default()
        }),
        DecoderConfig::default(),
        anneals,
    );

    println!(
        "{} coded frames per SNR, {} uses of {users}x{users} {} each, {anneals} anneals per use:\n",
        frames_per_point,
        frame.uses(),
        modulation.name()
    );
    println!(
        "{:>6} {:>14} {:>16} {:>16}",
        "SNR", "detector BER", "hard-input BER", "soft-input BER"
    );

    let mut rng = Rng::seed_from_u64(80211);
    let mut worst_hard = 0usize;
    let mut worst_soft = 0usize;
    let mut clean_soft_errors = usize::MAX;
    for snr_db in [5.0, 8.0, 12.0] {
        let snr = Snr::from_db(snr_db);
        let spec = SoftSpec::noise_matched(snr, modulation);
        let (mut raw, mut raw_bits, mut hard, mut soft) = (0usize, 0usize, 0usize, 0usize);
        for k in 0..frames_per_point {
            let payload = frame.random_payload(&mut rng);
            let out = frame
                .run(&kind, spec, snr, &payload, 80211 + k as u64)
                .expect("16-user QPSK embeds on the chip");
            raw += out.raw_errors;
            raw_bits += out.raw_bits;
            hard += out.hard_errors;
            soft += out.soft_errors;
        }
        let payload_bits = frames_per_point * frame.payload_len();
        println!(
            "{snr_db:>4}dB {:>14.2e} {:>16.2e} {:>16.2e}",
            raw as f64 / raw_bits as f64,
            hard as f64 / payload_bits as f64,
            soft as f64 / payload_bits as f64,
        );
        if snr_db == 5.0 {
            worst_hard = hard;
            worst_soft = soft;
        }
        clean_soft_errors = soft; // last (cleanest) SNR's soft errors
    }

    println!(
        "\nSame detections feed both Viterbi columns — only the LLRs differ.\n\
         The soft column is the layering §5.3.3 assumes, upgraded: the anneal\n\
         ensemble prices each bit's reliability, so FEC spends its power where\n\
         the annealer actually hesitated."
    );
    assert!(
        worst_soft <= worst_hard,
        "soft-input decoding must not lose to hard-input: {worst_soft} vs {worst_hard}"
    );
    assert_eq!(
        clean_soft_errors, 0,
        "the soft pipeline should deliver clean frames at the top SNR"
    );
}
