//! Quickstart: decode an uplink MIMO coherence interval with QuAMax.
//!
//! Eight single-antenna users transmit QPSK symbols to an 8-antenna
//! access point at 25 dB SNR. The channel `H` is constant over a
//! coherence interval, so the receiver **compiles once** — ML→Ising
//! reduction structure, Chimera embedding, annealer problem freeze —
//! and then streams every received vector of the interval through the
//! compiled [`DecodeSession`].
//!
//! Run: `cargo run --release --example quickstart`

use quamax::prelude::*;
use quamax_wireless::count_bit_errors;

fn main() {
    let mut rng = Rng::seed_from_u64(2019); // SIGCOMM '19

    // The scenario: 8 users, 8 AP antennas, QPSK, random-phase unit-
    // gain channel with AWGN at 25 dB.
    let scenario = Scenario::new(8, 8, Modulation::Qpsk).with_snr(Snr::from_db(25.0));
    let interval = scenario.sample(&mut rng);
    println!(
        "coherence interval: {} users, {}x{} channel, {} bits per use at {}",
        8,
        8,
        8,
        interval.tx_bits().len(),
        interval.snr().unwrap(),
    );

    // The machine: a DW2Q-like annealer with the calibrated noise
    // model, and the paper's selected operating point (improved range,
    // J_F = 4, 1 µs anneal + 1 µs pause).
    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());

    // Compile once per coherence interval: the couplings (and the
    // embedding they determine) depend only on H; per-decode work is an
    // in-place field refresh plus the anneal batch.
    let mut session: DecodeSession = decoder
        .compile(&interval.detection_input())
        .expect("8-user QPSK fits the 2000Q");
    println!(
        "compiled session: {} logical vars on {} physical qubits, {} copies tile the chip",
        session.num_logical(),
        session.num_physical(),
        session.parallel_factor(),
    );

    // Decode the interval's channel uses through the session: the
    // sampled use plus two more with fresh payloads and noise.
    let mut uses = vec![interval.clone()];
    for _ in 0..2 {
        uses.push(interval.renoise(Snr::from_db(25.0), &mut rng));
    }
    let mut last_run = None;
    for (k, inst) in uses.iter().enumerate() {
        let run = session.decode(inst.y(), 200, 42 + k as u64);
        let decoded = run.best_bits();
        let errors = count_bit_errors(&decoded, inst.tx_bits());
        println!(
            "use {k}: decoded {} bits with {errors} errors ({} distinct solutions, \
             {:.1}% of chains broke)",
            decoded.len(),
            run.distribution().num_distinct(),
            100.0 * run.chain_break_fraction(),
        );
        assert_eq!(errors, 0, "at 25 dB these decodes should be clean");
        last_run = Some((run, inst));
    }

    // The paper's metrics: how long would this take on the wire?
    let (run, inst) = last_run.expect("decoded at least one use");
    let stats = RunStatistics::from_run(&run, inst.tx_bits(), None);
    println!(
        "per-anneal ground-state probability P0 = {:.3}; \
         one anneal cycle = {} µs; {} copies fit the chip in parallel",
        stats.p0,
        run.anneal_cycle_us(),
        run.parallel_factor(),
    );
    match stats.ttb_us(1e-6) {
        Some(t) => println!("Time-to-BER(1e-6) = {t:.1} µs (amortized)"),
        None => println!("BER 1e-6 not reachable from this run"),
    }
}
