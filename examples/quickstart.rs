//! Quickstart: decode one uplink MIMO channel use with QuAMax.
//!
//! Eight single-antenna users transmit QPSK symbols to an 8-antenna
//! access point at 25 dB SNR. The receiver reduces ML detection to an
//! Ising problem, embeds it on the (simulated) D-Wave 2000Q, runs a
//! batch of anneals, and reads the bits back out.
//!
//! Run: `cargo run --release --example quickstart`

use quamax::prelude::*;
use quamax_wireless::count_bit_errors;

fn main() {
    let mut rng = Rng::seed_from_u64(2019); // SIGCOMM '19

    // The scenario: 8 users, 8 AP antennas, QPSK, random-phase unit-
    // gain channel with AWGN at 25 dB.
    let scenario = Scenario::new(8, 8, Modulation::Qpsk).with_snr(Snr::from_db(25.0));
    let instance = scenario.sample(&mut rng);
    println!(
        "transmitting {} bits from {} users over a {}x{} channel at {}",
        instance.tx_bits().len(),
        8,
        8,
        8,
        instance.snr().unwrap(),
    );

    // The machine: a DW2Q-like annealer with the calibrated noise
    // model, and the paper's selected operating point (improved range,
    // J_F = 4, 1 µs anneal + 1 µs pause).
    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());

    // One QA run: 200 anneals.
    let run = decoder
        .decode(&instance.detection_input(), 200, &mut rng)
        .expect("8-user QPSK fits the 2000Q");

    let decoded = run.best_bits();
    let errors = count_bit_errors(&decoded, instance.tx_bits());
    println!(
        "decoded {} bits with {} errors ({} distinct solutions observed, \
         {:.1}% of chains broke)",
        decoded.len(),
        errors,
        run.distribution().num_distinct(),
        100.0 * run.chain_break_fraction(),
    );

    // The paper's metrics: how long would this take on the wire?
    let stats = RunStatistics::from_run(&run, instance.tx_bits(), None);
    println!(
        "per-anneal ground-state probability P0 = {:.3}; \
         one anneal cycle = {} µs; {} copies fit the chip in parallel",
        stats.p0,
        run.anneal_cycle_us(),
        run.parallel_factor(),
    );
    match stats.ttb_us(1e-6) {
        Some(t) => println!("Time-to-BER(1e-6) = {t:.1} µs (amortized)"),
        None => println!("BER 1e-6 not reachable from this run"),
    }
    assert_eq!(errors, 0, "at 25 dB this decode should be clean");
}
