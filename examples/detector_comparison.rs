//! Detector shoot-out: ZF vs MMSE vs Sphere (exact ML) vs QuAMax on
//! poorly-conditioned channels — the paper's Fig. 14 argument in
//! miniature.
//!
//! At `Nt = Nr` and moderate SNR, linear filters amplify noise on
//! near-singular channels; ML detection (sphere, or QuAMax's annealed
//! approximation of it) keeps working.
//!
//! Run: `cargo run --release --example detector_comparison`

use quamax::prelude::*;
use quamax_baselines::timing::{sphere_time_us, zf_time_us};
use quamax_wireless::count_bit_errors;

fn main() {
    let mut rng = Rng::seed_from_u64(14);
    let users = 12usize;
    let modulation = Modulation::Qpsk;
    let trials = 40usize;
    let anneals = 150usize;

    let machine = Annealer::dw2q(AnnealerConfig::default());
    let quamax = QuamaxDecoder::new(machine, DecoderConfig::default());
    let sphere = SphereDecoder::new(modulation);
    let zf = ZeroForcingDetector::new(modulation);

    println!(
        "{users}x{users} {} over Rayleigh fading, {trials} channel uses:\n",
        modulation.name()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "SNR", "ZF", "MMSE", "Sphere(ML)", "QuAMax"
    );
    for snr_db in [8.0, 12.0, 16.0, 20.0] {
        let snr = Snr::from_db(snr_db);
        let sigma2 = snr.noise_variance(modulation);
        let mmse = MmseDetector::new(modulation, sigma2);
        let mut errs = [0usize; 4];
        let mut bits = 0usize;
        let mut sphere_nodes = 0u64;
        for _ in 0..trials {
            let sc = Scenario::new(users, users, modulation)
                .with_rayleigh()
                .with_snr(snr);
            let inst = sc.sample(&mut rng);
            let tx = inst.tx_bits();
            bits += tx.len();
            if let Ok(b) = zf.decode(inst.h(), inst.y()) {
                errs[0] += count_bit_errors(&b, tx);
            } else {
                errs[0] += tx.len() / 2;
            }
            if let Ok(b) = mmse.decode(inst.h(), inst.y()) {
                errs[1] += count_bit_errors(&b, tx);
            } else {
                errs[1] += tx.len() / 2;
            }
            let s = sphere.decode(inst.h(), inst.y()).expect("non-degenerate");
            sphere_nodes += s.visited_nodes;
            errs[2] += count_bit_errors(&s.bits, tx);
            let run = quamax
                .decode(&inst.detection_input(), anneals, &mut rng)
                .unwrap();
            errs[3] += count_bit_errors(&run.best_bits(), tx);
        }
        let ber = |e: usize| e as f64 / bits as f64;
        println!(
            "{snr_db:>4}dB {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e}",
            ber(errs[0]),
            ber(errs[1]),
            ber(errs[2]),
            ber(errs[3]),
        );
        if snr_db == 12.0 {
            println!(
                "       (paper-era single-core times: ZF ≈ {:.0} µs, sphere ≈ {:.0} µs/subcarrier)",
                zf_time_us(users, users, 1),
                sphere_time_us(sphere_nodes / trials as u64)
            );
        }
    }
    println!("\nML-class detectors hold their BER as conditioning worsens; linear filters pay.");
}
