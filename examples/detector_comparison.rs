//! Detector shoot-out through the unified `Detector` trait API: ZF vs
//! MMSE vs Sphere (exact ML) vs QuAMax vs the hybrid classical–quantum
//! router, on poorly-conditioned channels — the paper's Fig. 14
//! argument plus the HotNets '20 routing structure, in miniature.
//!
//! Every backend is a [`DetectorKind`] value from the registry: the
//! sweep below does not know (or care) which detector is quantum — it
//! compiles a session per channel and streams `detect(&y, seed)`
//! through it. At `Nt = Nr` and moderate SNR, linear filters amplify
//! noise on near-singular channels; ML-class detection (sphere, or
//! QuAMax's annealed approximation) keeps working; the hybrid router
//! gets ML-class BER while sending only the residual-flagged fraction
//! of problems to the annealer.
//!
//! Run: `cargo run --release --example detector_comparison --
//!       [--trials N] [--anneals N]`

use quamax::prelude::*;
use quamax_baselines::timing::{sphere_time_us, zf_time_us};
use quamax_core::BackendStats;
use quamax_wireless::count_bit_errors;

fn main() {
    // Tiny --key value parser (the bench crate's Args is not a
    // dependency of the facade examples).
    let argv: Vec<String> = std::env::args().collect();
    let get = |key: &str, default: usize| -> usize {
        argv.iter()
            .position(|a| a == &format!("--{key}"))
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let trials = get("trials", 40);
    let anneals = get("anneals", 150);

    let mut rng = Rng::seed_from_u64(14);
    let users = 12usize;
    let modulation = Modulation::Qpsk;

    println!(
        "{users}x{users} {} over Rayleigh fading, {trials} channel uses (trait API):\n",
        modulation.name()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "SNR", "ZF", "MMSE", "Sphere(ML)", "QuAMax", "Hybrid", "fallback%"
    );
    for snr_db in [8.0, 12.0, 16.0, 20.0] {
        let snr = Snr::from_db(snr_db);
        let sigma2 = snr.noise_variance(modulation);
        let quamax = || {
            DetectorKind::quamax(
                Annealer::dw2q(AnnealerConfig::default()),
                DecoderConfig::default(),
                anneals,
            )
        };
        // The registry: every backend (and the router over two of
        // them) is just a value in this list.
        let kinds: Vec<(&str, DetectorKind)> = vec![
            ("ZF", DetectorKind::zf()),
            ("MMSE", DetectorKind::mmse(sigma2)),
            ("Sphere(ML)", DetectorKind::sphere()),
            ("QuAMax", quamax()),
            (
                "Hybrid",
                DetectorKind::hybrid(
                    DetectorKind::mmse(sigma2),
                    quamax(),
                    RoutePolicy::noise_matched(snr, modulation, 3.0),
                ),
            ),
        ];

        let mut errs = vec![0usize; kinds.len()];
        let mut bits = 0usize;
        let mut sphere_nodes = 0u64;
        let mut fallbacks = 0usize;
        for trial in 0..trials {
            let sc = Scenario::new(users, users, modulation)
                .with_rayleigh()
                .with_snr(snr);
            let inst = sc.sample(&mut rng);
            let input = inst.detection_input();
            let tx = inst.tx_bits();
            bits += tx.len();
            let seed = 1_000 * snr_db as u64 + trial as u64;
            for (k, (_, kind)) in kinds.iter().enumerate() {
                match kind.compile(&input) {
                    Ok(mut session) => {
                        let det = session.detect(&input.y, seed).expect("detect");
                        errs[k] += count_bit_errors(&det.bits, tx);
                        if let BackendStats::Sphere { visited_nodes } = det.stats {
                            sphere_nodes += visited_nodes;
                        }
                        if det.route() == Some(quamax_core::Route::Fallback) {
                            fallbacks += 1;
                        }
                    }
                    // Rank-deficient draw: a linear filter refuses;
                    // score a coin-flip payload like the paper's BER
                    // floor convention.
                    Err(_) => errs[k] += tx.len() / 2,
                }
            }
        }
        let ber = |e: usize| e as f64 / bits as f64;
        println!(
            "{snr_db:>4}dB {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e} {:>9.0}%",
            ber(errs[0]),
            ber(errs[1]),
            ber(errs[2]),
            ber(errs[3]),
            ber(errs[4]),
            100.0 * fallbacks as f64 / trials as f64,
        );
        if snr_db == 12.0 {
            println!(
                "       (paper-era single-core times: ZF ≈ {:.0} µs, sphere ≈ {:.0} µs/subcarrier)",
                zf_time_us(users, users, 1),
                sphere_time_us(sphere_nodes / trials as u64)
            );
        }
    }
    println!(
        "\nML-class detectors hold their BER as conditioning worsens; linear filters pay.\n\
         The hybrid router matches ML-class BER while annealing only its fallback%."
    );
}
