//! Trace-driven decoding: the §5.5 protocol on the synthetic
//! Argos-like channel trace.
//!
//! Draws channel uses from a 96-antenna / 8-user geometric-scattering
//! trace, subsamples 8 base-station antennas per use (as the paper
//! does), and decodes BPSK and QPSK uplinks, reporting per-use BER
//! and the TTB distribution.
//!
//! Run: `cargo run --release --example trace_driven`

use quamax::core::metrics::percentile;
use quamax::core::scenario::Instance;
use quamax::prelude::*;
use quamax::wireless::{TraceConfig, TraceGenerator};
use quamax_wireless::count_bit_errors;
use rand::Rng as _;

fn main() {
    let mut rng = Rng::seed_from_u64(96);
    let mut tracegen = TraceGenerator::new(TraceConfig::default(), &mut rng);
    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());
    let uses = 12usize;
    let anneals = 400usize;

    for modulation in [Modulation::Bpsk, Modulation::Qpsk] {
        let mut errors = 0usize;
        let mut bits = 0usize;
        let mut ttbs = Vec::new();
        for _ in 0..uses {
            let use_ = tracegen.next_use(&mut rng);
            let h = use_.subsample(8, &mut rng);
            let payload: Vec<u8> = (0..8 * modulation.bits_per_symbol())
                .map(|_| rng.random_range(0..=1) as u8)
                .collect();
            let inst = Instance::transmit(
                h,
                payload,
                modulation,
                Some(Snr::from_db(use_.snr_db)),
                &mut rng,
            );
            let run = decoder
                .decode(&inst.detection_input(), anneals, &mut rng)
                .unwrap();
            errors += count_bit_errors(&run.best_bits(), inst.tx_bits());
            bits += inst.tx_bits().len();
            let stats = RunStatistics::from_run(&run, inst.tx_bits(), None);
            ttbs.push(stats.ttb_us(1e-6).unwrap_or(f64::INFINITY));
        }
        let med = percentile(&ttbs, 50.0);
        println!(
            "{:<5} 8x8 trace ({uses} uses): BER {:.2e} | median TTB(1e-6) {}",
            modulation.name(),
            errors as f64 / bits as f64,
            if med.is_finite() {
                format!("{med:.1} µs")
            } else {
                "∞".into()
            },
        );
    }
    println!("\n(the paper reports ≈2 µs BPSK amortized / 2–10 µs QPSK on the measured trace)");
}
