//! C-RAN deployment study: can QA decoding meet wireless deadlines?
//!
//! Models the paper's §7 discussion quantitatively: several access
//! points forward uplink frames over fronthaul to a data center that
//! decodes them either on a QPU (with today's overhead stack, or the
//! integrated future device) or on a classical CPU pool running
//! zero-forcing.
//!
//! Run: `cargo run --release --example cran_datacenter`

use quamax::prelude::*;
use quamax::ran::{
    AccessPoint, BatchScheduler, Broker, BrokeredServer, CpuPolicy, CpuPool, Deadline, FaultPlan,
    FronthaulConfig, Guardrails, HybridServer, JobDirection, JobState, LoadGen, Policy,
    QpuOverheads, QpuServer, ResilientServer, SchedConfig, Server, Simulation,
};
use quamax::telemetry::{Histogram, Telemetry};
use quamax::wireless::Modulation;

fn main() {
    // Three APs: a Wi-Fi hotspot with 16-user BPSK, an LTE macro cell
    // with 14-user QPSK, and a WCDMA carrier with 48-user BPSK.
    let aps = vec![
        AccessPoint {
            id: 0,
            users: 16,
            modulation: Modulation::Bpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 1_000.0,
            deadline: Deadline::WifiAck,
        },
        AccessPoint {
            id: 1,
            users: 14,
            modulation: Modulation::Qpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 1_000.0,
            deadline: Deadline::Lte,
        },
        AccessPoint {
            id: 2,
            users: 48,
            modulation: Modulation::Bpsk,
            direction: JobDirection::Uplink,
            subcarriers: 50,
            frame_interval_us: 2_000.0,
            deadline: Deadline::Wcdma,
        },
    ];
    let fronthaul = FronthaulConfig {
        one_way_latency_us: 5.0,
    };
    let horizon_us = 100_000.0;

    // Anneal budget per subcarrier problem: 3 anneals of 2 µs cycles
    // (enough for BER 1e-6 at these sizes per the fig10 results).
    // A walking-speed coherence interval (~30 ms) spans ~30 frames at
    // these arrival rates: compile-once sessions reprogram the chip
    // once per interval instead of once per frame.
    let coherence_frames = 30;

    // The hybrid row's fallback fraction is *measured*, not guessed:
    // run the decode-level router (ZF primary, annealed fallback,
    // noise-matched gate) over a calibration batch drawn from the
    // Wi-Fi AP's workload, and provision the queueing-level server
    // with the fraction the policy actually flagged — the loop between
    // BER sims and queueing sims, closed.
    let calib_snr = Snr::from_db(9.0);
    let router = DetectorKind::hybrid(
        DetectorKind::zf(),
        DetectorKind::quamax(
            Annealer::dw2q(AnnealerConfig::default()),
            DecoderConfig::default(),
            3,
        ),
        RoutePolicy::noise_matched(calib_snr, Modulation::Bpsk, 3.0),
    );
    let calibration = Scenario::new(16, 16, Modulation::Bpsk)
        .with_rayleigh()
        .with_snr(calib_snr);
    let fallback_fraction = measured_fallback_fraction(&router, &calibration, 40, 7)
        .expect("calibration batch compiles on both sides");
    println!(
        "measured decode-level fallback rate (16x16 BPSK @ {calib_snr}, noise-matched gate): \
         {:.1}%\n",
        100.0 * fallback_fraction
    );

    let scenarios: Vec<(&str, Server)> = vec![
        (
            "QPU, today's overheads (§7)",
            Server::Qpu(QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 3)),
        ),
        (
            "QPU, today's overheads + sessions",
            Server::Qpu(
                QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 3)
                    .with_coherence(coherence_frames),
            ),
        ),
        // Same amortization, keyed by *channel hash* instead of frame
        // counting: the sim re-draws each AP's channel every 30 ms and
        // the per-AP session cache reprograms exactly then.
        (
            "QPU, today's overheads + session cache",
            Server::Qpu(
                QpuServer::new(QpuOverheads::current_dw2q(), 2.0, 3).with_session_cache(30_000.0),
            ),
        ),
        (
            "QPU, integrated (paper's vision)",
            Server::Qpu(QpuServer::new(QpuOverheads::integrated(), 2.0, 3)),
        ),
        (
            "CPU pool, 16 cores, zero-forcing",
            Server::Cpu(CpuPool::new(
                16,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            )),
        ),
        (
            "CPU pool, 16 cores, sphere (1,900 nodes)",
            Server::Cpu(CpuPool::new(
                16,
                CpuPolicy::Sphere {
                    expected_nodes: 1_900,
                },
            )),
        ),
        // The HotNets '20 routing structure: the ZF pool answers every
        // subcarrier, and a partly-integrated QPU (programming not yet
        // engineered away, but sessions amortize it per coherence
        // interval) re-decodes only the fraction the confidence policy
        // flagged in the calibration batch above.
        (
            "Hybrid: ZF pool + measured QPU fallback",
            Server::Hybrid(HybridServer::new(
                CpuPool::new(
                    16,
                    CpuPolicy::ZeroForcing {
                        vectors_per_channel: 1,
                    },
                ),
                QpuServer::new(
                    QpuOverheads {
                        preprocessing_us: 0.0,
                        programming_us: 500.0,
                        readout_per_anneal_us: 10.0,
                    },
                    2.0,
                    3,
                )
                .with_coherence(coherence_frames),
                fallback_fraction,
            )),
        ),
    ];

    println!(
        "{:<42} {:>9} {:>12} {:>12}",
        "data-center server", "deadline%", "mean lat.", "max lat."
    );
    for (label, server) in scenarios {
        let mut sim = Simulation::new(aps.clone(), fronthaul, server);
        let report = sim.run(horizon_us);
        println!(
            "{label:<42} {:>8.1}% {:>10.1}µs {:>10.1}µs",
            100.0 * report.deadline_rate(),
            report.mean_latency_us(),
            report.max_latency_us(),
        );
    }
    // Scheduling-policy comparison: the same two-worker brokered pool
    // under overloaded metro traffic (diurnal × bursts, 4 cells),
    // FIFO vs deadline-aware batching vs cost-aware routing. Batching
    // coalesces same-channel jobs into one anneal wave; the price book
    // bills every decode.
    let brokered_pool = || {
        let worker = || {
            QpuServer::new(
                QpuOverheads {
                    preprocessing_us: 0.0,
                    programming_us: 200.0,
                    readout_per_anneal_us: 25.0,
                },
                2.0,
                5,
            )
            .with_session_cache(10_000.0)
        };
        ResilientServer::new(
            vec![worker(), worker()],
            CpuPool::new(
                8,
                CpuPolicy::ZeroForcing {
                    vectors_per_channel: 1,
                },
            ),
            FaultPlan::quiet(2_019),
            Guardrails::on(),
        )
    };
    println!(
        "\nbrokered pool under overloaded metro traffic (0.012 jobs/µs, 4 cells):\n\
         {:<42} {:>9} {:>10} {:>7} {:>11}",
        "scheduling policy", "deadline%", "p99 lat.", "occ.", "$/decode"
    );
    for (label, policy) in [
        ("FIFO (batch of 1, arrival order)", Policy::Fifo),
        ("deadline-aware batching", Policy::DeadlineBatch),
        ("cost-aware (CPU floor when cheaper)", Policy::CostAware),
    ] {
        let mut pool = brokered_pool();
        let mut broker = Broker::new();
        let arrivals = LoadGen::metro(2_019, 4, 0.003).generate(50_000.0);
        let report =
            BatchScheduler::new(SchedConfig::new(policy, 24)).run(&mut pool, &mut broker, arrivals);
        println!(
            "{label:<42} {:>8.1}% {:>8.1}µs {:>7.2} {:>11.6}",
            100.0 * report.deadline_rate(),
            report.latency_quantile_us(0.99),
            report.mean_occupancy(),
            report.usd_per_decode(),
        );
    }
    // Full-duplex row: half of every cell's traffic is downlink VPP
    // precoding (`quamax_core::precode`) riding the same brokered
    // pool. Batches never mix directions and the session cache holds
    // one compiled problem per (channel, direction), so detection and
    // precoding amortize programming independently; the price book
    // bills a precode exactly like a decode of the same anneal wave.
    println!(
        "\nfull-duplex metro traffic, 50% downlink VPP, deadline-aware batching:\n\
         {:<42} {:>9} {:>10} {:>11}",
        "direction", "deadline%", "p99 lat.", "$/job"
    );
    {
        let mut pool = brokered_pool();
        let mut broker = Broker::new();
        let arrivals = LoadGen::full_duplex(2_019, 4, 0.003, 0.5).generate(50_000.0);
        let report = BatchScheduler::new(SchedConfig::new(Policy::DeadlineBatch, 24)).run(
            &mut pool,
            &mut broker,
            arrivals,
        );
        for direction in [JobDirection::Uplink, JobDirection::Downlink] {
            let outcomes: Vec<_> = report
                .outcomes
                .iter()
                .filter(|o| broker.job(o.id).direction == direction)
                .collect();
            if outcomes.is_empty() {
                continue;
            }
            let met = outcomes.iter().filter(|o| o.met_deadline).count();
            let mut latency = Histogram::new();
            for o in &outcomes {
                if o.state == JobState::Completed {
                    latency.observe(o.latency_us);
                }
            }
            let p99 = latency.quantile(0.99);
            let usd: f64 = outcomes.iter().map(|o| o.cost.usd).sum();
            let label = match direction {
                JobDirection::Uplink => "uplink (detection)",
                JobDirection::Downlink => "downlink (VPP precoding)",
            };
            println!(
                "{label:<42} {:>8.1}% {:>8.1}µs {:>11.6}",
                100.0 * met as f64 / outcomes.len() as f64,
                p99,
                if latency.is_empty() {
                    0.0
                } else {
                    usd / latency.count() as f64
                },
            );
        }
    }
    println!(
        "\nToday's QPU overhead stack (≈47 ms/job) busts every radio deadline —\n\
         the paper's own §7 conclusion. Compile-once sessions amortize the\n\
         preprocessing + programming over a coherence interval ({coherence_frames} frames\n\
         here), shrinking mean latency, but the boundary frames still miss:\n\
         only engineering the overheads away makes the QPU the server that\n\
         also holds the Wi-Fi ACK budget. The hybrid row is the HotNets '20\n\
         routing answer: classical-first keeps the QPU off the easy bulk of\n\
         subcarriers — provisioned with the fallback rate the decode-level\n\
         router *measured*, not a guessed constant — so even a partly-\n\
         integrated device contributes. The policy table shows the\n\
         serving-layer lever: at ~1.6× FIFO capacity, per-job dispatch\n\
         collapses while deadline-aware batching rides channel-coherence\n\
         coalescing to near-perfect deadline compliance at a fraction of\n\
         the cost — and cost-aware routing sends slack-rich batches to\n\
         the CPU floor for pennies."
    );

    // `--metrics`: re-run the deployment mix through a fully
    // instrumented brokered pool and emit the telemetry snapshot in
    // both exporter formats. The assertions double as the CI smoke
    // check: the JSON round-trips through the parser and the pipeline's
    // key series are present.
    if std::env::args().any(|a| a == "--metrics") {
        let telemetry = Telemetry::enabled();
        let mut sim = Simulation::new(
            aps.clone(),
            fronthaul,
            Server::Brokered(Box::new(BrokeredServer {
                server: brokered_pool(),
                config: SchedConfig::new(Policy::DeadlineBatch, 24),
            })),
        )
        .with_telemetry(telemetry.clone());
        sim.run(horizon_us);

        let snap = telemetry.snapshot();
        let json = serde_json::to_string_pretty(&snap.to_json()).expect("serializable");
        let parsed = serde_json::from_str(&json).expect("snapshot JSON parses");
        assert!(
            parsed.get("series").and_then(|s| s.as_array()).is_some(),
            "snapshot JSON carries a series array"
        );
        for series in [
            "quamax_qpu_program_us",
            "quamax_qpu_anneal_us",
            "quamax_qpu_readout_us",
            "quamax_qpu_unembed_us",
            "quamax_qpu_queue_wait_us",
            "quamax_sched_batches_total",
            "quamax_sched_batch_occupancy",
            "quamax_serve_served_total",
            "quamax_serve_ledger_total",
            "quamax_broker_census_total",
            "quamax_cache_hits_total",
            "quamax_sim_frames_total",
        ] {
            assert!(snap.has_series(series), "missing series {series}");
        }
        println!("\n--- telemetry snapshot (Prometheus exposition) ---");
        print!("{}", snap.to_prometheus());
        println!(
            "--- {} series; JSON parses; required series present ---",
            snap.series.len()
        );
    }
}
