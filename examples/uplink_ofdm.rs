//! Uplink OFDM frame decode: the workload QuAMax actually serves.
//!
//! A 14-user QPSK uplink over 20 frequency-correlated subcarriers —
//! each subcarrier is its own ML detection problem (paper §3.2), and
//! small problems run many-at-once on the chip thanks to the triangle
//! embedding's tiling. The example decodes the whole OFDM symbol,
//! reports per-subcarrier outcomes and the frame's wall-clock cost on
//! the annealer.
//!
//! Run: `cargo run --release --example uplink_ofdm`

use quamax::prelude::*;
use quamax_core::scenario::Instance;
use quamax_wireless::{count_bit_errors, OfdmFrame};
use rand::Rng as _;

fn main() {
    let mut rng = Rng::seed_from_u64(7);
    let (users, subcarriers) = (14usize, 20usize);
    let modulation = Modulation::Qpsk;
    let snr = Snr::from_db(22.0);

    // A frequency-selective channel: adjacent subcarriers correlated.
    let ofdm = OfdmFrame::rayleigh(users, users, subcarriers, 0.9, &mut rng);

    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());

    let mut total_bits = 0usize;
    let mut total_errors = 0usize;
    let mut total_anneal_us = 0.0f64;
    let mut parallel_factor = 1usize;
    let anneals_per_subcarrier = 60;

    for sc in ofdm.subcarriers() {
        // Fresh payload bits per subcarrier.
        let bits: Vec<u8> = (0..users * modulation.bits_per_symbol())
            .map(|_| rng.random_range(0..=1) as u8)
            .collect();
        let inst = Instance::transmit(sc.h.clone(), bits, modulation, Some(snr), &mut rng);
        let run = decoder
            .decode(&inst.detection_input(), anneals_per_subcarrier, &mut rng)
            .expect("fits the chip");
        let errors = count_bit_errors(&run.best_bits(), inst.tx_bits());
        total_bits += inst.tx_bits().len();
        total_errors += errors;
        total_anneal_us += anneals_per_subcarrier as f64 * run.anneal_cycle_us();
        parallel_factor = run.parallel_factor();
        if errors > 0 {
            println!("subcarrier {:>2}: {errors} bit errors", sc.index);
        }
    }

    println!(
        "\nOFDM symbol: {subcarriers} subcarriers x {users} users x {} bits = {total_bits} bits",
        modulation.bits_per_symbol()
    );
    println!(
        "bit errors: {total_errors} (BER {:.2e})",
        total_errors as f64 / total_bits as f64
    );
    println!(
        "anneal time: {total_anneal_us:.0} µs sequential, {:.0} µs with {parallel_factor} problems tiled per chip",
        total_anneal_us / parallel_factor as f64
    );
    println!(
        "(different subcarriers' problems run side by side — §5.5's parallelization opportunity)"
    );
}
