//! Uplink OFDM frame decode: the workload QuAMax actually serves.
//!
//! A 14-user QPSK uplink over 20 frequency-correlated subcarriers,
//! decoded for a **coherence interval of 4 OFDM symbols**: each
//! subcarrier's channel is constant across the interval, so the
//! receiver compiles one [`DecodeSession`] per subcarrier and streams
//! the interval's symbols through it as one batch (paper §3.2's
//! per-subcarrier problems plus §7's per-interval amortization). Small
//! problems additionally run many-at-once on the chip thanks to the
//! triangle embedding's tiling.
//!
//! Run: `cargo run --release --example uplink_ofdm`

use quamax::prelude::*;
use quamax_core::scenario::Instance;
use quamax_wireless::{count_bit_errors, OfdmFrame};
use rand::Rng as _;

fn main() {
    let mut rng = Rng::seed_from_u64(7);
    let (users, subcarriers, symbols) = (14usize, 20usize, 4usize);
    let modulation = Modulation::Qpsk;
    let snr = Snr::from_db(22.0);

    // A frequency-selective channel: adjacent subcarriers correlated.
    let ofdm = OfdmFrame::rayleigh(users, users, subcarriers, 0.9, &mut rng);

    let machine = Annealer::dw2q(AnnealerConfig::default());
    let decoder = QuamaxDecoder::new(machine, DecoderConfig::default());

    let mut total_bits = 0usize;
    let mut total_errors = 0usize;
    let mut total_anneal_us = 0.0f64;
    let mut parallel_factor = 1usize;
    let anneals_per_decode = 60;

    for sc in ofdm.subcarriers() {
        // The coherence interval's payloads on this subcarrier: fresh
        // bits and noise per OFDM symbol, same channel.
        let insts: Vec<Instance> = (0..symbols)
            .map(|_| {
                let bits: Vec<u8> = (0..users * modulation.bits_per_symbol())
                    .map(|_| rng.random_range(0..=1) as u8)
                    .collect();
                Instance::transmit(sc.h.clone(), bits, modulation, Some(snr), &mut rng)
            })
            .collect();

        // Compile once per subcarrier per interval; batch the symbols.
        let session = decoder
            .compile(&insts[0].detection_input())
            .expect("fits the chip");
        let items: Vec<(CVector, u64)> = insts
            .iter()
            .enumerate()
            .map(|(s, inst)| (inst.y().clone(), (sc.index * symbols + s) as u64))
            .collect();
        let runs = session.decode_batch(&items, anneals_per_decode);

        for (s, (run, inst)) in runs.iter().zip(&insts).enumerate() {
            let errors = count_bit_errors(&run.best_bits(), inst.tx_bits());
            total_bits += inst.tx_bits().len();
            total_errors += errors;
            total_anneal_us += anneals_per_decode as f64 * run.anneal_cycle_us();
            parallel_factor = run.parallel_factor();
            if errors > 0 {
                println!("subcarrier {:>2} symbol {s}: {errors} bit errors", sc.index);
            }
        }
    }

    println!(
        "\nOFDM interval: {subcarriers} subcarriers x {symbols} symbols x {users} users x {} bits = {total_bits} bits",
        modulation.bits_per_symbol()
    );
    println!(
        "bit errors: {total_errors} (BER {:.2e})",
        total_errors as f64 / total_bits as f64
    );
    println!(
        "anneal time: {total_anneal_us:.0} µs sequential, {:.0} µs with {parallel_factor} problems tiled per chip",
        total_anneal_us / parallel_factor as f64
    );
    println!(
        "({} sessions compiled for {} decodes — reduce/embed/freeze paid once per \
         subcarrier per coherence interval, §7's batching story)",
        subcarriers,
        subcarriers * symbols,
    );
}
