//! Integration: measured decode statistics drive the C-RAN deployment
//! model — the full arc of the paper, from anneal samples to "does
//! this meet a Wi-Fi deadline?".

use quamax::prelude::*;
use quamax::ran::{
    AccessPoint, Deadline, FronthaulConfig, JobDirection, QpuOverheads, QpuServer, Server,
    Simulation,
};
use quamax::wireless::fer_from_ber;

/// Measures, from a real decode run, the anneal count needed for a
/// 1e-4 FER on 1,500-byte frames; feeds it into the C-RAN sim; checks
/// the §7 story (integrated device OK, today's overheads hopeless).
#[test]
fn measured_anneal_budget_feeds_the_deadline_model() {
    // Step 1: measure the per-problem anneal budget for 16-user BPSK.
    let mut rng = Rng::seed_from_u64(1);
    let sc = Scenario::new(16, 16, Modulation::Bpsk).with_snr(Snr::from_db(20.0));
    let inst = sc.sample(&mut rng);
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    let run = decoder
        .decode(&inst.detection_input(), 400, &mut rng)
        .unwrap();
    let stats = RunStatistics::from_run(&run, inst.tx_bits(), None);
    let na = stats
        .profile
        .anneals_to_ber(1e-6)
        .expect("this class reaches 1e-6 easily");
    assert!(na <= 50, "anneal budget blew up: {na}");
    assert!(fer_from_ber(stats.expected_ber(na), 1500) <= 1.2e-2);

    // Step 2: run the C-RAN sim with that measured budget.
    let ap = AccessPoint {
        id: 0,
        users: 16,
        modulation: Modulation::Bpsk,
        direction: JobDirection::Uplink,
        subcarriers: 50,
        frame_interval_us: 1_000.0,
        deadline: Deadline::WifiAck,
    };
    let cycle = run.anneal_cycle_us();
    let mut integrated = Simulation::new(
        vec![ap.clone()],
        FronthaulConfig {
            one_way_latency_us: 2.0,
        },
        Server::Qpu(QpuServer::new(QpuOverheads::integrated(), cycle, na)),
    );
    let report = integrated.run(30_000.0);
    assert!(!report.frames.is_empty());
    // An integrated QPU at the measured budget holds the Wi-Fi ACK
    // deadline for at least the overwhelming majority of frames.
    assert!(
        report.deadline_rate() > 0.9,
        "deadline rate {} at Na={na}, cycle={cycle}",
        report.deadline_rate()
    );

    // Step 3: same budget, today's overheads: nothing meets anything.
    let mut today = Simulation::new(
        vec![AccessPoint {
            deadline: Deadline::Wcdma,
            ..ap
        }],
        FronthaulConfig::default(),
        Server::Qpu(QpuServer::new(QpuOverheads::current_dw2q(), cycle, na)),
    );
    let report = today.run(200_000.0);
    assert_eq!(report.deadline_rate(), 0.0, "§7: not deployable today");
}

/// OFDM + RAN consistency: the per-frame problem count equals the
/// subcarrier count, and service time scales with it.
#[test]
fn subcarrier_load_scales_service_time() {
    let mut one = QpuServer::new(QpuOverheads::integrated(), 2.0, 10);
    let t_small = one.enqueue(0.0, 10, 32);
    one.reset();
    let t_large = one.enqueue(0.0, 100, 32);
    assert!(t_large > 5.0 * t_small, "{t_small} vs {t_large}");
}
