//! Reproducibility: every stochastic component of the workspace is
//! seed-deterministic, independent of thread count.

use quamax::prelude::*;
use quamax_anneal::Schedule;
use quamax_wireless::{TraceConfig, TraceGenerator};

#[test]
fn scenario_sampling_is_deterministic() {
    let draw = |seed: u64| {
        let mut rng = Rng::seed_from_u64(seed);
        let sc = Scenario::new(6, 6, Modulation::Qam16).with_snr(Snr::from_db(15.0));
        let inst = sc.sample(&mut rng);
        (inst.h().clone(), inst.y().clone(), inst.tx_bits().to_vec())
    };
    assert_eq!(draw(11).2, draw(11).2);
    assert_eq!(draw(11).0, draw(11).0);
    assert_ne!(draw(11).2, draw(12).2);
}

#[test]
fn decode_is_deterministic_across_thread_counts() {
    let run_with_threads = |threads: usize| {
        let mut rng = Rng::seed_from_u64(21);
        let inst = Scenario::new(8, 8, Modulation::Qpsk).sample(&mut rng);
        let annealer = Annealer::new(AnnealerConfig {
            threads,
            ..Default::default()
        });
        let decoder = QuamaxDecoder::new(annealer, DecoderConfig::default());
        let run = decoder
            .decode(&inst.detection_input(), 64, &mut rng)
            .unwrap();
        (run.best_bits(), run.distribution().num_distinct())
    };
    assert_eq!(run_with_threads(1), run_with_threads(4));
}

#[test]
fn annealer_streams_are_stable() {
    let mut problem = quamax::ising::IsingProblem::new(6);
    problem.set_coupling(0, 1, -1.0);
    problem.set_coupling(2, 3, 0.5);
    problem.set_linear(4, 0.3);
    let annealer = Annealer::dw2q(AnnealerConfig::default());
    let a = annealer.run(&problem, &Schedule::standard(1.0), 32, 99);
    let b = annealer.run(&problem, &Schedule::standard(1.0), 32, 99);
    assert_eq!(a, b);
}

#[test]
fn trace_generator_is_deterministic() {
    let gen = |seed: u64| {
        let mut rng = Rng::seed_from_u64(seed);
        let mut g = TraceGenerator::new(TraceConfig::default(), &mut rng);
        let u1 = g.next_use(&mut rng);
        let u2 = g.next_use(&mut rng);
        (u1.h_full, u2.snr_db)
    };
    let (h_a, snr_a) = gen(5);
    let (h_b, snr_b) = gen(5);
    assert_eq!(h_a, h_b);
    assert_eq!(snr_a, snr_b);
}
