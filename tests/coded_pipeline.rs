//! End-to-end coded uplink through the facade: annealed soft-output
//! detection (list demapping over the anneal ensemble) feeding the
//! soft-input Viterbi, against the hard-input path on the *same*
//! detections.

use quamax::prelude::*;

/// A deadline-starved annealer: few sweeps per µs, so detection keeps
/// a residual BER for FEC to handle (§5.3.3's operating regime).
fn starved_quamax(anneals: usize) -> DetectorKind {
    DetectorKind::quamax(
        Annealer::new(AnnealerConfig {
            sweeps_per_us: 3.0,
            threads: 1,
            ..Default::default()
        }),
        DecoderConfig {
            schedule: quamax_anneal::Schedule::standard(1.0),
            ..Default::default()
        },
        anneals,
    )
}

#[test]
fn annealed_soft_decoding_beats_hard_decoding() {
    let frame = CodedFrame::new(8, Modulation::Qpsk, 114);
    let snr = Snr::from_db(8.0);
    let spec = SoftSpec::noise_matched(snr, Modulation::Qpsk);
    let kind = starved_quamax(12);
    let mut rng = Rng::seed_from_u64(33);
    let (mut raw, mut hard, mut soft) = (0usize, 0usize, 0usize);
    for k in 0..8u64 {
        let payload = frame.random_payload(&mut rng);
        let out = frame
            .run(&kind, spec, snr, &payload, 500 + k)
            .expect("8-user QPSK embeds");
        raw += out.raw_errors;
        hard += out.hard_errors;
        soft += out.soft_errors;
    }
    assert!(raw > 0, "the starved annealer must leave detector errors");
    assert!(hard > 0, "the hard path should not fully absorb them here");
    assert!(
        soft < hard,
        "the anneal ensemble's LLRs must help the code: soft {soft} vs hard {hard}"
    );
}

#[test]
fn soft_detection_is_the_hard_detection_plus_reliabilities() {
    // Facade-level contract: for the annealed backend, detect_soft's
    // bits and objective are exactly the hard session's under the same
    // seed, and the LLR signs agree with the bits.
    let mut rng = Rng::seed_from_u64(5);
    let snr = Snr::from_db(12.0);
    let inst = Scenario::new(4, 4, Modulation::Qam16)
        .with_snr(snr)
        .sample(&mut rng);
    let input = inst.detection_input();
    let kind = starved_quamax(40);
    let spec = SoftSpec::noise_matched(snr, Modulation::Qam16);
    let mut hard_session = kind.compile(&input).unwrap();
    let mut soft_session = kind.compile_soft(&input, spec).unwrap();
    let hard = hard_session.detect(&input.y, 9).unwrap();
    let soft = soft_session.detect_soft(&input.y, 9).unwrap();
    assert_eq!(hard.bits, soft.bits);
    assert_eq!(hard.metric, soft.objective);
    assert_eq!(soft.llrs.len(), 16);
    for (&llr, &bit) in soft.llrs.iter().zip(&soft.bits) {
        if llr > 0.0 {
            assert_eq!(bit, 1);
        }
        if llr < 0.0 {
            assert_eq!(bit, 0);
        }
    }
}
