//! Integration tests of the metrics pipeline: Eq. 9 statistics
//! computed from real decode runs, TTS/TTB/TTF consistency, and the
//! parallelization accounting.

use quamax::prelude::*;
use quamax_anneal::IceModel;
use quamax_wireless::fer_from_ber;

fn run_stats(seed: u64, na: usize) -> RunStatistics {
    let mut rng = Rng::seed_from_u64(seed);
    let sc = Scenario::new(8, 8, Modulation::Bpsk).with_snr(Snr::from_db(18.0));
    let inst = sc.sample(&mut rng);
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    let run = decoder
        .decode(&inst.detection_input(), na, &mut rng)
        .unwrap();
    RunStatistics::from_run(&run, inst.tx_bits(), None)
}

#[test]
fn profile_probabilities_sum_to_one() {
    let stats = run_stats(1, 300);
    // BitErrorProfile::from_parts asserts this internally; reconstruct
    // the check through Eq. 9's Na = 1 case: E[BER(1)] must equal the
    // probability-weighted error mean, which is finite and in [0, 1].
    let ber1 = stats.expected_ber(1);
    assert!((0.0..=1.0).contains(&ber1));
}

#[test]
fn ttb_and_tts_are_consistent() {
    let stats = run_stats(2, 300);
    // With P0 > 0 both TTS and (for reachable targets) TTB exist, and
    // looser BER targets can only shorten TTB.
    assert!(stats.p0 > 0.0);
    let tts = stats.tts99_us().unwrap();
    assert!(tts >= stats.cycle_us / stats.parallel_factor as f64);
    let strict = stats.ttb_us(1e-8);
    let loose = stats.ttb_us(1e-2);
    if let (Some(s), Some(l)) = (strict, loose) {
        assert!(l <= s, "looser target must not take longer: {l} vs {s}");
    }
}

#[test]
fn ttf_matches_manual_fer_inversion() {
    let stats = run_stats(3, 300);
    let frame = 1500;
    if let Some(ttf) = stats.ttf_us(1e-4, frame) {
        // The BER at the implied anneal count must satisfy the FER target.
        let per = stats.cycle_us / stats.parallel_factor as f64;
        let na = (ttf / per).round().max(1.0) as usize;
        let fer = fer_from_ber(stats.expected_ber(na), frame);
        assert!(fer <= 1e-4 * 1.05, "fer={fer}");
    }
}

#[test]
fn more_anneals_never_hurt_the_expected_ber_noiseless() {
    // Noise-free channel: rank 0 carries no errors, so Eq. 9 is
    // monotone (see metrics docs).
    let mut rng = Rng::seed_from_u64(4);
    let sc = Scenario::new(8, 8, Modulation::Bpsk);
    let inst = sc.sample(&mut rng);
    let annealer = Annealer::new(AnnealerConfig {
        ice: IceModel::none(),
        ..Default::default()
    });
    let decoder = QuamaxDecoder::new(annealer, DecoderConfig::default());
    let run = decoder
        .decode(&inst.detection_input(), 400, &mut rng)
        .unwrap();
    let stats = RunStatistics::from_run(&run, inst.tx_bits(), None);
    let mut prev = f64::INFINITY;
    for na in [1usize, 2, 4, 16, 64, 256] {
        let b = stats.expected_ber(na);
        assert!(b <= prev + 1e-15);
        prev = b;
    }
}

#[test]
fn parallel_factor_amortizes_small_problems() {
    // 8-user BPSK occupies 24 qubits: dozens of copies tile the chip,
    // so amortized TTB can undercut a single cycle.
    let stats = run_stats(5, 300);
    assert!(stats.parallel_factor > 20, "Pf = {}", stats.parallel_factor);
    let per = stats.cycle_us / stats.parallel_factor as f64;
    assert!(per < stats.cycle_us / 20.0);
}

#[test]
fn percentile_handles_mixed_infinities() {
    let xs = [1.0, 2.0, f64::INFINITY, 3.0, f64::INFINITY];
    assert_eq!(percentile(&xs, 50.0), 3.0);
    assert!(percentile(&xs, 90.0).is_infinite());
    assert_eq!(percentile(&xs, 0.0), 1.0);
}
