//! End-to-end integration tests: the full decode pipeline across
//! crates, per modulation, against classical ground truth.

use quamax::prelude::*;
use quamax_anneal::IceModel;
use quamax_baselines::{exhaustive_ml, SphereDecoder};
use quamax_wireless::count_bit_errors;

fn quiet_decoder(ta_us: f64) -> QuamaxDecoder {
    let annealer = Annealer::new(AnnealerConfig {
        ice: IceModel::none(),
        sweeps_per_us: 40.0,
        ..Default::default()
    });
    QuamaxDecoder::new(
        annealer,
        DecoderConfig {
            schedule: quamax_anneal::Schedule::standard(ta_us),
            ..Default::default()
        },
    )
}

#[test]
fn noiseless_decodes_are_exact_for_all_modulations() {
    let mut rng = Rng::seed_from_u64(1);
    for (m, nt, na) in [
        (Modulation::Bpsk, 12usize, 100usize),
        (Modulation::Qpsk, 8, 200),
        (Modulation::Qam16, 3, 500),
    ] {
        let sc = Scenario::new(nt, nt, m);
        let inst = sc.sample(&mut rng);
        let run = quiet_decoder(10.0)
            .decode(&inst.detection_input(), na, &mut rng)
            .unwrap();
        assert_eq!(
            run.best_bits(),
            inst.tx_bits(),
            "{} {}x{}",
            m.name(),
            nt,
            nt
        );
    }
}

#[test]
fn quamax_agrees_with_sphere_decoder_under_noise() {
    // At moderate SNR the annealer's best solution should reach the ML
    // solution (the sphere decoder's answer) — not necessarily the
    // transmitted bits.
    let mut rng = Rng::seed_from_u64(2);
    let m = Modulation::Qpsk;
    let sc = Scenario::new(10, 10, m)
        .with_rayleigh()
        .with_snr(Snr::from_db(14.0));
    let sphere = SphereDecoder::new(m);
    let decoder = quiet_decoder(10.0);
    let mut agreements = 0;
    let trials = 10;
    for _ in 0..trials {
        let inst = sc.sample(&mut rng);
        let ml = sphere.decode(inst.h(), inst.y()).unwrap();
        let run = decoder
            .decode(&inst.detection_input(), 400, &mut rng)
            .unwrap();
        if run.best_bits() == ml.bits {
            agreements += 1;
        }
    }
    assert!(
        agreements >= 8,
        "only {agreements}/{trials} runs matched exact ML"
    );
}

#[test]
fn decoded_energy_never_beats_ml() {
    // The ML solution is the Ising ground state: no anneal can land
    // strictly below it (it can only tie).
    let mut rng = Rng::seed_from_u64(3);
    let m = Modulation::Bpsk;
    let sc = Scenario::new(16, 16, m).with_snr(Snr::from_db(10.0));
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    for _ in 0..5 {
        let inst = sc.sample(&mut rng);
        let ml = exhaustive_ml(inst.h(), inst.y(), m);
        let run = decoder
            .decode(&inst.detection_input(), 200, &mut rng)
            .unwrap();
        // Compare through the ML-metric identity: E_ising + offset = ‖y−He‖².
        let best = run.distribution().best_energy().unwrap() + run.ml_offset();
        assert!(
            best >= ml.metric - 1e-6 * ml.metric.max(1.0),
            "annealer found {best}, below ML {}",
            ml.metric
        );
    }
}

#[test]
fn higher_snr_means_fewer_bit_errors() {
    // Seed chosen to give the 0 dB leg a healthy error margin (~14/240
    // bit errors); nearby seeds produce as few as 0, which would
    // vacuously pass the comparison below.
    let mut rng = Rng::seed_from_u64(7);
    let m = Modulation::Qpsk;
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    let mut errors_at = Vec::new();
    for snr_db in [0.0, 25.0] {
        let sc = Scenario::new(8, 8, m)
            .with_rayleigh()
            .with_snr(Snr::from_db(snr_db));
        let mut errors = 0;
        for _ in 0..15 {
            let inst = sc.sample(&mut rng);
            let run = decoder
                .decode(&inst.detection_input(), 150, &mut rng)
                .unwrap();
            errors += count_bit_errors(&run.best_bits(), inst.tx_bits());
        }
        errors_at.push(errors);
    }
    assert!(errors_at[0] > 0, "0 dB should produce some channel errors");
    assert!(
        errors_at[1] < errors_at[0],
        "25 dB should beat 0 dB: {errors_at:?}"
    );
}

#[test]
fn full_chip_sizes_decode() {
    // The paper's headline class: 60-user BPSK (N=60, 960 qubits).
    let mut rng = Rng::seed_from_u64(5);
    let sc = Scenario::new(60, 60, Modulation::Bpsk).with_snr(Snr::from_db(20.0));
    let inst = sc.sample(&mut rng);
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    let run = decoder
        .decode(&inst.detection_input(), 150, &mut rng)
        .unwrap();
    let errors = count_bit_errors(&run.best_bits(), inst.tx_bits());
    // Headline regime: near-error-free at 20 dB.
    assert!(errors <= 2, "60x60 BPSK at 20 dB had {errors} errors");
}

#[test]
fn defective_chip_refuses_cleanly() {
    // A chip with a defect in the embedding region: the decode must
    // error, not corrupt.
    let mut graph = quamax::chimera::ChimeraGraph::dw2q_ideal();
    graph.add_defect(0); // corner cell, used by every triangle embedding
    let decoder = QuamaxDecoder::with_graph(
        Annealer::dw2q(AnnealerConfig::default()),
        graph,
        DecoderConfig::default(),
    );
    let mut rng = Rng::seed_from_u64(6);
    let inst = Scenario::new(8, 8, Modulation::Bpsk).sample(&mut rng);
    let result = decoder.decode(&inst.detection_input(), 10, &mut rng);
    assert!(result.is_err(), "defect must surface as an error");
}
