//! Failure-injection tests: the pipeline must fail loudly and
//! specifically, never silently corrupt.

use quamax::chimera::{ChimeraGraph, CliqueEmbedding, EmbeddingError};
use quamax::prelude::*;
use quamax_anneal::IceModel;
use quamax_baselines::sphere::SphereError;
use quamax_core::DecodeError;
use quamax_linalg::{pseudo_inverse, CMatrix, LinalgError};
use quamax_wireless::count_bit_errors;

#[test]
fn oversized_problems_report_does_not_fit() {
    let mut rng = Rng::seed_from_u64(1);
    // 20-user 16-QAM = 80 logical > 64 (Table 2's bold region).
    let inst = Scenario::new(20, 20, Modulation::Qam16).sample(&mut rng);
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    match decoder.decode(&inst.detection_input(), 1, &mut rng) {
        Err(DecodeError::Embedding(EmbeddingError::DoesNotFit {
            n,
            needed,
            available,
        })) => {
            assert_eq!(n, 80);
            assert_eq!(needed, 20);
            assert_eq!(available, 16);
        }
        other => panic!("expected DoesNotFit, got {other:?}"),
    }
}

#[test]
fn defect_inside_the_triangle_is_reported_with_context() {
    let mut graph = ChimeraGraph::dw2q_ideal();
    let dead = graph.qubit(2, 1, quamax::chimera::graph::Side::Right, 3);
    graph.add_defect(dead);
    match CliqueEmbedding::new(&graph, 36) {
        Err(EmbeddingError::DefectInTheWay { qubit, .. }) => assert_eq!(qubit, dead),
        other => panic!("expected DefectInTheWay, got {other:?}"),
    }
}

#[test]
fn singular_channel_fails_zf_but_not_quamax() {
    // Two users with identical channels: ZF must refuse; QuAMax still
    // returns its best effort (the ML metric remains well defined; the
    // two users' bits are simply ambiguous).
    let mut rng = Rng::seed_from_u64(2);
    let col = quamax_wireless::rayleigh_channel(4, 1, &mut rng);
    let h = CMatrix::from_fn(4, 2, |r, _| col[(r, 0)]);
    assert_eq!(pseudo_inverse(&h), Err(LinalgError::Singular));

    let inst =
        quamax_core::scenario::Instance::transmit(h, vec![1, 0], Modulation::Bpsk, None, &mut rng);
    let decoder = QuamaxDecoder::new(
        Annealer::new(AnnealerConfig {
            ice: IceModel::none(),
            ..Default::default()
        }),
        DecoderConfig::default(),
    );
    let run = decoder
        .decode(&inst.detection_input(), 100, &mut rng)
        .unwrap();
    // Degenerate ML: both [1,0] and [0,1] give the same received
    // signal; accept either, reject anything else.
    let bits = run.best_bits();
    assert!(bits == vec![1, 0] || bits == vec![0, 1], "got {bits:?}");
}

#[test]
fn extreme_ice_degrades_but_does_not_crash() {
    let mut rng = Rng::seed_from_u64(3);
    let inst = Scenario::new(12, 12, Modulation::Bpsk).sample(&mut rng);
    let annealer = Annealer::new(AnnealerConfig {
        ice: IceModel::dw2q().scaled(50.0), // absurd noise
        ..Default::default()
    });
    let decoder = QuamaxDecoder::new(annealer, DecoderConfig::default());
    let run = decoder
        .decode(&inst.detection_input(), 50, &mut rng)
        .unwrap();
    // Output is structurally valid even when informationally useless.
    assert_eq!(run.best_bits().len(), 12);
    let errors = count_bit_errors(&run.best_bits(), inst.tx_bits());
    assert!(errors <= 12);
}

#[test]
fn sphere_budget_and_radius_failures_are_typed() {
    let mut rng = Rng::seed_from_u64(4);
    let inst = Scenario::new(10, 10, Modulation::Qpsk)
        .with_rayleigh()
        .with_snr(Snr::from_db(5.0))
        .sample(&mut rng);
    let tiny_radius = SphereDecoder::new(Modulation::Qpsk)
        .with_initial_radius(1e-15)
        .decode(inst.h(), inst.y());
    assert_eq!(tiny_radius.unwrap_err(), SphereError::RadiusTooSmall);

    let tiny_budget = SphereDecoder::new(Modulation::Qpsk)
        .with_node_budget(2)
        .decode(inst.h(), inst.y());
    assert_eq!(tiny_budget.unwrap_err(), SphereError::BudgetExhausted);
}

#[test]
fn zero_snr_still_produces_valid_structures() {
    // SNR of −20 dB: noise 100× the signal. Everything stays finite
    // and structurally correct.
    let mut rng = Rng::seed_from_u64(5);
    let sc = Scenario::new(4, 4, Modulation::Qpsk).with_snr(Snr::from_db(-20.0));
    let inst = sc.sample(&mut rng);
    assert!(inst.y().is_finite());
    let decoder = QuamaxDecoder::new(
        Annealer::dw2q(AnnealerConfig::default()),
        DecoderConfig::default(),
    );
    let run = decoder
        .decode(&inst.detection_input(), 50, &mut rng)
        .unwrap();
    assert_eq!(run.best_bits().len(), 8);
}
